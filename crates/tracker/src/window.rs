//! Windowed operation of the trajectory detection component.
//!
//! Couples the [`MobilityTracker`] with a sliding window (§2): each slide
//! admits the fresh positional batch, detects trajectory events, retains
//! the resulting critical points in the window, and evicts expired "delta"
//! critical points toward the staging area (§3.2: "Once the window slides
//! forward, expiring critical points are transferred in an intermediate
//! staging table on disk").

use maritime_ais::PositionTuple;
use maritime_obs::{names, LazyCounter, LazyGauge};
use maritime_stream::{SlidingWindow, Timestamp, WindowSpec};

use crate::events::CriticalPoint;
use crate::params::TrackerParams;
use crate::tracker::MobilityTracker;

/// Windowed-tracking metrics (see `OBSERVABILITY.md`). The gauges report
/// per-tracker levels; under sharding each shard overwrites them in turn,
/// so they read as "one shard's level" — the counters sum exactly.
static OBS_EVICTED: LazyCounter = LazyCounter::new(names::TRACKER_EVICTED_POINTS);
static OBS_WINDOW_POINTS: LazyGauge = LazyGauge::new(names::TRACKER_WINDOW_POINTS);
static OBS_ACTIVE_VESSELS: LazyGauge = LazyGauge::new(names::TRACKER_ACTIVE_VESSELS);

/// What one window slide produced.
#[derive(Debug, Clone)]
pub struct SlideReport {
    /// The query time of this slide.
    pub query_time: Timestamp,
    /// Raw positions admitted in this slide.
    pub admitted: usize,
    /// Critical points detected in this slide (the CER input batch).
    pub fresh_critical: Vec<CriticalPoint>,
    /// "Delta" critical points evicted from the window toward staging.
    pub evicted_delta: Vec<CriticalPoint>,
    /// Critical points currently held in the window after this slide.
    pub window_size: usize,
}

/// The windowed trajectory detection component.
#[derive(Debug)]
pub struct WindowedTracker {
    tracker: MobilityTracker,
    window: SlidingWindow<CriticalPoint>,
    /// Levels last pushed to the global gauges, so this instance publishes
    /// *deltas*: the gauges then read as the sum over live instances (one
    /// per shard), matching the serial tracker's level exactly.
    obs_window_level: i64,
    obs_vessel_level: i64,
}

impl WindowedTracker {
    /// Creates a windowed tracker.
    #[must_use]
    pub fn new(params: TrackerParams, spec: WindowSpec) -> Self {
        Self {
            tracker: MobilityTracker::new(params),
            window: SlidingWindow::new(spec),
            obs_window_level: 0,
            obs_vessel_level: 0,
        }
    }

    /// Processes one slide: admit the batch (time-ordered positional tuples
    /// with timestamps ≤ `query_time`), detect events, sweep for vessels
    /// that fell silent (their gaps must be issued *when the silence
    /// exceeds ΔT*, not when — if ever — they reappear), and refresh the
    /// window.
    pub fn slide(&mut self, query_time: Timestamp, batch: &[PositionTuple]) -> SlideReport {
        let _span = maritime_obs::span!(names::TRACKER_SLIDE_NS);
        let mut fresh_critical = self.tracker.process_batch(batch.iter());
        fresh_critical.extend(self.tracker.sweep_gaps(query_time));
        for cp in &fresh_critical {
            self.window.insert(cp.timestamp, *cp);
        }
        let evicted_delta: Vec<CriticalPoint> = self
            .window
            .slide_to(query_time)
            .into_iter()
            .map(|(_, cp)| cp)
            .collect();
        OBS_EVICTED.add(evicted_delta.len() as u64);
        self.publish_levels();
        SlideReport {
            query_time,
            admitted: batch.len(),
            fresh_critical,
            evicted_delta,
            window_size: self.window.len(),
        }
    }

    /// Pushes this instance's window/vessel levels to the global gauges as
    /// deltas against what it last published.
    fn publish_levels(&mut self) {
        let window = self.window.len() as i64;
        OBS_WINDOW_POINTS.add(window - self.obs_window_level);
        self.obs_window_level = window;
        let vessels = self.tracker.vessel_count() as i64;
        OBS_ACTIVE_VESSELS.add(vessels - self.obs_vessel_level);
        self.obs_vessel_level = vessels;
    }

    /// Ends the stream: flush open durative states and drain the window.
    /// Returns `(final critical points, remaining window contents)`.
    pub fn finish(&mut self) -> (Vec<CriticalPoint>, Vec<CriticalPoint>) {
        let last = self.tracker.finish();
        let mut remaining: Vec<CriticalPoint> =
            self.window.iter().map(|(_, cp)| *cp).collect();
        remaining.extend(last.iter().copied());
        (last, remaining)
    }

    /// The underlying fleet tracker (stats, per-vessel access).
    #[must_use]
    pub fn tracker(&self) -> &MobilityTracker {
        &self.tracker
    }

    /// Critical points currently in the window.
    #[must_use]
    pub fn window_len(&self) -> usize {
        self.window.len()
    }
}

impl Drop for WindowedTracker {
    fn drop(&mut self) {
        // Retract this instance's gauge contributions so short-lived
        // trackers (tests, re-created shards) leave no residue.
        OBS_WINDOW_POINTS.add(-self.obs_window_level);
        OBS_ACTIVE_VESSELS.add(-self.obs_vessel_level);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maritime_ais::replay::to_tuple_stream;
    use maritime_ais::{FleetConfig, FleetSimulator};
    use maritime_stream::{Duration, SlideBatches};

    fn spec(range_h: i64, slide_min: i64) -> WindowSpec {
        WindowSpec::new(Duration::hours(range_h), Duration::minutes(slide_min)).unwrap()
    }

    #[test]
    fn slides_admit_and_evict() {
        let sim = FleetSimulator::new(FleetConfig::tiny(31));
        let stream = to_tuple_stream(&sim.generate());
        let total = stream.len();
        let mut wt = WindowedTracker::new(TrackerParams::default(), spec(1, 30));
        let mut admitted = 0;
        let mut evicted = 0;
        let mut fresh = 0;
        for batch in SlideBatches::new(stream.into_iter(), spec(1, 30), Timestamp::ZERO) {
            let tuples: Vec<_> = batch.items.iter().map(|(_, t)| *t).collect();
            let report = wt.slide(batch.query_time, &tuples);
            admitted += report.admitted;
            evicted += report.evicted_delta.len();
            fresh += report.fresh_critical.len();
        }
        assert_eq!(admitted, total);
        assert!(fresh > 0);
        assert!(evicted > 0, "a 6-hour stream must evict from a 1-hour window");
        // Conservation: every fresh critical point is either still in the
        // window or was evicted.
        assert_eq!(fresh, evicted + wt.window_len());
    }

    #[test]
    fn eviction_is_oldest_first_and_within_cutoff() {
        let sim = FleetSimulator::new(FleetConfig::tiny(32));
        let stream = to_tuple_stream(&sim.generate());
        let w = spec(1, 30);
        let mut wt = WindowedTracker::new(TrackerParams::default(), w);
        for batch in SlideBatches::new(stream.into_iter(), w, Timestamp::ZERO) {
            let tuples: Vec<_> = batch.items.iter().map(|(_, t)| *t).collect();
            let report = wt.slide(batch.query_time, &tuples);
            let cutoff = batch.query_time - Duration::hours(1);
            for pair in report.evicted_delta.windows(2) {
                assert!(pair[0].timestamp <= pair[1].timestamp);
            }
            for cp in &report.evicted_delta {
                assert!(cp.timestamp <= cutoff);
            }
        }
    }

    #[test]
    fn finish_drains_window() {
        let sim = FleetSimulator::new(FleetConfig::tiny(33));
        let stream = to_tuple_stream(&sim.generate());
        let w = spec(2, 60);
        let mut wt = WindowedTracker::new(TrackerParams::default(), w);
        for batch in SlideBatches::new(stream.into_iter(), w, Timestamp::ZERO) {
            let tuples: Vec<_> = batch.items.iter().map(|(_, t)| *t).collect();
            wt.slide(batch.query_time, &tuples);
        }
        let before = wt.window_len();
        let (_final_cps, remaining) = wt.finish();
        assert!(remaining.len() >= before);
    }
}
