//! Path-simplification baselines for comparison with critical points.
//!
//! §6 of the paper situates the trajectory detection component against two
//! families of related work:
//!
//! * **error-bounded simplification** (Cao/Wolfson/Trajcevski; Meratnia &
//!   de By), represented here by the classic **Douglas–Peucker** algorithm
//!   — offline, needs the whole trace, guarantees a spatial error bound;
//! * **dead reckoning** (Wolfson et al.), represented by an **online
//!   deviation filter** — a position is retained only when it deviates
//!   more than a threshold from the course projected from the last
//!   retained fix.
//!
//! Neither baseline annotates the retained points with movement semantics
//! — which is the paper's point: "Most importantly, we annotate reduced
//! representations according to particular movement events along each
//! vessel trace." These implementations power the compression-vs-accuracy
//! frontier comparison in the benchmark harness.

use std::collections::HashMap;

use maritime_ais::{Mmsi, PositionTuple};
use maritime_geo::{haversine_distance_m, segment_distance_m, GeoPoint};
use maritime_stream::Timestamp;

use crate::accuracy::{evaluate_accuracy, AccuracyReport};
use crate::events::{Annotation, CriticalPoint};
use crate::params::TrackerParams;
use crate::velocity::VelocityVector;

/// Douglas–Peucker simplification of one time-ordered trace: returns the
/// indices of retained points (always including the endpoints).
///
/// `epsilon_m` is the maximum allowed perpendicular deviation in meters.
#[must_use]
pub fn douglas_peucker(points: &[GeoPoint], epsilon_m: f64) -> Vec<usize> {
    let n = points.len();
    if n <= 2 {
        return (0..n).collect();
    }
    let mut keep = vec![false; n];
    keep[0] = true;
    keep[n - 1] = true;
    // Explicit stack instead of recursion: traces can be very long.
    let mut stack = vec![(0usize, n - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi <= lo + 1 {
            continue;
        }
        let (mut worst, mut worst_d) = (lo, -1.0f64);
        for i in (lo + 1)..hi {
            let d = segment_distance_m(points[i], points[lo], points[hi]);
            if d > worst_d {
                worst = i;
                worst_d = d;
            }
        }
        if worst_d > epsilon_m {
            keep[worst] = true;
            stack.push((lo, worst));
            stack.push((worst, hi));
        }
    }
    keep.iter()
        .enumerate()
        .filter_map(|(i, k)| k.then_some(i))
        .collect()
}

/// Online dead-reckoning filter: retains a fix when it deviates more than
/// `threshold_m` from the position predicted by the velocity at the last
/// retained fix. Returns retained indices (always including the first and
/// last points).
#[must_use]
pub fn dead_reckoning(track: &[(GeoPoint, Timestamp)], threshold_m: f64) -> Vec<usize> {
    let n = track.len();
    if n <= 2 {
        return (0..n).collect();
    }
    let mut kept = vec![0usize];
    // Velocity estimate at the last retained fix (from its successor at
    // retention time — the dead-reckoning vector the server would hold).
    let mut anchor = 0usize;
    let mut velocity: Option<VelocityVector> = None;
    for i in 1..n {
        let (p, t) = track[i];
        let (ap, at) = track[anchor];
        let predicted = match velocity {
            Some(v) => {
                let dt = (t.as_secs() - at.as_secs()) as f64;
                maritime_geo::destination(
                    ap,
                    v.heading_deg,
                    maritime_geo::knots_to_mps(v.speed_knots) * dt,
                )
            }
            None => ap, // no velocity yet: predict "still there"
        };
        if haversine_distance_m(p, predicted) > threshold_m {
            kept.push(i);
            anchor = i;
            // New dead-reckoning vector from the previous fix to this one.
            velocity = VelocityVector::between(track[i - 1].0, track[i - 1].1, p, t);
        }
    }
    if *kept.last().expect("non-empty") != n - 1 {
        kept.push(n - 1);
    }
    kept
}

/// Result of running one reduction method over a fleet stream.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// Method label.
    pub method: &'static str,
    /// Points retained across the fleet.
    pub retained: usize,
    /// Raw positions consumed.
    pub raw: usize,
    /// `1 − retained/raw`.
    pub compression_ratio: f64,
    /// Synchronized-RMSE accuracy of the reduced representation.
    pub accuracy: AccuracyReport,
}

/// Runs all three reduction methods over a fleet stream and evaluates each
/// with the same synchronized RMSE, producing the compression-vs-accuracy
/// frontier: the paper's critical points, Douglas–Peucker at `dp_epsilon_m`,
/// and dead reckoning at `dr_threshold_m`.
#[must_use]
pub fn compare_methods(
    stream: &[PositionTuple],
    params: TrackerParams,
    dp_epsilon_m: f64,
    dr_threshold_m: f64,
) -> Vec<BaselineResult> {
    let mut per_vessel: HashMap<Mmsi, Vec<(GeoPoint, Timestamp)>> = HashMap::new();
    for t in stream {
        per_vessel
            .entry(t.mmsi)
            .or_default()
            .push((t.position, t.timestamp));
    }

    let mut results = Vec::new();

    // 1. Critical points (the paper's method).
    let (report, critical) = crate::compression::measure_compression(stream, params);
    results.push(BaselineResult {
        method: "critical_points",
        retained: critical.len(),
        raw: stream.len(),
        compression_ratio: report.ratio,
        accuracy: evaluate_accuracy(stream, &critical),
    });

    // 2. Douglas–Peucker (offline, error-bounded).
    let mut dp_points = Vec::new();
    for (mmsi, track) in &per_vessel {
        let coords: Vec<GeoPoint> = track.iter().map(|(p, _)| *p).collect();
        for idx in douglas_peucker(&coords, dp_epsilon_m) {
            dp_points.push(anchor_point(*mmsi, track[idx]));
        }
    }
    results.push(BaselineResult {
        method: "douglas_peucker",
        retained: dp_points.len(),
        raw: stream.len(),
        compression_ratio: ratio(dp_points.len(), stream.len()),
        accuracy: evaluate_accuracy(stream, &dp_points),
    });

    // 3. Dead reckoning (online, deviation-triggered).
    let mut dr_points = Vec::new();
    for (mmsi, track) in &per_vessel {
        for idx in dead_reckoning(track, dr_threshold_m) {
            dr_points.push(anchor_point(*mmsi, track[idx]));
        }
    }
    results.push(BaselineResult {
        method: "dead_reckoning",
        retained: dr_points.len(),
        raw: stream.len(),
        compression_ratio: ratio(dr_points.len(), stream.len()),
        accuracy: evaluate_accuracy(stream, &dr_points),
    });

    results
}

fn ratio(kept: usize, raw: usize) -> f64 {
    if raw == 0 {
        0.0
    } else {
        1.0 - kept as f64 / raw as f64
    }
}

/// Wraps a retained raw position as an unannotated critical point so the
/// shared accuracy evaluator can interpolate over it.
fn anchor_point(mmsi: Mmsi, (position, timestamp): (GeoPoint, Timestamp)) -> CriticalPoint {
    CriticalPoint {
        mmsi,
        position,
        timestamp,
        annotation: Annotation::TrackStart,
        speed_knots: 0.0,
        heading_deg: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maritime_geo::destination;
    use maritime_stream::Duration;

    fn dogleg_track() -> Vec<(GeoPoint, Timestamp)> {
        // Straight east for 20 fixes, 40° turn, straight again.
        let mut p = GeoPoint::new(24.0, 38.0);
        let mut t = Timestamp(0);
        let mut out = vec![(p, t)];
        for i in 0..40 {
            let bearing = if i < 20 { 90.0 } else { 50.0 };
            p = destination(p, bearing, 300.0);
            t = t + Duration::secs(30);
            out.push((p, t));
        }
        out
    }

    #[test]
    fn dp_keeps_endpoints_and_corner() {
        let track = dogleg_track();
        let coords: Vec<GeoPoint> = track.iter().map(|(p, _)| *p).collect();
        let kept = douglas_peucker(&coords, 50.0);
        assert!(kept.contains(&0));
        assert!(kept.contains(&(coords.len() - 1)));
        // The corner at index 20 (or a neighbour) must survive.
        assert!(
            kept.iter().any(|i| (19..=21).contains(i)),
            "corner dropped: {kept:?}"
        );
        // A straight dogleg needs very few points.
        assert!(kept.len() <= 5, "{kept:?}");
    }

    #[test]
    fn dp_epsilon_zero_keeps_everything_meaningful() {
        let track = dogleg_track();
        let coords: Vec<GeoPoint> = track.iter().map(|(p, _)| *p).collect();
        let kept = douglas_peucker(&coords, 0.0);
        // With zero tolerance every off-chord point is retained; collinear
        // interior points may still be dropped (deviation exactly 0), so
        // at minimum the corner region must be dense.
        assert!(kept.len() >= 3);
    }

    #[test]
    fn dp_bounds_deviation() {
        let track = dogleg_track();
        let coords: Vec<GeoPoint> = track.iter().map(|(p, _)| *p).collect();
        for eps in [20.0, 100.0, 500.0] {
            let kept = douglas_peucker(&coords, eps);
            // Every dropped point must be within eps of the kept polyline
            // chord that spans it.
            for (pos, w) in kept.windows(2).enumerate() {
                let _ = pos;
                for i in (w[0] + 1)..w[1] {
                    let d = segment_distance_m(coords[i], coords[w[0]], coords[w[1]]);
                    assert!(d <= eps + 1e-6, "eps={eps}, i={i}, d={d}");
                }
            }
        }
    }

    #[test]
    fn dead_reckoning_silent_on_straight_constant_course() {
        // Constant velocity: after the second point fixes the vector, no
        // further updates should be retained.
        let mut p = GeoPoint::new(24.0, 38.0);
        let mut t = Timestamp(0);
        let mut track = vec![(p, t)];
        for _ in 0..50 {
            p = destination(p, 90.0, 300.0);
            t = t + Duration::secs(30);
            track.push((p, t));
        }
        let kept = dead_reckoning(&track, 100.0);
        assert!(kept.len() <= 4, "straight course retained {kept:?}");
    }

    #[test]
    fn dead_reckoning_fires_on_turn() {
        let track = dogleg_track();
        let kept = dead_reckoning(&track, 100.0);
        // The 40-degree turn must trigger at least one retention beyond
        // the initial fixes.
        assert!(
            kept.iter().any(|i| (20..=25).contains(i)),
            "turn missed: {kept:?}"
        );
    }

    #[test]
    fn tiny_tracks_pass_through() {
        let p = GeoPoint::new(24.0, 38.0);
        assert_eq!(douglas_peucker(&[], 10.0), Vec::<usize>::new());
        assert_eq!(douglas_peucker(&[p], 10.0), vec![0]);
        assert_eq!(douglas_peucker(&[p, p], 10.0), vec![0, 1]);
        assert_eq!(dead_reckoning(&[(p, Timestamp(0))], 10.0), vec![0]);
    }

    #[test]
    fn compare_methods_produces_full_frontier() {
        use maritime_ais::replay::to_tuple_stream;
        use maritime_ais::{FleetConfig, FleetSimulator};
        let sim = FleetSimulator::new(FleetConfig::tiny(91));
        let stream: Vec<PositionTuple> = to_tuple_stream(&sim.generate())
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        let results = compare_methods(&stream, TrackerParams::default(), 100.0, 200.0);
        assert_eq!(results.len(), 3);
        for r in &results {
            assert_eq!(r.raw, stream.len());
            assert!(r.retained > 0);
            assert!((0.0..=1.0).contains(&r.compression_ratio), "{r:?}");
            assert!(r.accuracy.avg_rmse_m.is_finite());
        }
        // All three methods compress substantially on realistic traffic.
        for r in &results {
            assert!(
                r.compression_ratio > 0.5,
                "{} ratio {}",
                r.method,
                r.compression_ratio
            );
        }
    }
}
