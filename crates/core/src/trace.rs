//! Run-level provenance collection (see `OBSERVABILITY.md`, "Tracing &
//! provenance").
//!
//! When [`TraceMode::Full`](crate::config::TraceMode) is on, every
//! recognition query returns the [`CeChain`]s assembled by
//! `maritime_cer::provenance`. Two gaps remain between those per-query
//! chains and an operator-facing trace, and this module closes both:
//!
//! * chains bottom out in critical-point *annotations*, not in the raw
//!   AIS sentences they were detected from — [`SentenceIndex`] maps each
//!   admitted position tuple to a stable sentence id (its admission
//!   ordinal) so input leaves can cite their sources; and
//! * a durative CE is re-derived at every query whose window still
//!   covers it — [`TraceLog`] keeps the latest chain per CE id so a run
//!   produces one authoritative derivation per event.

use std::collections::{BTreeMap, HashMap};

use maritime_ais::PositionTuple;
use maritime_cer::{visit_input_leaves, CeChain};

/// How many of the most recent position reports an input leaf cites: the
/// report that triggered the critical point plus its predecessor (speed
/// and gap annotations compare consecutive reports).
pub const SENTENCES_PER_LEAF: usize = 2;

/// Maps admitted AIS position tuples to stable sentence ids.
///
/// Ids are admission ordinals: the `n`-th tuple fed to the pipeline has
/// id `n` (zero-based), so any id in a trace can be resolved against a
/// replay of the same input stream. Per vessel, the index keeps the
/// `(timestamp, id)` pairs sorted by time — the input stream is
/// time-ordered, so appends are already in order, but out-of-order
/// arrivals within a batch are tolerated by insertion sort.
#[derive(Debug, Default)]
pub struct SentenceIndex {
    by_vessel: HashMap<u32, Vec<(i64, u64)>>,
    next_id: u64,
}

impl SentenceIndex {
    /// An empty index.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total tuples indexed so far (also the next id to be assigned).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.next_id
    }

    /// True when nothing has been indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.next_id == 0
    }

    /// Indexes one admitted batch, assigning consecutive ids.
    pub fn index_batch(&mut self, batch: &[PositionTuple]) {
        for tuple in batch {
            let id = self.next_id;
            self.next_id += 1;
            let entries = self.by_vessel.entry(tuple.mmsi.0).or_default();
            let at = tuple.timestamp.as_secs();
            let pos = entries.partition_point(|&(t, _)| t <= at);
            entries.insert(pos, (at, id));
        }
    }

    /// The ids of the most recent reports from `mmsi` at or before `at`
    /// (up to [`SENTENCES_PER_LEAF`]), oldest first.
    #[must_use]
    pub fn sentences_for(&self, mmsi: u32, at: i64) -> Vec<u64> {
        let Some(entries) = self.by_vessel.get(&mmsi) else {
            return Vec::new();
        };
        let end = entries.partition_point(|&(t, _)| t <= at);
        entries[end.saturating_sub(SENTENCES_PER_LEAF)..end]
            .iter()
            .map(|&(_, id)| id)
            .collect()
    }

    /// Fills in the `sentences` of every input leaf in `chain` from the
    /// leaf's vessel and timestamp.
    pub fn attach(&self, chain: &mut CeChain) {
        visit_input_leaves(chain, &mut |leaf| {
            if let Some(mmsi) = leaf.mmsi {
                leaf.sentences = self.sentences_for(mmsi, leaf.at);
            }
        });
    }
}

/// Latest-wins store of provenance chains, keyed by CE id.
///
/// A durative CE whose interval is still inside the recognition window is
/// re-derived — with the same id — at every query; the chain from the
/// latest query supersedes earlier ones because its window saw the most
/// complete evidence (e.g. the interval's eventual termination).
#[derive(Debug, Default)]
pub struct TraceLog {
    chains: BTreeMap<String, CeChain>,
}

impl TraceLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one query's chains, replacing earlier chains for the same
    /// CE ids.
    pub fn record(&mut self, chains: Vec<CeChain>) {
        for chain in chains {
            self.chains.insert(chain.id.clone(), chain);
        }
    }

    /// Number of distinct CEs traced.
    #[must_use]
    pub fn len(&self) -> usize {
        self.chains.len()
    }

    /// True when no chain has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.chains.is_empty()
    }

    /// The chain for one CE id.
    #[must_use]
    pub fn get(&self, id: &str) -> Option<&CeChain> {
        self.chains.get(id)
    }

    /// All CE ids, sorted.
    pub fn ids(&self) -> impl Iterator<Item = &str> {
        self.chains.keys().map(String::as_str)
    }

    /// All chains, sorted by id.
    pub fn chains(&self) -> impl Iterator<Item = &CeChain> {
        self.chains.values()
    }

    /// Serializes every chain (sorted by id) as a JSON array — the format
    /// `surveil explain` reads back.
    #[must_use]
    pub fn to_json(&self) -> String {
        let all: Vec<&CeChain> = self.chains.values().collect();
        let mut json =
            serde_json::to_string_pretty(&all).expect("chains are plain serializable data");
        json.push('\n');
        json
    }

    /// Deserializes a chain array written by [`Self::to_json`].
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        let all: Vec<CeChain> = serde_json::from_str(json)?;
        let mut log = Self::new();
        log.record(all);
        Ok(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maritime_ais::Mmsi;
    use maritime_geo::GeoPoint;
    use maritime_stream::Timestamp;

    fn tuple(mmsi: u32, t: i64) -> PositionTuple {
        PositionTuple {
            mmsi: Mmsi(mmsi),
            position: GeoPoint::new(24.0, 37.0),
            timestamp: Timestamp(t),
        }
    }

    #[test]
    fn sentence_ids_are_admission_ordinals() {
        let mut index = SentenceIndex::new();
        index.index_batch(&[tuple(7, 10), tuple(8, 11), tuple(7, 20)]);
        index.index_batch(&[tuple(7, 30)]);
        assert_eq!(index.len(), 4);
        // Nearest-earlier lookup returns the two latest reports <= t.
        assert_eq!(index.sentences_for(7, 25), vec![0, 2]);
        assert_eq!(index.sentences_for(7, 10), vec![0]);
        assert_eq!(index.sentences_for(7, 9), Vec::<u64>::new());
        assert_eq!(index.sentences_for(8, 100), vec![1]);
        assert_eq!(index.sentences_for(9, 100), Vec::<u64>::new());
    }

    #[test]
    fn trace_log_is_latest_wins_and_roundtrips() {
        let chain = |id: &str, q: i64| CeChain {
            id: id.to_string(),
            ce: "suspicious(area 0)".to_string(),
            since: 100,
            until: None,
            query_time: q,
            derivation: Vec::new(),
        };
        let mut log = TraceLog::new();
        log.record(vec![chain("a", 1), chain("b", 1)]);
        log.record(vec![chain("a", 2)]);
        assert_eq!(log.len(), 2);
        assert_eq!(log.get("a").unwrap().query_time, 2);
        assert_eq!(log.ids().collect::<Vec<_>>(), ["a", "b"]);

        let back = TraceLog::from_json(&log.to_json()).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.get("a").unwrap().query_time, 2);
    }
}
