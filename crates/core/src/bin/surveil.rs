//! `surveil` — run the maritime surveillance pipeline over an NMEA log.
//!
//! ```text
//! surveil --demo 60 24                 # simulate 60 vessels for 24 h
//! surveil --input ais.log              # replay a timestamped NMEA log
//! surveil --demo 60 24 --shards 4      # shard the tracker over 4 workers
//! surveil --demo 60 24 --kml out.kml --archive trips.json --audit
//! surveil --demo 60 24 --metrics-json m.json --metrics-every 12
//! surveil --demo 60 24 --trace         # provenance chains -> ce-chains.json
//! surveil explain 'suspicious/area3@7200'   # proof tree for one CE
//! surveil --demo 60 24 --trace-out trace.json --flight-dump flight.json
//! surveil watch --http 127.0.0.1:9090       # live vitals of a server
//! ```
//!
//! Log format: one message per line, `<epoch-seconds> <!AIVDM sentence>`.
//! Corrupt lines are discarded by the data scanner exactly as in the
//! paper's §2; type-5 voyage declarations are collected for the
//! declared-vs-derived destination audit (`--audit`).
//!
//! Tracing (see `OBSERVABILITY.md`): `--trace`/`--trace-ce` capture a
//! derivation chain per recognized CE and write them as JSON for
//! `surveil explain`; `--trace-out` records per-stage timeline spans in
//! Chrome Trace Event format (load in Perfetto or `chrome://tracing`);
//! `--flight-dump` writes the flight recorder's recent-event ring on
//! exit and arms it to dump on anomalies (deadline overruns, panics).

use std::io::BufRead;

use maritime::prelude::*;
use maritime_ais::nmea::encode_report;
use maritime_ais::voyage::encode_static_voyage;
use maritime_ais::StaticVoyageData;
use maritime_geo::kml::KmlWriter;
use maritime_modstore::audit_destinations;
use maritime_obs::flight;
use maritime_tracker::synopsis::per_vessel_synopses;

/// Default path `--trace` writes chains to and `explain` reads from.
const DEFAULT_CHAINS_PATH: &str = "ce-chains.json";

struct Options {
    demo: Option<(usize, i64)>,
    input: Option<String>,
    kml: Option<String>,
    archive: Option<String>,
    dump_log: Option<String>,
    audit: bool,
    shards: usize,
    bands: usize,
    incremental: bool,
    metrics_json: Option<String>,
    metrics_prom: Option<String>,
    metrics_every: Option<usize>,
    no_metrics: bool,
    trace_ce: Option<String>,
    trace_out: Option<String>,
    flight_dump: Option<String>,
    deadline_ms: Option<u64>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        demo: None,
        input: None,
        kml: None,
        archive: None,
        dump_log: None,
        audit: false,
        shards: 1,
        bands: 1,
        incremental: false,
        metrics_json: None,
        metrics_prom: None,
        metrics_every: None,
        no_metrics: false,
        trace_ce: None,
        trace_out: None,
        flight_dump: None,
        deadline_ms: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("explain") {
        cmd_explain(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("chaos") {
        cmd_chaos(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("serve") {
        cmd_serve(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("feed") {
        cmd_feed(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("watch") {
        cmd_watch(&args[1..]);
    }
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--demo" => {
                let vessels = it.next().and_then(|v| v.parse().ok()).unwrap_or(60);
                let hours = it.next().and_then(|v| v.parse().ok()).unwrap_or(24);
                opts.demo = Some((vessels, hours));
            }
            "--input" => opts.input = it.next().cloned(),
            "--kml" => opts.kml = it.next().cloned(),
            "--archive" => opts.archive = it.next().cloned(),
            "--dump-log" => opts.dump_log = it.next().cloned(),
            "--audit" => opts.audit = true,
            "--incremental" => opts.incremental = true,
            "--metrics-json" => opts.metrics_json = it.next().cloned(),
            "--metrics-prom" => opts.metrics_prom = it.next().cloned(),
            "--metrics-every" => {
                opts.metrics_every =
                    Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--metrics-every needs a positive slide count");
                        std::process::exit(2);
                    }));
            }
            "--no-metrics" => opts.no_metrics = true,
            "--trace" => {
                opts.trace_ce.get_or_insert_with(|| DEFAULT_CHAINS_PATH.to_string());
            }
            "--trace-ce" => opts.trace_ce = it.next().cloned(),
            "--trace-out" => opts.trace_out = it.next().cloned(),
            "--flight-dump" => opts.flight_dump = it.next().cloned(),
            "--deadline-ms" => {
                opts.deadline_ms =
                    Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--deadline-ms needs a positive millisecond count");
                        std::process::exit(2);
                    }));
            }
            "--shards" => {
                opts.shards = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--shards needs a positive integer");
                    std::process::exit(2);
                });
            }
            "--bands" => {
                opts.bands = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--bands needs a positive integer");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: surveil (--demo [vessels] [hours] | --input FILE) \
                     [--shards N] [--bands N] [--incremental] [--kml FILE] \
                     [--archive FILE] [--dump-log FILE] [--audit] \
                     [--metrics-json FILE] [--metrics-prom FILE] \
                     [--metrics-every N-SLIDES] [--no-metrics] \
                     [--trace | --trace-ce FILE] [--trace-out FILE] \
                     [--flight-dump FILE] [--deadline-ms N]\n       \
                     surveil explain [CE-ID] [--chains FILE]\n       \
                     surveil chaos [--seed N] [--plans N] [--vessels N] \
                     [--hours N] [--skew SECS] [--plan FILE] [--out DIR]\n       \
                     surveil serve [FLAGS]   (see SERVING.md)\n       \
                     surveil feed (--demo V H | --input FILE | --control NAME) \
                     --to HOST:PORT [--rate N] [--flush]\n       \
                     surveil watch --http HOST:PORT [--interval-ms MS] [--samples N]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    if opts.demo.is_none() && opts.input.is_none() {
        opts.demo = Some((60, 24));
    }
    opts
}

/// `surveil explain [CE-ID] [--chains FILE]`: renders the proof tree of
/// one traced CE (or lists the available ids) from a chain file written
/// by a `--trace` run.
fn cmd_explain(args: &[String]) -> ! {
    let mut id: Option<String> = None;
    let mut path = DEFAULT_CHAINS_PATH.to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--chains" => {
                path = it.next().cloned().unwrap_or_else(|| {
                    eprintln!("--chains needs a file path");
                    std::process::exit(2);
                });
            }
            other if !other.starts_with('-') && id.is_none() => id = Some(other.to_string()),
            other => {
                eprintln!("explain: unexpected argument {other}");
                std::process::exit(2);
            }
        }
    }
    let json = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e} (produce it with `surveil --trace`)");
        std::process::exit(1);
    });
    let log = TraceLog::from_json(&json).unwrap_or_else(|e| {
        eprintln!("{path} is not a chain file: {e}");
        std::process::exit(1);
    });
    match id {
        Some(id) => match log.get(&id) {
            Some(chain) => {
                print!("{}", render_proof_tree(chain));
                std::process::exit(0);
            }
            None => {
                eprintln!("no CE with id {id:?} in {path}; traced ids:");
                for known in log.ids() {
                    eprintln!("  {known}");
                }
                std::process::exit(1);
            }
        },
        None => {
            for known in log.ids() {
                println!("{known}");
            }
            std::process::exit(0);
        }
    }
}

/// `surveil chaos`: generate seeded fault-injection plans, apply each to
/// the deterministic chaos world, and hold the recognized CEs to the
/// metamorphic oracles. On the first violation the op list is
/// delta-debugged to a minimal reproducing plan, written (with a flight
/// recorder dump) to the artifact directory, and the process exits 1 —
/// `surveil chaos --plan <artifact>` replays it.
fn cmd_chaos(args: &[String]) -> ! {
    use maritime::chaos::ChaosHarness;
    use maritime_chaos::{shrink_plan, ChaosPlan};

    let mut harness = ChaosHarness::default();
    let mut seed = harness.seed;
    let mut plans = 6usize;
    let mut replay: Option<String> = None;
    let mut out_dir = "chaos-artifacts".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        // Seeds are echoed in hex, so accept them back in hex too.
        let mut num = |name: &str| -> u64 {
            it.next()
                .and_then(|v| match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                    Some(hex) => u64::from_str_radix(hex, 16).ok(),
                    None => v.parse().ok(),
                })
                .unwrap_or_else(|| {
                    eprintln!("{name} needs a number");
                    std::process::exit(2);
                })
        };
        match a.as_str() {
            "--seed" => seed = num("--seed"),
            "--plans" => plans = num("--plans") as usize,
            "--vessels" => harness.vessels = num("--vessels") as usize,
            "--hours" => harness.hours = num("--hours") as i64,
            "--skew" => harness.admission_skew_secs = num("--skew") as i64,
            "--plan" => replay = it.next().cloned(),
            "--out" => out_dir = it.next().cloned().unwrap_or(out_dir),
            other => {
                eprintln!("chaos: unexpected argument {other} (try --help)");
                std::process::exit(2);
            }
        }
    }

    flight::install_panic_hook();
    std::fs::create_dir_all(&out_dir).unwrap_or_else(|e| {
        eprintln!("cannot create {out_dir}: {e}");
        std::process::exit(1);
    });
    flight::arm_dump(format!("{out_dir}/flight.json"));

    let fail = |plan: &ChaosPlan, violation: &maritime_chaos::OracleViolation| -> ! {
        eprintln!("VIOLATION: {violation}");
        eprintln!("shrinking {}-op plan to a minimal reproduction...", plan.ops.len());
        let shrunk = shrink_plan(plan, |p| harness.check_plan(p).is_err());
        let plan_path = format!("{out_dir}/minimized-plan.json");
        std::fs::write(&plan_path, shrunk.to_json()).expect("write minimized plan");
        let dump = flight::trigger_dump("chaos oracle violation");
        eprintln!(
            "minimized to {} op(s): {}\nreplay with: surveil chaos --plan {plan_path}{}",
            shrunk.ops.len(),
            shrunk.to_json(),
            dump.map_or(String::new(), |p| format!("\nflight dump: {}", p.display())),
        );
        std::process::exit(1);
    };

    if let Some(path) = replay {
        let body = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        // Accept both a bare plan (the minimized-plan.json artifact) and
        // the golden fixture's `{"plan": ..., "fingerprint_fnv64": ...}`
        // wrapper.
        let plan = ChaosPlan::from_json(&body)
            .or_else(|outer| -> Result<ChaosPlan, String> {
                let v: serde_json::Value =
                    serde_json::from_str(&body).map_err(|_| outer.to_string())?;
                let inner = v.get("plan").ok_or_else(|| outer.to_string())?;
                let inner = serde_json::to_string(inner).map_err(|e| e.to_string())?;
                ChaosPlan::from_json(&inner).map_err(|e| e.to_string())
            })
            .unwrap_or_else(|e| {
                eprintln!("{path} is not a chaos plan: {e}");
                std::process::exit(1);
            });
        eprintln!("replaying {}-op plan from {path}", plan.ops.len());
        match harness.check_plan(&plan) {
            Ok(()) => {
                eprintln!("plan passes every applicable oracle");
                std::process::exit(0);
            }
            Err(v) => fail(&plan, &v),
        }
    }

    eprintln!(
        "chaos: {plans} plan batches, seed {seed:#x}, {} vessels x {} h, skew {} s",
        harness.vessels, harness.hours, harness.admission_skew_secs
    );
    for i in 0..plans as u64 {
        let batch = [
            ChaosPlan::equivalence(seed ^ i, harness.admission_skew_secs),
            ChaosPlan::hostile(seed ^ i),
            ChaosPlan::vessel_drop(seed ^ i),
            ChaosPlan::kill_restore(seed ^ i, harness.hours * 3_600),
        ];
        for plan in &batch {
            if let Err(v) = harness.check_plan(plan) {
                fail(plan, &v);
            }
        }
        eprintln!(
            "batch {}/{plans}: equivalence+hostile+vessel-drop+kill-restore ok",
            i + 1
        );
    }
    eprintln!("all oracles held on {} plans", plans * 4);
    std::process::exit(0);
}

/// `surveil serve`: the resident live-ingestion server. Binds the flagged
/// listeners, prints each bound address on stderr, and runs until a
/// `#shutdown` control line arrives (or `--run-secs` elapses). All
/// protocol semantics are specified in `SERVING.md`.
fn cmd_serve(args: &[String]) -> ! {
    use maritime::serve::cli::{demo_fleet, parse_fleet_json, ServeCli};

    let cli = ServeCli::parse(args).unwrap_or_else(|e| {
        eprintln!("serve: {e}");
        std::process::exit(2);
    });
    let vessels = match (&cli.demo_fleet, &cli.fleet) {
        (Some(n), _) => {
            eprintln!("serve: knowledge base = demo fleet of {n} vessel(s)");
            demo_fleet(*n)
        }
        (None, Some(path)) => {
            let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("serve: cannot read {path}: {e}");
                std::process::exit(1);
            });
            let fleet = parse_fleet_json(&body).unwrap_or_else(|e| {
                eprintln!("serve: {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("serve: knowledge base = {} vessel(s) from {path}", fleet.len());
            fleet
        }
        (None, None) => {
            eprintln!(
                "serve: no --demo-fleet/--fleet; vessel-knowledge predicates \
                 (shallow, fishing designation) stay inert"
            );
            Vec::new()
        }
    };
    let areas = generate_areas(&AreaGenConfig::default());
    let opts = cli.serve_options(vessels, areas).unwrap_or_else(|e| {
        eprintln!("serve: {e}");
        std::process::exit(2);
    });
    flight::install_panic_hook();
    let handle = maritime::serve::start(opts).unwrap_or_else(|e| {
        eprintln!("serve: {e}");
        std::process::exit(1);
    });
    if let Some(addr) = handle.nmea_tcp {
        eprintln!("serve: nmea-in tcp on {addr}");
    }
    if let Some(addr) = handle.nmea_udp {
        eprintln!("serve: nmea-in udp on {addr}");
    }
    if let Some(addr) = handle.subscribe {
        eprintln!("serve: ce-out subscribers on {addr}");
    }
    if let Some(addr) = handle.http {
        eprintln!("serve: http (/metrics, /metrics/history, /dashboard, /events) on {addr}");
    }
    let deadline = cli
        .run_secs
        .map(|s| std::time::Instant::now() + std::time::Duration::from_secs(s));
    while !handle.is_shutdown() {
        if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
            eprintln!("serve: --run-secs elapsed, shutting down");
            handle.shutdown();
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    eprintln!("serve: draining ({} subscriber(s) connected)", handle.hub().subscriber_count());
    let stats = handle.ingest_stats();
    handle.join();
    eprintln!(
        "serve: done — {} lines, {} accepted, {} filtered, {} duplicates, {} queries, {} CEs",
        stats.lines, stats.accepted, stats.filtered, stats.duplicates, stats.queries, stats.ce_total
    );
    std::process::exit(0);
}

/// `surveil watch`: a terminal vitals loop over a running server's HTTP
/// endpoint. Each poll fetches `/metrics/history` and `/healthz` and
/// prints one line: the health state, the newest sample's sequence
/// number, per-second rates derived from the last two ring samples, and
/// the current connection/buffer levels. `--samples N` bounds the run
/// for scripting; the default polls until interrupted.
fn cmd_watch(args: &[String]) -> ! {
    use maritime::serve::cli::WatchCli;

    let cli = WatchCli::parse(args).unwrap_or_else(|e| {
        eprintln!("watch: {e}");
        std::process::exit(2);
    });
    eprintln!(
        "watch: polling http://{} every {} ms{}",
        cli.http,
        cli.interval_ms,
        if cli.samples > 0 { format!(" for {} sample(s)", cli.samples) } else { String::new() }
    );
    let interval = std::time::Duration::from_millis(cli.interval_ms);
    let mut polls = 0u64;
    let mut failures = 0u32;
    loop {
        match watch_vitals_line(&cli.http) {
            Ok(line) => {
                failures = 0;
                println!("{line}");
            }
            Err(e) => {
                failures += 1;
                eprintln!("watch: {e}");
                // A restarting server deserves patience; a dead one does not.
                if failures >= 5 {
                    eprintln!("watch: {failures} consecutive failures, giving up");
                    std::process::exit(1);
                }
            }
        }
        polls += 1;
        if cli.samples > 0 && polls >= cli.samples {
            std::process::exit(0);
        }
        std::thread::sleep(interval);
    }
}

/// Per-second rate of a named counter, derived from the last two samples.
type RateFn<'a> = Box<dyn Fn(&str) -> f64 + 'a>;

/// One vitals line from the server: health state + derived rates/levels.
fn watch_vitals_line(addr: &str) -> Result<String, String> {
    use serde_json::Value;

    let history = watch_http_get(addr, "/metrics/history")?;
    let v: Value = serde_json::from_str(&history)
        .map_err(|e| format!("/metrics/history is not JSON: {e}"))?;
    let Some(Value::Array(samples)) = v.get("samples") else {
        return Err("/metrics/history has no samples array".to_string());
    };
    let metric = |sample: &Value, name: &str| -> f64 {
        watch_num(sample.get("metrics").and_then(|m| m.get(name)).and_then(|m| m.get("value")))
    };
    let (cur, rate): (&Value, RateFn) = match samples.len() {
        0 => return Err("/metrics/history is empty".to_string()),
        1 => (&samples[0], Box::new(|_| 0.0)),
        n => {
            let (prev, cur) = (&samples[n - 2], &samples[n - 1]);
            let dt = (watch_num(cur.get("at_ns")) - watch_num(prev.get("at_ns"))) / 1e9;
            let rate = move |name: &str| {
                if dt > 0.0 {
                    ((metric(cur, name) - metric(prev, name)).max(0.0)) / dt
                } else {
                    0.0
                }
            };
            (cur, Box::new(rate))
        }
    };
    // /healthz answers 503 when critical; the state is still in the body.
    let state = watch_http_get(addr, "/healthz")
        .unwrap_or_else(|_| "unreachable".to_string())
        .lines()
        .next()
        .unwrap_or("unreachable")
        .to_string();
    Ok(format!(
        "health={state} seq={} | lines/s={:.1} positions/s={:.1} CE/s={:.2} alerts/s={:.2} \
         | sources={} subscribers={} buffered={} vessels={}",
        watch_num(cur.get("seq")) as u64,
        rate("serve_sentences_total"),
        rate("ais_positions_total"),
        rate("cer_ce_recognized_total"),
        rate("cer_alerts_total"),
        metric(cur, "serve_sources_connected"),
        metric(cur, "serve_subscribers_connected"),
        metric(cur, "stream_admission_buffered"),
        metric(cur, "tracker_active_vessels"),
    ))
}

/// A JSON number as `f64`; 0 for absent or non-numeric values.
fn watch_num(v: Option<&serde_json::Value>) -> f64 {
    use serde_json::Value;
    match v {
        Some(Value::Int(i)) => *i as f64,
        Some(Value::UInt(u)) => *u as f64,
        Some(Value::Float(f)) => *f,
        _ => 0.0,
    }
}

/// Minimal HTTP/1.0 GET returning the response body. The watch loop only
/// talks to `surveil serve`'s own endpoint surface, so a hand-rolled
/// client keeps the binary dependency-free.
fn watch_http_get(addr: &str, path: &str) -> Result<String, String> {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .map_err(|e| format!("socket setup: {e}"))?;
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\nhost: watch\r\n\r\n").as_bytes())
        .map_err(|e| format!("{path}: send failed: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("{path}: read failed: {e}"))?;
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .ok_or_else(|| format!("{path}: malformed HTTP response"))
}

/// `surveil feed`: streams an NMEA log (demo or file) to a running server
/// over TCP in the `<epoch-secs> <sentence>` line format, or sends a bare
/// control line (`--control flush|shutdown`).
fn cmd_feed(args: &[String]) -> ! {
    use maritime::serve::cli::FeedCli;
    use std::io::Write;

    let cli = FeedCli::parse(args).unwrap_or_else(|e| {
        eprintln!("feed: {e}");
        std::process::exit(2);
    });
    let addr = cli.to.as_deref().expect("parse enforces --to");
    // The server may still be binding when a scripted feed starts; retry
    // briefly before declaring it unreachable.
    let mut stream = None;
    for _ in 0..40 {
        match std::net::TcpStream::connect(addr) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(250)),
        }
    }
    let Some(stream) = stream else {
        eprintln!("feed: cannot connect to {addr}");
        std::process::exit(1);
    };
    let mut stream = std::io::BufWriter::new(stream);

    if let Some(name) = &cli.control {
        let line = match name.as_str() {
            "flush" => maritime::serve::CONTROL_FLUSH,
            "shutdown" => maritime::serve::CONTROL_SHUTDOWN,
            other => {
                eprintln!("feed: unknown control {other:?} (flush, shutdown)");
                std::process::exit(2);
            }
        };
        writeln!(stream, "{line}").and_then(|()| stream.flush()).unwrap_or_else(|e| {
            eprintln!("feed: send failed: {e}");
            std::process::exit(1);
        });
        eprintln!("feed: sent {line} to {addr}");
        std::process::exit(0);
    }

    let lines = match (&cli.demo, &cli.input) {
        (Some((v, h)), _) => {
            eprintln!("feed: demo stream, {v} vessels over {h} h");
            demo_log(*v, *h).0
        }
        (None, Some(path)) => read_log(path),
        (None, None) => unreachable!("parse enforces a source"),
    };
    let pause = (cli.rate > 0).then(|| std::time::Duration::from_nanos(1_000_000_000 / cli.rate));
    let mut sent = 0u64;
    for (t, sentence) in &lines {
        if let Err(e) = writeln!(stream, "{t} {sentence}") {
            eprintln!("feed: connection lost after {sent} lines: {e}");
            std::process::exit(1);
        }
        sent += 1;
        if let Some(pause) = pause {
            // BufWriter batching defeats a throttle; flush per line.
            let _ = stream.flush();
            std::thread::sleep(pause);
        }
    }
    if cli.flush {
        let _ = writeln!(stream, "{}", maritime::serve::CONTROL_FLUSH);
    }
    stream.flush().unwrap_or_else(|e| {
        eprintln!("feed: final flush failed: {e}");
        std::process::exit(1);
    });
    eprintln!("feed: {sent} line(s) sent to {addr}{}", if cli.flush { " + #flush" } else { "" });
    std::process::exit(0);
}

/// Builds a demo NMEA log: the synthetic fleet's position reports plus a
/// type-5 voyage declaration per vessel (some deliberately wrong or blank,
/// mirroring the unreliable crew-entered field of §3.2).
fn demo_log(vessels: usize, hours: i64) -> (Vec<(i64, String)>, FleetSimulator) {
    let sim = FleetSimulator::new(FleetConfig {
        vessels,
        duration: Duration::hours(hours),
        seed: 0x5EAF00D,
        ..FleetConfig::default()
    });
    let mut lines: Vec<(i64, String)> = Vec::new();
    let port_names: Vec<&str> = ports().iter().map(|p| p.name).collect();
    for (i, profile) in sim.profiles().iter().enumerate() {
        let destination = match i % 5 {
            0 => String::new(), // missing
            1 => "FOR ORDERS".to_string(), // the classic junk value
            _ => port_names[i % port_names.len()].to_uppercase(),
        };
        let data = StaticVoyageData {
            mmsi: profile.mmsi,
            imo: 9_000_000 + i as u32,
            callsign: format!("SV{i:04}"),
            name: format!("DEMO VESSEL {i}"),
            // Real AIS ship-type codes: 30 = fishing, 70 = cargo.
            ship_type: if profile.is_fishing { 30 } else { 70 },
            draught_m: profile.draft_m,
            destination,
        };
        let [s1, s2] = encode_static_voyage(&data, (i % 10) as u8);
        lines.push((0, s1));
        lines.push((0, s2));
    }
    for report in sim.generate() {
        lines.push((report.timestamp.as_secs(), encode_report(&report)));
    }
    lines.sort_by_key(|(t, _)| *t);
    (lines, sim)
}

fn read_log(path: &str) -> Vec<(i64, String)> {
    let file = std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        std::process::exit(1);
    });
    let mut lines = Vec::new();
    for line in std::io::BufReader::new(file).lines() {
        let Ok(line) = line else { continue };
        let Some((ts, sentence)) = line.split_once(' ') else {
            continue;
        };
        let Ok(t) = ts.parse::<i64>() else { continue };
        lines.push((t, sentence.to_string()));
    }
    lines.sort_by_key(|(t, _)| *t);
    lines
}

/// One line of operational vitals from the global metrics registry, shown
/// on stderr every `--metrics-every` slides. Reads counters/gauges only —
/// cheap enough to run inside the slide loop.
fn metrics_summary_line(query_secs: i64) -> String {
    use maritime_obs::names;
    let s = maritime_obs::snapshot();
    let c = |name: &str| s.counter(name);
    let g = |name: &str| s.gauge(name);
    format!(
        "t={query_secs}s slides={} | tracker in={} cp={} drops={} vessels={} window={} | \
         rtec q={} evals={} replays={} | cer in={} ce={} alerts={}",
        c(names::PIPELINE_SLIDES),
        c(names::TRACKER_POINTS_INGESTED),
        c(names::TRACKER_CRITICAL_POINTS),
        c(names::TRACKER_NOISE_DROPS),
        g(names::TRACKER_ACTIVE_VESSELS),
        g(names::TRACKER_WINDOW_POINTS),
        c(names::RTEC_QUERIES),
        c(names::RTEC_RULE_EVALUATIONS),
        c(names::RTEC_CACHE_REPLAYS),
        c(names::CER_INPUT_EVENTS),
        c(names::CER_CE_RECOGNIZED),
        c(names::CER_ALERTS),
    )
}

fn main() {
    let opts = parse_args();
    // Flip the switch before NMEA decoding so the ais_* counters honor
    // the opt-out too; the pipeline constructor re-applies it from config.
    maritime_obs::set_enabled(!opts.no_metrics);
    // A panic mid-run records a flight event and, when a dump is armed,
    // writes the ring before the process dies.
    flight::install_panic_hook();
    if let Some(path) = &opts.flight_dump {
        flight::arm_dump(path);
    }
    if opts.trace_out.is_some() {
        // Install before any work so every stage span lands on the timeline.
        maritime_obs::chrome::install();
    }

    let (lines, sim) = match (&opts.demo, &opts.input) {
        (Some((v, h)), _) => {
            eprintln!("demo mode: {v} vessels over {h} h");
            let (lines, sim) = demo_log(*v, *h);
            (lines, Some(sim))
        }
        (None, Some(path)) => (read_log(path), None),
        (None, None) => unreachable!("parse_args sets a default"),
    };
    eprintln!("{} NMEA sentences to scan", lines.len());

    if let Some(path) = &opts.dump_log {
        let body: String = lines
            .iter()
            .map(|(t, l)| format!("{t} {l}\n"))
            .collect();
        std::fs::write(path, body).expect("write NMEA log");
        eprintln!("NMEA log written to {path}");
    }

    // Data scanner: decode, clean, reassemble, collect voyage declarations.
    let mut scanner = DataScanner::new();
    let tuples: Vec<PositionTuple> = lines
        .iter()
        .filter_map(|(t, line)| scanner.scan(line, Timestamp(*t)))
        .collect();
    let stats = scanner.stats();
    eprintln!(
        "scanner: {} accepted, {} voyage declarations, {} discarded",
        stats.accepted,
        stats.voyage_declarations,
        stats.total - stats.accepted - stats.voyage_declarations - stats.fragments_pending
    );

    // Static knowledge: areas always from the Aegean catalogue; vessel
    // facts from the simulator when available, else from the declarations.
    let areas = generate_areas(&AreaGenConfig::default());
    let vessels: Vec<VesselInfo> = match &sim {
        Some(sim) => sim.profiles().iter().map(VesselInfo::from).collect(),
        None => tuples
            .iter()
            .map(|t| t.mmsi)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .map(|mmsi| {
                let declared = scanner.voyages().latest(mmsi);
                VesselInfo {
                    mmsi,
                    draft_m: declared.map_or(5.0, |d| d.draught_m),
                    // AIS ship-type code 30 designates fishing vessels.
                    is_fishing: declared.is_some_and(|d| d.ship_type == 30),
                }
            })
            .collect(),
    };

    // The pipeline.
    let config = SurveillanceConfig {
        parallelism: Parallelism {
            tracker_shards: opts.shards,
            recognition_bands: opts.bands,
        },
        incremental_recognition: opts.incremental,
        metrics: if opts.no_metrics {
            MetricsMode::Off
        } else {
            MetricsMode::On
        },
        trace: if opts.trace_ce.is_some() {
            TraceMode::Full
        } else {
            TraceMode::Off
        },
        recognition_deadline_ms: opts.deadline_ms,
        ..SurveillanceConfig::default()
    };
    if let Err(e) = config.validate() {
        eprintln!("invalid configuration: {e}");
        std::process::exit(2);
    }
    if opts.shards > 1 || opts.bands > 1 {
        eprintln!(
            "parallelism: {} tracker shard(s), {} recognition band(s)",
            opts.shards, opts.bands
        );
    }
    if opts.incremental {
        eprintln!("recognition: checkpointed incremental evaluation");
    }
    if opts.trace_ce.is_some() {
        eprintln!("tracing: per-CE provenance chains (forces from-scratch evaluation)");
    }
    let mut pipeline =
        SurveillancePipeline::new(&config, vessels, areas.clone()).expect("validated config");
    let mut slides_seen = 0usize;
    let mut last_query_secs = 0i64;
    let mut trace_log = TraceLog::new();
    let report = pipeline.run_with_observer(tuples, |outcome| {
        slides_seen += 1;
        last_query_secs = outcome.query_time.as_secs();
        if !outcome.chains.is_empty() {
            trace_log.record(outcome.chains.clone());
        }
        if let Some(every) = opts.metrics_every {
            if every > 0 && slides_seen.is_multiple_of(every) {
                eprintln!(
                    "metrics: {}",
                    metrics_summary_line(outcome.query_time.as_secs())
                );
            }
        }
    });
    // Final flush: the last partial period would otherwise never be
    // reported, leaving the stderr log short of the run's end state.
    if opts.metrics_every.is_some_and(|every| every > 0) {
        eprintln!("metrics (final): {}", metrics_summary_line(last_query_secs));
    }

    println!("=== surveil run report ===");
    println!("raw positions ........ {}", report.raw_positions);
    println!("critical points ...... {}", report.critical_points);
    println!(
        "compression .......... {:.1}%",
        report.compression_ratio * 100.0
    );
    println!("complex events ....... {}", report.ce_total);
    println!("alert records ........ {}", report.alerts);
    println!();
    println!("{}", report.archive);
    println!();
    for record in pipeline.alerts().records() {
        println!("ALERT {}", record.render());
    }

    if opts.audit {
        let audit = audit_destinations(pipeline.archive(), scanner.voyages());
        println!();
        println!("--- declared-vs-derived destination audit (§3.2) ---");
        println!("trips audited ........ {}", audit.trips);
        println!("with declaration ..... {}", audit.declared);
        println!("matching ............. {}", audit.matching);
        println!("mismatching .......... {}", audit.mismatching);
        println!("undeclared ........... {}", audit.undeclared);
        if let Some(acc) = audit.declared_accuracy() {
            println!("declared accuracy .... {:.0}%", acc * 100.0);
        }
    }

    if let Some(path) = &opts.kml {
        let mut kml = KmlWriter::new();
        for area in &areas {
            kml.add_area(area);
        }
        let archived: Vec<CriticalPoint> = pipeline
            .archive()
            .trips()
            .iter()
            .flat_map(|t| t.points.iter().copied())
            .collect();
        for (mmsi, synopsis) in per_vessel_synopses(&archived) {
            kml.add_polyline(&format!("vessel {mmsi}"), &synopsis.polyline());
        }
        std::fs::write(path, kml.finish()).expect("write KML");
        eprintln!("KML written to {path}");
    }

    if let Some(path) = &opts.archive {
        let file = std::fs::File::create(path).expect("create archive file");
        pipeline
            .archive()
            .save_json(std::io::BufWriter::new(file))
            .expect("serialize archive");
        eprintln!("archive written to {path}");
    }

    if opts.metrics_json.is_some() || opts.metrics_prom.is_some() {
        let snapshot = maritime_obs::snapshot();
        if let Some(path) = &opts.metrics_json {
            std::fs::write(path, maritime_obs::encode::json(&snapshot))
                .expect("write metrics JSON");
            eprintln!("metrics snapshot (JSON) written to {path}");
        }
        if let Some(path) = &opts.metrics_prom {
            std::fs::write(path, maritime_obs::encode::prometheus_text(&snapshot))
                .expect("write metrics exposition");
            eprintln!("metrics snapshot (Prometheus text) written to {path}");
        }
    }

    if let Some(path) = &opts.trace_ce {
        std::fs::write(path, trace_log.to_json()).expect("write provenance chains");
        eprintln!(
            "{} provenance chain(s) written to {path}; inspect with `surveil explain <ce-id> \
             --chains {path}`",
            trace_log.len()
        );
    }

    if let Some(path) = &opts.trace_out {
        std::fs::write(path, maritime_obs::chrome::export_json()).expect("write Chrome trace");
        let dropped = maritime_obs::chrome::dropped();
        if dropped > 0 {
            eprintln!("timeline: {dropped} span(s) dropped past the ring capacity");
        }
        eprintln!("Chrome-trace timeline written to {path} (load in Perfetto)");
    }

    if let Some(path) = &opts.flight_dump {
        flight::dump_to(std::path::Path::new(path), "on-demand").expect("write flight dump");
        eprintln!("flight recorder dumped to {path}");
    }
}
