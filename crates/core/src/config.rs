//! System configuration — the calibrated settings of Tables 2 and 3.

use maritime_cer::SpatialMode;
use maritime_stream::{Duration, WindowSpec, WindowSpecError};
use maritime_tracker::TrackerParams;
use serde::{Deserialize, Serialize};

/// Whether the pipeline publishes runtime metrics to the global
/// [`maritime_obs`] registry (see `OBSERVABILITY.md`).
///
/// Metric updates are lock-free atomic increments and cost well under 1%
/// of tracker throughput (`cargo bench --bench obs_overhead` asserts
/// this), so `On` is the default; `Off` flips every counter, gauge,
/// histogram, and span into a no-op for latency-critical deployments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricsMode {
    /// Publish metrics (the default).
    #[default]
    On,
    /// Disable every metric update; snapshots stay frozen.
    Off,
}

/// Whether recognition assembles per-CE provenance chains (see
/// `OBSERVABILITY.md`, "Tracing & provenance").
///
/// `Full` makes every emitted CE carry a serializable derivation — source
/// AIS sentence ids → critical-point annotations → contributing fluent
/// firings → rule id — at the cost of forcing from-scratch window
/// evaluation (the incremental fast path replays retained triggers
/// through cached interval maps without re-running rules, so there is
/// nothing to record on it). `Off` (the default) leaves recognition
/// byte-identical to an untraced run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceMode {
    /// No provenance capture (the default).
    #[default]
    Off,
    /// Record a full derivation chain for every emitted CE.
    Full,
}

/// Degree of parallelism for each pipeline stage (§5.2 ran recognition on
/// two processors; tracking shards the same way by vessel).
///
/// `1` everywhere (the default) reproduces the serial pipeline exactly.
/// Tracking shards partition the fleet by MMSI hash — equivalent to serial
/// output up to the interleaving of independent vessels — while
/// recognition bands partition the monitored region by longitude, which
/// is exact only for CEs that do not straddle a band boundary (see
/// `maritime_cer::partition`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Parallelism {
    /// Worker shards for the mobility tracker (1 = in-thread serial).
    pub tracker_shards: usize,
    /// Longitude bands for CE recognition (1 = single recognizer).
    pub recognition_bands: usize,
}

impl Default for Parallelism {
    fn default() -> Self {
        Self {
            tracker_shards: 1,
            recognition_bands: 1,
        }
    }
}

impl Parallelism {
    /// Largest accepted degree for either stage; beyond this, per-worker
    /// batches are too small for the fan-out cost to ever amortize.
    pub const MAX_DEGREE: usize = 256;

    /// Validates both degrees.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (stage, degree) in [
            ("tracker_shards", self.tracker_shards),
            ("recognition_bands", self.recognition_bands),
        ] {
            if degree == 0 || degree > Self::MAX_DEGREE {
                return Err(ConfigError::Parallelism {
                    stage,
                    degree,
                });
            }
        }
        Ok(())
    }
}

/// Complete pipeline configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SurveillanceConfig {
    /// Mobility-tracking thresholds (Table 3).
    pub tracker: TrackerParams,
    /// Degree of parallelism per pipeline stage.
    pub parallelism: Parallelism,
    /// Sliding window of the trajectory detection component (Table 2
    /// defaults in bold: ω = 1 h, β = 5 min — the smallest setting that
    /// batches data meaningfully for online operation).
    pub tracking_window: WindowSpec,
    /// Sliding window of the CE recognition component (§5.2: slide of 1 h,
    /// range 1–9 h).
    pub recognition_window: WindowSpec,
    /// Proximity threshold of the `close/3` predicate, meters.
    pub close_threshold_m: f64,
    /// Spatial reasoning mode (Figure 11(a) vs 11(b)).
    pub spatial_mode: SpatialMode,
    /// Checkpointed incremental recognition: evaluate each query over the
    /// delta since the previous one instead of re-deriving the whole
    /// window (output is bit-identical; see `maritime_rtec::cache`).
    pub incremental_recognition: bool,
    /// Runtime metrics publication (see `OBSERVABILITY.md`). Applied
    /// globally when the pipeline is constructed.
    pub metrics: MetricsMode,
    /// Per-CE provenance capture (see [`TraceMode`]).
    pub trace: TraceMode,
    /// Soft deadline for one recognition query, in milliseconds. When a
    /// query overruns it, the pipeline bumps
    /// `pipeline_deadline_overruns_total` and records a
    /// `recognition_overrun` flight-recorder event (which triggers a dump
    /// if one is armed — see `maritime_obs::flight`). `None` disables the
    /// check.
    pub recognition_deadline_ms: Option<u64>,
}

impl Default for SurveillanceConfig {
    fn default() -> Self {
        Self {
            tracker: TrackerParams::default(),
            parallelism: Parallelism::default(),
            tracking_window: WindowSpec::new(Duration::hours(1), Duration::minutes(5))
                .expect("valid default window"),
            recognition_window: WindowSpec::new(Duration::hours(6), Duration::hours(1))
                .expect("valid default window"),
            close_threshold_m: 2_000.0,
            spatial_mode: SpatialMode::OnDemand,
            incremental_recognition: false,
            metrics: MetricsMode::default(),
            trace: TraceMode::default(),
            recognition_deadline_ms: None,
        }
    }
}

impl SurveillanceConfig {
    /// Validates every sub-configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.tracker.validate().map_err(ConfigError::Tracker)?;
        self.parallelism.validate()?;
        check_window(self.tracking_window)?;
        check_window(self.recognition_window)?;
        if self.close_threshold_m <= 0.0 {
            return Err(ConfigError::CloseThreshold(self.close_threshold_m));
        }
        // The recognizer runs on tracker slides: its cadence must be a
        // multiple of the tracking slide to align query times.
        let ts = self.tracking_window.slide.as_secs();
        let rs = self.recognition_window.slide.as_secs();
        if rs % ts != 0 {
            return Err(ConfigError::MisalignedSlides {
                tracking_secs: ts,
                recognition_secs: rs,
            });
        }
        if self.recognition_deadline_ms == Some(0) {
            return Err(ConfigError::ZeroDeadline);
        }
        Ok(())
    }
}

fn check_window(spec: WindowSpec) -> Result<(), ConfigError> {
    // Re-validate invariants (a deserialized spec bypasses the ctor).
    WindowSpec::new(spec.range, spec.slide)
        .map(|_| ())
        .map_err(ConfigError::Window)
}

/// Configuration validation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// Invalid tracker parameters.
    Tracker(String),
    /// Invalid window specification.
    Window(WindowSpecError),
    /// Non-positive proximity threshold.
    CloseThreshold(f64),
    /// A parallelism degree outside `1..=Parallelism::MAX_DEGREE`.
    Parallelism {
        /// Which stage was misconfigured.
        stage: &'static str,
        /// The rejected degree.
        degree: usize,
    },
    /// A recognition deadline of zero milliseconds (every query would
    /// overrun; use `None` to disable the check instead).
    ZeroDeadline,
    /// The recognition slide is not a multiple of the tracking slide.
    MisalignedSlides {
        /// Tracking slide in seconds.
        tracking_secs: i64,
        /// Recognition slide in seconds.
        recognition_secs: i64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Tracker(msg) => write!(f, "tracker parameters: {msg}"),
            Self::Window(e) => write!(f, "window spec: {e}"),
            Self::CloseThreshold(v) => write!(f, "close threshold must be positive, got {v}"),
            Self::Parallelism { stage, degree } => write!(
                f,
                "{stage} must be in 1..={}, got {degree}",
                Parallelism::MAX_DEGREE
            ),
            Self::ZeroDeadline => write!(
                f,
                "recognition deadline must be at least 1 ms (use null to disable)"
            ),
            Self::MisalignedSlides { tracking_secs, recognition_secs } => write!(
                f,
                "recognition slide ({recognition_secs}s) must be a multiple of the tracking slide ({tracking_secs}s)"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

impl PartialEq for SurveillanceConfig {
    fn eq(&self, other: &Self) -> bool {
        self.tracker == other.tracker
            && self.parallelism == other.parallelism
            && self.tracking_window == other.tracking_window
            && self.recognition_window == other.recognition_window
            && self.close_threshold_m == other.close_threshold_m
            && self.spatial_mode == other.spatial_mode
            && self.incremental_recognition == other.incremental_recognition
            && self.metrics == other.metrics
            && self.trace == other.trace
            && self.recognition_deadline_ms == other.recognition_deadline_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        SurveillanceConfig::default().validate().unwrap();
    }

    #[test]
    fn misaligned_slides_rejected() {
        let cfg = SurveillanceConfig {
            tracking_window: WindowSpec::new(Duration::hours(1), Duration::minutes(7)).unwrap(),
            ..Default::default()
        };
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::MisalignedSlides { .. })
        ));
    }

    #[test]
    fn bad_threshold_rejected() {
        let cfg = SurveillanceConfig {
            close_threshold_m: 0.0,
            ..Default::default()
        };
        assert!(matches!(cfg.validate(), Err(ConfigError::CloseThreshold(_))));
    }

    #[test]
    fn bad_tracker_params_rejected() {
        let cfg = SurveillanceConfig {
            tracker: TrackerParams { m: 0, ..TrackerParams::default() },
            ..Default::default()
        };
        assert!(matches!(cfg.validate(), Err(ConfigError::Tracker(_))));
    }

    #[test]
    fn config_serializes_roundtrip() {
        let cfg = SurveillanceConfig {
            parallelism: Parallelism {
                tracker_shards: 4,
                recognition_bands: 2,
            },
            incremental_recognition: true,
            metrics: MetricsMode::Off,
            trace: TraceMode::Full,
            recognition_deadline_ms: Some(250),
            ..SurveillanceConfig::default()
        };
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SurveillanceConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn zero_deadline_rejected() {
        let cfg = SurveillanceConfig {
            recognition_deadline_ms: Some(0),
            ..Default::default()
        };
        assert!(matches!(cfg.validate(), Err(ConfigError::ZeroDeadline)));
        let ok = SurveillanceConfig {
            recognition_deadline_ms: Some(1),
            ..Default::default()
        };
        ok.validate().unwrap();
    }

    #[test]
    fn zero_or_excessive_parallelism_rejected() {
        for parallelism in [
            Parallelism { tracker_shards: 0, recognition_bands: 1 },
            Parallelism { tracker_shards: 1, recognition_bands: 0 },
            Parallelism { tracker_shards: Parallelism::MAX_DEGREE + 1, recognition_bands: 1 },
        ] {
            let cfg = SurveillanceConfig { parallelism, ..Default::default() };
            assert!(matches!(cfg.validate(), Err(ConfigError::Parallelism { .. })));
        }
        let ok = SurveillanceConfig {
            parallelism: Parallelism { tracker_shards: 8, recognition_bands: 2 },
            ..Default::default()
        };
        ok.validate().unwrap();
    }
}
