//! Chaos harness: runs perturbed sentence streams through the full
//! pipeline under every engine configuration and applies the metamorphic
//! oracles from `maritime-chaos`.
//!
//! The crate split keeps dependencies one-directional: `maritime-chaos`
//! knows how to perturb streams and compare [`CeObservation`]s but
//! nothing about pipelines; this module knows how to turn a sentence
//! stream into an observation. A chaos run is
//!
//! ```text
//! demo_sentences → ChaosPlan::apply → AdmissionBuffer → DataScanner
//!                → SurveillancePipeline (per engine) → CeObservation
//! ```
//!
//! and the oracle helpers ([`ChaosHarness::check_plan`] and friends) are
//! shared verbatim by the `surveil chaos` subcommand and the root-level
//! `chaos_*` integration tests, so a plan minimized in CI replays under
//! exactly the machinery the tests exercise.

use std::collections::BTreeSet;

use maritime_ais::{DataScanner, PositionTuple, ScanStats};
use maritime_cer::VesselInfo;
use maritime_chaos::oracle::{check_agreement, check_identical, check_vessel_projection};
use maritime_chaos::socket::{SocketPlan, SourcedLine};
use maritime_chaos::{
    demo_sentences, sourced_demo_sentences, CeObservation, ChaosPlan, OracleViolation, StreamLine,
};
use maritime_geo::aegean::{generate_areas, AreaGenConfig};
use maritime_geo::Area;
use maritime_rtec::IncrementalStats;
use maritime_stream::{
    AdmissionBuffer, AdmissionStats, Duration, SlideBatches, SourceId, SourceMux, SourceVerdict,
    Timestamp, WindowSpec,
};

use crate::config::{SurveillanceConfig, TraceMode};
use crate::pipeline::SurveillancePipeline;

/// The engine configurations the cross-engine agreement oracle compares.
/// All four must produce byte-identical [`CeObservation`]s on *any*
/// stream, perturbed or not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosEngine {
    /// Single-threaded tracker, from-scratch recognition.
    Serial,
    /// Sharded parallel tracker (4 shards).
    Sharded,
    /// Checkpointed incremental recognition.
    Incremental,
    /// Full provenance capture ([`TraceMode::Full`]).
    Traced,
}

impl ChaosEngine {
    /// Every engine configuration, in comparison order.
    pub const ALL: [ChaosEngine; 4] = [
        ChaosEngine::Serial,
        ChaosEngine::Sharded,
        ChaosEngine::Incremental,
        ChaosEngine::Traced,
    ];

    /// Stable label used in oracle violations and CI artifacts.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ChaosEngine::Serial => "serial",
            ChaosEngine::Sharded => "sharded",
            ChaosEngine::Incremental => "incremental",
            ChaosEngine::Traced => "traced",
        }
    }

    fn configure(self, config: &mut SurveillanceConfig) {
        match self {
            ChaosEngine::Serial => {}
            ChaosEngine::Sharded => config.parallelism.tracker_shards = 4,
            ChaosEngine::Incremental => config.incremental_recognition = true,
            ChaosEngine::Traced => config.trace = TraceMode::Full,
        }
    }
}

/// Everything one engine produced from one (possibly perturbed) stream.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// Recognized complex events, canonically rendered.
    pub observation: CeObservation,
    /// Decode-layer accounting (includes `fragments_truncated`).
    pub scan: ScanStats,
    /// Admission-layer accounting (includes strictly-late arrivals).
    pub admission: AdmissionStats,
    /// Incremental-evaluation accounting; the late-arrival coverage test
    /// asserts `full` grows when late events force a window recompute.
    pub incremental: IncrementalStats,
}

/// A self-contained chaos world: a deterministic fleet, its areas, and
/// the pipeline/window parameters every engine run shares.
#[derive(Debug, Clone)]
pub struct ChaosHarness {
    /// Fleet seed (also the default stream seed).
    pub seed: u64,
    /// Fleet size.
    pub vessels: usize,
    /// Simulated stream duration, hours.
    pub hours: i64,
    /// Admission-buffer skew bound, seconds. Reorders within this bound
    /// must be invisible ([`ChaosPlan::equivalence`] generates exactly
    /// such plans).
    pub admission_skew_secs: i64,
    /// Recognition bands (1 = single recognizer). The late-arrival
    /// coverage test raises this to check per-band fallback accounting.
    pub recognition_bands: usize,
    /// Cross-source duplicate-suppression window for sourced (socket)
    /// runs, seconds — mirrors `surveil serve --dedup-secs`. Zero
    /// disables; the plain single-source runner never dedups.
    pub dedup_window_secs: i64,
}

impl Default for ChaosHarness {
    fn default() -> Self {
        Self {
            // 40 rogue vessels over 12 hours: small enough that one
            // engine run takes ~0.1 s, large enough that the clean run
            // recognizes both durative CEs and instantaneous alerts —
            // the oracles are meaningless on a stream that recognizes
            // nothing.
            seed: 0xC4A05,
            vessels: 40,
            hours: 12,
            admission_skew_secs: 120,
            recognition_bands: 1,
            dedup_window_secs: 10,
        }
    }
}

impl ChaosHarness {
    /// A harness with the default world but a caller-chosen seed.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// The deterministic baseline stream and the fleet's static facts.
    #[must_use]
    pub fn baseline(&self) -> (Vec<StreamLine>, Vec<VesselInfo>) {
        demo_sentences(self.seed, self.vessels, self.hours)
    }

    fn areas(&self) -> Vec<Area> {
        generate_areas(&AreaGenConfig::default())
    }

    /// The shared pipeline configuration: windows fast enough that a
    /// five-hour stream crosses several recognition boundaries, slides
    /// aligned per [`SurveillanceConfig::validate`].
    #[must_use]
    pub fn config(&self, engine: ChaosEngine) -> SurveillanceConfig {
        let mut config = SurveillanceConfig {
            tracking_window: WindowSpec::new(Duration::minutes(30), Duration::minutes(5))
                .expect("valid chaos tracking window"),
            recognition_window: WindowSpec::new(Duration::hours(2), Duration::minutes(30))
                .expect("valid chaos recognition window"),
            ..SurveillanceConfig::default()
        };
        config.parallelism.recognition_bands = self.recognition_bands;
        engine.configure(&mut config);
        config
    }

    /// Runs one sentence stream through one engine: admission reordering
    /// repair, decode, tracking, recognition. Scanner truncation and
    /// admission lateness are reported alongside the observation so tests
    /// can assert the fault actually reached the layer under test.
    ///
    /// # Panics
    /// If the pipeline configuration fails validation (a harness bug, not
    /// an input property).
    #[must_use]
    pub fn run(&self, lines: &[StreamLine], vessels: &[VesselInfo], engine: ChaosEngine) -> EngineRun {
        self.run_with_kills(lines, vessels, engine, &[])
    }

    /// [`Self::run`] under a crash schedule: before the first slide whose
    /// query time reaches each `(at_secs, band)`, the recognition band is
    /// checkpointed, dropped, and rebuilt from its own bytes in place
    /// ([`SurveillancePipeline::kill_partition`]). `KillPartition` is a
    /// *process* fault, not a stream perturbation — the stream passes
    /// through untouched and the harness interprets the schedule here, so
    /// the equivalence oracle directly proves crash/restore invisibility.
    /// Kills scheduled past the last slide fire before the final flush.
    ///
    /// # Panics
    /// If the pipeline configuration fails validation, or a kill's
    /// checkpoint round-trip fails to decode (a format bug, not an input
    /// property — the oracle suite must fail loudly on it).
    #[must_use]
    pub fn run_with_kills(
        &self,
        lines: &[StreamLine],
        vessels: &[VesselInfo],
        engine: ChaosEngine,
        kills: &[(i64, u32)],
    ) -> EngineRun {
        let config = self.config(engine);
        let mut pipeline = SurveillancePipeline::new(&config, vessels.to_vec(), self.areas())
            .expect("chaos harness config must validate");

        let mut admission: AdmissionBuffer<String> =
            AdmissionBuffer::new(Duration::secs(self.admission_skew_secs));
        let mut scanner = DataScanner::new();
        let mut tuples: Vec<PositionTuple> = Vec::new();
        let scan_admitted = |scanner: &mut DataScanner,
                             tuples: &mut Vec<PositionTuple>,
                             batch: Vec<(Timestamp, String)>| {
            for (t, line) in batch {
                if let Some(tuple) = scanner.scan(&line, t) {
                    tuples.push(tuple);
                }
            }
        };
        let mut last_t = Timestamp::ZERO;
        for (t, line) in lines {
            let t = Timestamp(*t);
            last_t = last_t.max(t);
            let released = admission.push(t, line.clone());
            scan_admitted(&mut scanner, &mut tuples, released);
        }
        scan_admitted(&mut scanner, &mut tuples, admission.flush());
        scanner.finish(last_t);

        let mut schedule: Vec<(i64, u32)> = kills.to_vec();
        schedule.sort_unstable();
        let mut next_kill = 0usize;
        let mut kill_due = |pipeline: &mut SurveillancePipeline, up_to: Option<i64>| {
            while next_kill < schedule.len()
                && up_to.map_or(true, |q| schedule[next_kill].0 <= q)
            {
                pipeline
                    .kill_partition(schedule[next_kill].1)
                    .expect("kill/restore checkpoint round-trip must decode");
                next_kill += 1;
            }
        };

        // Mirrors `SurveillancePipeline::run_with_observer` (same batcher,
        // same origin, same final flush) with kills interleaved between
        // slides — a crash can only land on a consistent state boundary,
        // which is exactly where a real checkpoint would be taken.
        let mut observation = CeObservation::new();
        let keyed = tuples.into_iter().map(|t| (t.timestamp, t));
        let batches = SlideBatches::new(keyed, config.tracking_window, Timestamp::ZERO);
        let mut last_q = Timestamp::ZERO;
        for batch in batches {
            kill_due(&mut pipeline, Some(batch.query_time.as_secs()));
            let batch_tuples: Vec<PositionTuple> =
                batch.items.into_iter().map(|(_, t)| t).collect();
            let outcome = pipeline.slide(batch.query_time, &batch_tuples);
            if let Some(summary) = &outcome.recognition {
                observation.record_summary(summary);
            }
            last_q = batch.query_time;
        }
        kill_due(&mut pipeline, None);
        let final_outcome = pipeline.finish(last_q);
        if let Some(summary) = &final_outcome.recognition {
            observation.record_summary(summary);
        }
        EngineRun {
            observation,
            scan: scanner.stats(),
            admission: admission.stats(),
            incremental: pipeline.incremental_stats(),
        }
    }

    /// The deterministic baseline stream observed through `n_sources`
    /// sockets (vessels distributed round-robin), plus the fleet facts
    /// and each source's MMSI set — the world socket plans perturb.
    #[must_use]
    pub fn sourced_baseline(
        &self,
        n_sources: u32,
    ) -> (Vec<SourcedLine>, Vec<VesselInfo>, Vec<BTreeSet<u32>>) {
        sourced_demo_sentences(self.seed, self.vessels, self.hours, n_sources)
    }

    /// Runs one *sourced* stream through one engine, mirroring the
    /// `surveil serve` data path exactly: per-source syntactic filtering
    /// and cross-source dedup ([`SourceMux`]), admission reordering repair
    /// over `(line, connection)` pairs, and per-connection defragmenter
    /// keying ([`DataScanner::scan_from`]). The batch runner and the live
    /// server must recognize identically — this is the harness half of
    /// that contract (the server half is the end-to-end serve test).
    ///
    /// # Panics
    /// If the pipeline configuration fails validation (a harness bug, not
    /// an input property).
    #[must_use]
    pub fn run_sourced(
        &self,
        lines: &[SourcedLine],
        vessels: &[VesselInfo],
        engine: ChaosEngine,
    ) -> EngineRun {
        let config = self.config(engine);
        let mut pipeline = SurveillancePipeline::new(&config, vessels.to_vec(), self.areas())
            .expect("chaos harness config must validate");

        let mut mux = SourceMux::new(Duration::secs(self.dedup_window_secs));
        let mut admission: AdmissionBuffer<(String, u32)> =
            AdmissionBuffer::new(Duration::secs(self.admission_skew_secs));
        let mut scanner = DataScanner::new();
        let mut tuples: Vec<PositionTuple> = Vec::new();
        let scan_admitted = |scanner: &mut DataScanner,
                             tuples: &mut Vec<PositionTuple>,
                             batch: Vec<(Timestamp, (String, u32))>| {
            for (t, (line, conn)) in batch {
                if let Some(tuple) = scanner.scan_from(conn, &line, t) {
                    tuples.push(tuple);
                }
            }
        };
        let mut last_t = Timestamp::ZERO;
        for (conn, t, line) in lines {
            let t = Timestamp(*t);
            if mux.admit(SourceId(*conn), t, line) != SourceVerdict::Accepted {
                continue;
            }
            last_t = last_t.max(t);
            let released = admission.push(t, (line.clone(), *conn));
            scan_admitted(&mut scanner, &mut tuples, released);
        }
        scan_admitted(&mut scanner, &mut tuples, admission.flush());
        scanner.finish(last_t);

        let mut observation = CeObservation::new();
        pipeline.run_with_observer(tuples, |outcome| {
            if let Some(summary) = &outcome.recognition {
                observation.record_summary(summary);
            }
        });
        EngineRun {
            observation,
            scan: scanner.stats(),
            admission: admission.stats(),
            incremental: pipeline.incremental_stats(),
        }
    }

    /// Applies every oracle a socket plan is eligible for, over the
    /// `n_sources`-socket world:
    ///
    /// * **equivalence** when every op is CE-preserving (reconnect storms,
    ///   bounded reorders) — the sourced run must match the plain
    ///   single-source baseline byte for byte;
    /// * **vessel projection** when the plan silences whole sources from
    ///   their first line — exactly those sources' vessels may disappear,
    ///   nothing may appear;
    /// * **cross-engine agreement** always — all four engines must degrade
    ///   identically through socket faults.
    ///
    /// # Errors
    /// The first violation found.
    pub fn check_socket_plan(
        &self,
        plan: &SocketPlan,
        n_sources: u32,
    ) -> Result<(), OracleViolation> {
        let (sourced, vessels, mmsis) = self.sourced_baseline(n_sources);
        let (perturbed, _) = plan.apply(&sourced);
        if plan.preserves_ces(self.admission_skew_secs) {
            let (plain, _) = self.baseline();
            let base = self.run(&plain, &vessels, ChaosEngine::Serial);
            let got = self.run_sourced(&perturbed, &vessels, ChaosEngine::Serial);
            check_identical("socket-equivalence", &base.observation, &got.observation)?;
        }
        let silenced = plan.silenced_sources();
        if !silenced.is_empty() {
            let dropped: BTreeSet<u32> = silenced
                .iter()
                .filter_map(|s| mmsis.get(*s as usize - 1))
                .flatten()
                .copied()
                .collect();
            let base = self.run_sourced(&sourced, &vessels, ChaosEngine::Serial);
            let got = self.run_sourced(&perturbed, &vessels, ChaosEngine::Serial);
            check_vessel_projection(&base.observation, &got.observation, &dropped)?;
        }
        let runs: Vec<(&'static str, EngineRun)> = ChaosEngine::ALL
            .iter()
            .map(|&e| (e.label(), self.run_sourced(&perturbed, &vessels, e)))
            .collect();
        let labelled: Vec<(&'static str, &CeObservation)> =
            runs.iter().map(|(l, r)| (*l, &r.observation)).collect();
        check_agreement(&labelled)
    }

    /// Oracle 1 & 2 — duplicate-idempotence / bounded-reorder
    /// equivalence: a CE-preserving plan (every op passes
    /// [`maritime_chaos::ChaosOp::preserves_ces`]) must leave the serial
    /// engine's observation byte-identical. `KillPartition` ops are
    /// interpreted as a crash schedule on the perturbed run only — the
    /// clean baseline never crashes, so the comparison proves the
    /// crash/restore cycle is recognition-invisible.
    ///
    /// # Errors
    /// The violation, when the perturbed observation differs.
    pub fn check_equivalence_plan(&self, plan: &ChaosPlan) -> Result<(), OracleViolation> {
        let (lines, vessels) = self.baseline();
        let base = self.run(&lines, &vessels, ChaosEngine::Serial);
        let (perturbed, _) = plan.apply(&lines);
        let got = self.run_with_kills(
            &perturbed,
            &vessels,
            ChaosEngine::Serial,
            &kill_schedule(plan),
        );
        check_identical(
            "stream-equivalence",
            &base.observation,
            &got.observation,
        )
    }

    /// Oracle 4 — cross-engine agreement: all four engines must agree on
    /// the plan's perturbed stream. Returns each engine's run (label,
    /// run) so callers can additionally inspect scan/admission stats.
    ///
    /// # Errors
    /// The violation naming the first disagreeing engine.
    pub fn check_agreement_plan(
        &self,
        plan: &ChaosPlan,
    ) -> Result<Vec<(&'static str, EngineRun)>, OracleViolation> {
        let (lines, vessels) = self.baseline();
        let (perturbed, _) = plan.apply(&lines);
        let kills = kill_schedule(plan);
        let runs: Vec<(&'static str, EngineRun)> = ChaosEngine::ALL
            .iter()
            .map(|&e| (e.label(), self.run_with_kills(&perturbed, &vessels, e, &kills)))
            .collect();
        let labelled: Vec<(&'static str, &CeObservation)> =
            runs.iter().map(|(l, r)| (*l, &r.observation)).collect();
        check_agreement(&labelled)?;
        Ok(runs)
    }

    /// Oracle 3 — gap-monotonicity: silencing vessels (a
    /// [`maritime_chaos::ChaosOp::DropVessels`] plan) never *creates* CE
    /// evidence — surviving vessels' alerts are exact, durative intervals
    /// only shrink.
    ///
    /// # Errors
    /// The violation, when dropping positions created or grew a CE.
    pub fn check_monotonicity_plan(&self, plan: &ChaosPlan) -> Result<(), OracleViolation> {
        let (lines, vessels) = self.baseline();
        let base = self.run(&lines, &vessels, ChaosEngine::Serial);
        let (thinned, stats) = plan.apply(&lines);
        let got = self.run(&thinned, &vessels, ChaosEngine::Serial);
        check_vessel_projection(&base.observation, &got.observation, &stats.dropped_vessels)
    }

    /// Applies every oracle the plan is eligible for: equivalence when
    /// all ops are CE-preserving, vessel projection when the plan drops
    /// vessels, and cross-engine agreement always. This is the predicate
    /// the shrinker minimizes against.
    ///
    /// # Errors
    /// The first violation found.
    pub fn check_plan(&self, plan: &ChaosPlan) -> Result<(), OracleViolation> {
        if plan
            .ops
            .iter()
            .all(|op| op.preserves_ces(self.admission_skew_secs))
        {
            self.check_equivalence_plan(plan)?;
        }
        if plan
            .ops
            .iter()
            .any(|op| matches!(op, maritime_chaos::ChaosOp::DropVessels { .. }))
        {
            self.check_monotonicity_plan(plan)?;
        }
        self.check_agreement_plan(plan).map(|_| ())
    }
}

/// The crash schedule a plan encodes: every
/// [`maritime_chaos::ChaosOp::KillPartition`] op as `(at_secs, band)`,
/// sorted by crash time. The op's stream perturbation is the identity;
/// [`ChaosHarness::run_with_kills`] interprets the schedule instead.
#[must_use]
pub fn kill_schedule(plan: &ChaosPlan) -> Vec<(i64, u32)> {
    let mut kills: Vec<(i64, u32)> = plan
        .ops
        .iter()
        .filter_map(|op| match op {
            maritime_chaos::ChaosOp::KillPartition { at_secs, band } => Some((*at_secs, *band)),
            _ => None,
        })
        .collect();
    kills.sort_unstable();
    kills
}
