//! Alert delivery to the end user (marine authorities).
//!
//! "The recognized complex events are pushed in real-time to the end user
//! (marine authorities) for real-time decision-making" (§2). The pipeline
//! appends every recognized alert and CE interval boundary to an
//! [`AlertLog`]; embedding applications can drain it or render it.

use maritime_ais::Mmsi;
use maritime_cer::{Alert, AlertKind};
use maritime_geo::AreaId;
use maritime_rtec::Timestamp;
use serde::{Deserialize, Serialize};

/// One notification pushed to the authorities.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlertRecord {
    /// An instantaneous alert (illegal or dangerous shipping).
    Instant {
        /// When the triggering ME occurred.
        at: Timestamp,
        /// The recognized alert.
        alert: Alert,
    },
    /// A durative CE began (suspicious area / illegal fishing).
    CeStarted {
        /// Interval start.
        at: Timestamp,
        /// CE name (`"suspicious"` or `"illegalFishing"`).
        name: &'static str,
        /// The area involved.
        area: AreaId,
    },
    /// A durative CE ended.
    CeEnded {
        /// Interval end.
        at: Timestamp,
        /// CE name.
        name: &'static str,
        /// The area involved.
        area: AreaId,
    },
}

impl AlertRecord {
    /// The timestamp the record refers to.
    #[must_use]
    pub fn at(&self) -> Timestamp {
        match self {
            Self::Instant { at, .. } | Self::CeStarted { at, .. } | Self::CeEnded { at, .. } => {
                *at
            }
        }
    }

    /// Human-readable one-liner.
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            Self::Instant { at, alert } => {
                let what = match alert.kind {
                    AlertKind::IllegalShipping => "ILLEGAL SHIPPING",
                    AlertKind::DangerousShipping => "DANGEROUS SHIPPING",
                };
                format!(
                    "[{at}] {what}: vessel {} near {}",
                    alert.vessel, alert.area
                )
            }
            Self::CeStarted { at, name, area } => {
                format!("[{at}] {name} started in {area}")
            }
            Self::CeEnded { at, name, area } => format!("[{at}] {name} ended in {area}"),
        }
    }
}

/// An in-memory alert log with de-duplication.
///
/// Recognition is re-run every window slide over overlapping contents, so
/// the same CE boundary is typically re-derived on consecutive queries;
/// the log keeps each unique record once.
#[derive(Debug, Default)]
pub struct AlertLog {
    records: Vec<AlertRecord>,
    seen: std::collections::HashSet<AlertRecord>,
}

impl AlertLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record unless an identical one was already logged.
    /// Returns whether it was new.
    pub fn push(&mut self, record: AlertRecord) -> bool {
        if self.seen.insert(record.clone()) {
            self.records.push(record);
            true
        } else {
            false
        }
    }

    /// All unique records, in arrival order.
    #[must_use]
    pub fn records(&self) -> &[AlertRecord] {
        &self.records
    }

    /// Number of unique records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records involving a vessel.
    #[must_use]
    pub fn for_vessel(&self, mmsi: Mmsi) -> Vec<&AlertRecord> {
        self.records
            .iter()
            .filter(|r| matches!(r, AlertRecord::Instant { alert, .. } if alert.vessel == mmsi))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instant(at: i64, vessel: u32) -> AlertRecord {
        AlertRecord::Instant {
            at: Timestamp(at),
            alert: Alert {
                kind: AlertKind::IllegalShipping,
                vessel: Mmsi(vessel),
                area: AreaId(3),
            },
        }
    }

    #[test]
    fn log_deduplicates() {
        let mut log = AlertLog::new();
        assert!(log.push(instant(10, 1)));
        assert!(!log.push(instant(10, 1)));
        assert!(log.push(instant(10, 2)));
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn render_mentions_kind_vessel_and_area() {
        let r = instant(10, 237_001_234).render();
        assert!(r.contains("ILLEGAL SHIPPING"), "{r}");
        assert!(r.contains("237001234"), "{r}");
        assert!(r.contains("area3"), "{r}");
    }

    #[test]
    fn ce_boundary_records() {
        let mut log = AlertLog::new();
        log.push(AlertRecord::CeStarted {
            at: Timestamp(5),
            name: "suspicious",
            area: AreaId(1),
        });
        log.push(AlertRecord::CeEnded {
            at: Timestamp(50),
            name: "suspicious",
            area: AreaId(1),
        });
        assert_eq!(log.records()[0].at(), Timestamp(5));
        assert!(log.records()[1].render().contains("ended"));
    }

    #[test]
    fn for_vessel_filters_instant_alerts() {
        let mut log = AlertLog::new();
        log.push(instant(10, 1));
        log.push(instant(20, 2));
        assert_eq!(log.for_vessel(Mmsi(1)).len(), 1);
        assert!(log.for_vessel(Mmsi(99)).is_empty());
    }
}
