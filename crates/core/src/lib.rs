//! End-to-end maritime surveillance system (Patroumpas et al., EDBT 2015).
//!
//! This crate wires the full processing scheme of Figure 1:
//!
//! ```text
//! AIS stream ──> Data Scanner ──> Mobility Tracker ──> Compressor
//!                                        │ critical points
//!                 ┌──────────────────────┼─────────────────────┐
//!                 ▼                      ▼                     ▼
//!         Trajectory Exporter   Complex Event Recognition   Staging area
//!             (KML)              (RTEC: suspicious areas,       │ deltas
//!                                 illegal fishing/shipping,     ▼
//!                                 dangerous shipping)      Trip reconstruction
//!                                        │ alerts               │ trips
//!                                        ▼                      ▼
//!                                  Marine authorities     Trajectory archive
//!                                                         (Hermes MOD analogue)
//!
//!          every stage ──metrics──> maritime-obs registry ──> snapshots
//!                                   (counters / gauges / histograms;
//!                                    surveil --metrics-json, OBSERVABILITY.md)
//! ```
//!
//! See [`pipeline::SurveillancePipeline`] for the runtime, [`config`] for
//! the calibrated settings of Tables 2–3, and the component crates
//! (`maritime-tracker`, `maritime-rtec`, `maritime-cer`,
//! `maritime-modstore`, `maritime-ais`, `maritime-geo`,
//! `maritime-stream`, `maritime-obs`) for each subsystem. Every stage
//! publishes runtime metrics to the global `maritime-obs` registry —
//! `OBSERVABILITY.md` at the repository root is the operator's handbook
//! for reading them.
//!
//! # Quickstart
//!
//! ```
//! use maritime::prelude::*;
//!
//! // Simulate a small AIS fleet (stand-in for a live AIS feed).
//! let sim = FleetSimulator::new(FleetConfig::tiny(42));
//! let areas = generate_areas(&AreaGenConfig::default());
//! let vessels: Vec<VesselInfo> = sim.profiles().iter().map(VesselInfo::from).collect();
//!
//! // Build and run the pipeline over the stream.
//! let config = SurveillanceConfig::default();
//! let mut pipeline = SurveillancePipeline::new(&config, vessels, areas).unwrap();
//! let report = pipeline.run(sim.generate().iter().map(|r| (*r).into()));
//!
//! assert!(report.raw_positions > 0);
//! assert!(report.compression_ratio > 0.5);
//! ```

#![warn(missing_docs)]

pub mod alerts;
pub mod chaos;
pub mod config;
pub mod pipeline;
pub mod serve;
pub mod trace;

pub use alerts::{AlertRecord, AlertLog};
pub use chaos::{kill_schedule, ChaosEngine, ChaosHarness, EngineRun};
pub use config::{MetricsMode, Parallelism, SurveillanceConfig, TraceMode};
pub use pipeline::{RunReport, SlideOutcome, SurveillancePipeline};
pub use serve::{BroadcastHub, LiveIngest, ServeOptions, ServerHandle, WireEncoder};
pub use trace::{SentenceIndex, TraceLog};

/// Convenient re-exports of the whole system surface.
pub mod prelude {
    pub use crate::alerts::{AlertLog, AlertRecord};
    pub use crate::config::{MetricsMode, Parallelism, SurveillanceConfig, TraceMode};
    pub use crate::pipeline::{RunReport, SlideOutcome, SurveillancePipeline};
    pub use crate::trace::{SentenceIndex, TraceLog};
    pub use maritime_ais::{
        DataScanner, FleetConfig, FleetSimulator, Mmsi, PositionReport, PositionTuple,
        VesselClass, VesselProfile,
    };
    pub use maritime_cer::{
        render_proof_tree, Alert, AlertKind, CeChain, CoordinatedRecognizer, EvalStrategy,
        GeoPartitioner, IncrementalStats, InputEvent, InputKind, Knowledge, MaritimeRecognizer,
        PartitionedRecognizer, SpatialMode, VesselInfo,
    };
    pub use maritime_geo::aegean::{generate_areas, ports, AreaGenConfig};
    pub use maritime_geo::{Area, AreaId, AreaKind, BoundingBox, GeoPoint, Polygon};
    pub use maritime_modstore::{ArchiveStats, StagingArea, TrajectoryStore, Trip, TripReconstructor};
    pub use maritime_rtec::{Interval, IntervalList};
    pub use maritime_stream::{Duration, ShardRouter, SlideBatches, Timestamp, WindowSpec};
    pub use maritime_tracker::{
        canonical_order, Annotation, CriticalPoint, MobilityTracker, ShardedTracker,
        TrackerParams, WindowedTracker,
    };
}
