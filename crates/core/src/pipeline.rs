//! The end-to-end surveillance pipeline (Figure 1).
//!
//! Every window slide performs the four phases whose costs Figure 10
//! breaks down — online tracking, staging of "delta" critical points,
//! trip reconstruction, archive loading — plus complex event recognition
//! at the recognizer's (coarser) cadence. Phase durations are measured
//! per slide so the benchmark harness can regenerate Figure 10 directly.

use std::time::{Duration as StdDuration, Instant};

use maritime_ais::PositionTuple;
use maritime_cer::{
    spatial, CeChain, CoordinatedRecognizer, EvalStrategy, GeoPartitioner, InputEvent, Knowledge,
    MaritimeRecognizer, SpatialMode, VesselInfo,
};
use maritime_geo::Area;
use maritime_modstore::{ArchiveStats, StagingArea, TrajectoryStore, TripReconstructor};
use maritime_obs::flight::{self, FlightKind};
use maritime_obs::{names, LazyCounter, LazyHistogram, SpanTimer};
use maritime_stream::{SlideBatches, Timestamp};
use maritime_tracker::tracker::FleetStats;
use maritime_tracker::{CriticalPoint, ShardedTracker, SlideReport, WindowedTracker};

use crate::alerts::{AlertLog, AlertRecord};
use crate::config::{ConfigError, MetricsMode, SurveillanceConfig, TraceMode};
use crate::trace::SentenceIndex;

/// Per-slide pipeline metrics (see `OBSERVABILITY.md`): one histogram per
/// Figure 10 phase plus the whole-slide wall time. Each phase is measured
/// by a [`SpanTimer`] stage, so the same clock-read pair feeds the
/// histogram, the [`PhaseTimings`] the benchmark harness consumes, and —
/// when the Chrome-trace collector is installed — a timeline slice.
static OBS_SLIDES: LazyCounter = LazyCounter::new(names::PIPELINE_SLIDES);
static OBS_SLIDE_NS: LazyHistogram = LazyHistogram::new(names::PIPELINE_SLIDE_NS);
static OBS_TRACKING_NS: LazyHistogram = LazyHistogram::new(names::PIPELINE_TRACKING_NS);
static OBS_STAGING_NS: LazyHistogram = LazyHistogram::new(names::PIPELINE_STAGING_NS);
static OBS_RECONSTRUCTION_NS: LazyHistogram =
    LazyHistogram::new(names::PIPELINE_RECONSTRUCTION_NS);
static OBS_LOADING_NS: LazyHistogram = LazyHistogram::new(names::PIPELINE_LOADING_NS);
static OBS_RECOGNITION_NS: LazyHistogram = LazyHistogram::new(names::PIPELINE_RECOGNITION_NS);
static OBS_DEADLINE_OVERRUNS: LazyCounter =
    LazyCounter::new(names::PIPELINE_DEADLINE_OVERRUNS);

/// Wall-clock cost of each pipeline phase in one slide (Figure 10).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Online mobility tracking (admit batch, detect events).
    pub tracking: StdDuration,
    /// Transfer of evicted deltas into the staging area.
    pub staging: StdDuration,
    /// Trip reconstruction over staged points.
    pub reconstruction: StdDuration,
    /// Loading reconstructed trips into the archive.
    pub loading: StdDuration,
    /// Complex event recognition (zero when not scheduled this slide).
    pub recognition: StdDuration,
}

impl PhaseTimings {
    /// Sum of the four trajectory-maintenance phases (Figure 10 stacks
    /// exactly these; recognition is reported separately in Figure 11).
    #[must_use]
    pub fn maintenance_total(&self) -> StdDuration {
        self.tracking + self.staging + self.reconstruction + self.loading
    }

    /// Element-wise sum.
    #[must_use]
    pub fn combined(self, other: PhaseTimings) -> PhaseTimings {
        PhaseTimings {
            tracking: self.tracking + other.tracking,
            staging: self.staging + other.staging,
            reconstruction: self.reconstruction + other.reconstruction,
            loading: self.loading + other.loading,
            recognition: self.recognition + other.recognition,
        }
    }
}

/// What one window slide produced.
#[derive(Debug, Clone)]
pub struct SlideOutcome {
    /// Query time of the slide.
    pub query_time: Timestamp,
    /// Raw positions admitted.
    pub admitted: usize,
    /// Critical points detected in this slide.
    pub fresh_critical: usize,
    /// Delta points evicted to staging.
    pub evicted: usize,
    /// Trips completed by reconstruction in this slide.
    pub trips_completed: usize,
    /// Complex events recognized, when recognition ran this slide.
    pub recognition: Option<maritime_cer::RecognitionSummary>,
    /// Provenance chains for the recognized CEs, with AIS sentence ids
    /// attached to the input leaves. Non-empty only when the pipeline
    /// runs under [`TraceMode::Full`] and recognition ran this slide.
    pub chains: Vec<CeChain>,
    /// Phase timings.
    pub timings: PhaseTimings,
    /// Per-shard tracking cost when the sharded backend ran this slide
    /// (one entry per shard, `tracking` field only); empty when serial.
    pub shard_timings: Vec<PhaseTimings>,
}

/// Aggregate report of a complete run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Window slides executed.
    pub slides: usize,
    /// Raw positions consumed.
    pub raw_positions: u64,
    /// Critical points produced.
    pub critical_points: u64,
    /// `1 − critical/raw`.
    pub compression_ratio: f64,
    /// Unique alert records pushed to authorities.
    pub alerts: usize,
    /// Total CE count across recognition queries.
    pub ce_total: usize,
    /// Final archive statistics (Table 4).
    pub archive: ArchiveStats,
    /// Summed phase timings across the run.
    pub timings: PhaseTimings,
}

/// The mobility-tracking backend: in-thread serial, or MMSI-sharded
/// across worker threads (equivalent output up to the interleaving of
/// independent vessels — see `maritime_tracker::sharded`).
enum TrackerBackend {
    Serial(WindowedTracker),
    Sharded(ShardedTracker),
}

impl TrackerBackend {
    fn slide(
        &mut self,
        query_time: Timestamp,
        batch: &[PositionTuple],
    ) -> (SlideReport, Vec<PhaseTimings>) {
        match self {
            Self::Serial(wt) => (wt.slide(query_time, batch), Vec::new()),
            Self::Sharded(st) => {
                let report = st.slide(query_time, batch);
                let shard_timings = report
                    .shard_elapsed
                    .iter()
                    .map(|elapsed| PhaseTimings {
                        tracking: *elapsed,
                        ..PhaseTimings::default()
                    })
                    .collect();
                (report.merged, shard_timings)
            }
        }
    }

    fn finish(&mut self) -> (Vec<CriticalPoint>, Vec<CriticalPoint>) {
        match self {
            Self::Serial(wt) => wt.finish(),
            Self::Sharded(st) => st.finish(),
        }
    }

    fn fleet_stats(&self) -> FleetStats {
        match self {
            Self::Serial(wt) => wt.tracker().stats(),
            Self::Sharded(st) => st.stats(),
        }
    }
}

/// The recognition backend: a single recognizer, or one per longitude
/// band running on scoped threads (§5.2's two-processor setup). The
/// banded case runs under the partition coordinator, which migrates
/// vessels across band boundaries and replicates border-strip events so
/// the merged output matches the serial recognizer exactly.
enum RecognizerBackend {
    /// Boxed: a recognizer's working memory dwarfs the partitioned
    /// handle, and the backend lives inside the long-lived pipeline.
    Single(Box<MaritimeRecognizer>),
    Partitioned(Box<CoordinatedRecognizer>),
}

impl RecognizerBackend {
    /// Feeds a fresh critical-point batch, attaching precomputed spatial
    /// facts where the knowledge base expects them (band-local facts in
    /// the partitioned case).
    fn add_critical(&mut self, fresh: &[CriticalPoint]) {
        let mut events = InputEvent::from_critical_batch(fresh);
        match self {
            Self::Single(r) => {
                if r.knowledge().spatial_mode == SpatialMode::Precomputed {
                    spatial::annotate_with_spatial_facts(&mut events, r.knowledge());
                }
                r.add_events(events);
            }
            Self::Partitioned(p) => p.add_events(events),
        }
    }

    fn recognize_and_summarize(&mut self, q: Timestamp) -> maritime_cer::RecognitionSummary {
        match self {
            Self::Single(r) => r.recognize_and_summarize(q),
            Self::Partitioned(p) => p.recognize_and_summarize(q),
        }
    }

    fn set_provenance(&mut self, on: bool) {
        match self {
            Self::Single(r) => r.set_provenance(on),
            Self::Partitioned(p) => p.set_provenance(on),
        }
    }

    fn take_chains(&mut self) -> Vec<CeChain> {
        match self {
            Self::Single(r) => r.take_chains(),
            Self::Partitioned(p) => p.take_chains(),
        }
    }

    fn incremental_stats(&self) -> maritime_rtec::IncrementalStats {
        match self {
            Self::Single(r) => r.incremental_stats(),
            Self::Partitioned(p) => p.incremental_stats(),
        }
    }
}

/// Longitude extent for uniform recognition bands: the monitored areas'
/// centroid span, padded so border areas do not sit on a band boundary.
/// Falls back to the full longitude range when there is nothing to span.
fn band_extent(areas: &[Area]) -> (f64, f64) {
    let lons: Vec<f64> = areas.iter().map(|a| a.polygon.centroid().lon).collect();
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for lon in lons {
        lo = lo.min(lon);
        hi = hi.max(lon);
    }
    if !(lo.is_finite() && hi.is_finite() && lo < hi) {
        return (-180.0, 180.0);
    }
    let pad = (hi - lo) * 0.05;
    (lo - pad, hi + pad)
}

/// The assembled surveillance system.
pub struct SurveillancePipeline {
    config: SurveillanceConfig,
    tracker: TrackerBackend,
    recognizer: RecognizerBackend,
    staging: StagingArea,
    reconstructor: TripReconstructor,
    store: TrajectoryStore,
    alert_log: AlertLog,
    origin: Timestamp,
    /// Admission-ordinal index of AIS sentences, kept only under
    /// [`TraceMode::Full`] so untraced runs pay nothing.
    sentences: Option<SentenceIndex>,
    /// Static vessel facts and monitored areas, retained so the knowledge
    /// bases can be rebuilt when a recognizer checkpoint is restored
    /// (static configuration is deliberately not serialized).
    vessel_infos: Vec<VesselInfo>,
    areas: Vec<Area>,
}

impl SurveillancePipeline {
    /// Builds the pipeline from a validated configuration, the fleet's
    /// static vessel facts, and the geographic areas.
    pub fn new(
        config: &SurveillanceConfig,
        vessels: Vec<VesselInfo>,
        areas: Vec<Area>,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        // Global switch: every counter/gauge/histogram/span in the
        // workspace becomes a no-op under `MetricsMode::Off`.
        maritime_obs::set_enabled(config.metrics == MetricsMode::On);
        let tracker = if config.parallelism.tracker_shards > 1 {
            TrackerBackend::Sharded(ShardedTracker::new(
                config.tracker,
                config.tracking_window,
                config.parallelism.tracker_shards,
            ))
        } else {
            TrackerBackend::Serial(WindowedTracker::new(config.tracker, config.tracking_window))
        };
        let strategy = if config.incremental_recognition {
            EvalStrategy::Incremental
        } else {
            EvalStrategy::FromScratch
        };
        let recognizer = if config.parallelism.recognition_bands > 1 {
            let (lon_min, lon_max) = band_extent(&areas);
            RecognizerBackend::Partitioned(Box::new(CoordinatedRecognizer::with_strategy(
                GeoPartitioner::uniform(config.parallelism.recognition_bands, lon_min, lon_max),
                &vessels,
                &areas,
                config.close_threshold_m,
                config.spatial_mode,
                config.recognition_window,
                strategy,
            )))
        } else {
            let knowledge = Knowledge::new(
                vessels.clone(),
                areas.clone(),
                config.close_threshold_m,
                config.spatial_mode,
            );
            RecognizerBackend::Single(Box::new(MaritimeRecognizer::with_strategy(
                knowledge,
                config.recognition_window,
                strategy,
            )))
        };
        let mut recognizer = recognizer;
        let sentences = if config.trace == TraceMode::Full {
            recognizer.set_provenance(true);
            Some(SentenceIndex::new())
        } else {
            None
        };
        Ok(Self {
            config: config.clone(),
            tracker,
            recognizer,
            staging: StagingArea::new(),
            reconstructor: TripReconstructor::new(&areas),
            store: TrajectoryStore::new(),
            alert_log: AlertLog::new(),
            origin: Timestamp::ZERO,
            sentences,
            vessel_infos: vessels,
            areas,
        })
    }

    /// The alert log accumulated so far.
    #[must_use]
    pub fn alerts(&self) -> &AlertLog {
        &self.alert_log
    }

    /// The trajectory archive.
    #[must_use]
    pub fn archive(&self) -> &TrajectoryStore {
        &self.store
    }

    /// The staging area.
    #[must_use]
    pub fn staging(&self) -> &StagingArea {
        &self.staging
    }

    /// Current Table 4 statistics.
    #[must_use]
    pub fn archive_stats(&self) -> ArchiveStats {
        ArchiveStats::compute(&self.store, &self.staging)
    }

    /// How recognition queries have been evaluated so far (checkpointed
    /// delta path vs. full recompute), summed across recognition bands;
    /// all zeros unless incremental recognition is configured. Lets tests
    /// assert that a scenario actually exercised — or fell back from —
    /// the incremental path (e.g. the chaos harness's late-arrival
    /// coverage check).
    #[must_use]
    pub fn incremental_stats(&self) -> maritime_rtec::IncrementalStats {
        self.recognizer.incremental_stats()
    }

    /// Vessels migrated between recognition bands so far; zero when the
    /// single-recognizer backend is running.
    #[must_use]
    pub fn partition_migrations(&self) -> u64 {
        match &self.recognizer {
            RecognizerBackend::Single(_) => 0,
            RecognizerBackend::Partitioned(p) => p.migrations(),
        }
    }

    /// Serializes the recognition backend — every band engine plus the
    /// coordinator's vessel/routing state — into one framed checkpoint.
    /// Static configuration (vessel facts, areas, window geometry) is not
    /// included; [`Self::restore_recognizer`] rebuilds it from the live
    /// pipeline, which must therefore be configured identically.
    #[must_use]
    pub fn checkpoint_recognizer(&self) -> Vec<u8> {
        let mut w = maritime_rtec::Writer::new();
        match &self.recognizer {
            RecognizerBackend::Single(r) => {
                w.put_u8(0);
                let bytes = r.checkpoint();
                w.put_len(bytes.len());
                w.put_bytes(&bytes);
            }
            RecognizerBackend::Partitioned(p) => {
                w.put_u8(1);
                let bytes = p.checkpoint();
                w.put_len(bytes.len());
                w.put_bytes(&bytes);
            }
        }
        w.into_frame()
    }

    /// Drops the current recognition backend and replaces it with the
    /// state captured by [`Self::checkpoint_recognizer`]. Knowledge bases
    /// are rebuilt from this pipeline's configuration; the checkpoint must
    /// come from an identically configured pipeline (same band count,
    /// spatial mode, vessel facts and areas), and a backend-kind mismatch
    /// is rejected as corruption. Provenance capture is re-armed when the
    /// pipeline traces.
    pub fn restore_recognizer(&mut self, bytes: &[u8]) -> Result<(), maritime_rtec::CkptError> {
        use maritime_rtec::CkptError;
        let payload = maritime_rtec::ckpt::unframe(bytes)?;
        let mut r = maritime_rtec::Reader::new(payload);
        let tag = r.take_u8()?;
        let n = r.take_len()?;
        let inner = r.take_bytes(n)?;
        let restored = match (tag, &self.recognizer) {
            (0, RecognizerBackend::Single(_)) => {
                let knowledge = Knowledge::new(
                    self.vessel_infos.clone(),
                    self.areas.clone(),
                    self.config.close_threshold_m,
                    self.config.spatial_mode,
                );
                RecognizerBackend::Single(Box::new(MaritimeRecognizer::restore(
                    knowledge, inner,
                )?))
            }
            (1, RecognizerBackend::Partitioned(_)) => RecognizerBackend::Partitioned(Box::new(
                CoordinatedRecognizer::restore(&self.vessel_infos, &self.areas, inner)?,
            )),
            (0 | 1, _) => {
                return Err(CkptError::Corrupt(
                    "checkpoint backend kind does not match pipeline configuration",
                ))
            }
            _ => return Err(CkptError::Corrupt("unknown recognizer backend tag")),
        };
        r.finish()?;
        self.recognizer = restored;
        if self.sentences.is_some() {
            self.recognizer.set_provenance(true);
        }
        Ok(())
    }

    /// Crash-and-restore one recognition band in place (the chaos
    /// harness's `KillPartition` fault): the band engine round-trips
    /// through the checkpoint codec with no recognition-visible effect.
    /// On the single-recognizer backend the whole recognizer restarts
    /// and `band` is ignored; on the partitioned backend `band` is taken
    /// modulo the band count.
    ///
    /// # Errors
    /// Propagates [`maritime_rtec::CkptError`] if the serialized engine
    /// fails to decode — a checkpoint-format bug, not bad input.
    pub fn kill_partition(&mut self, band: u32) -> Result<(), maritime_rtec::CkptError> {
        match &mut self.recognizer {
            RecognizerBackend::Single(r) => {
                let bytes = r.checkpoint();
                let knowledge = Knowledge::new(
                    self.vessel_infos.clone(),
                    self.areas.clone(),
                    self.config.close_threshold_m,
                    self.config.spatial_mode,
                );
                **r = MaritimeRecognizer::restore(knowledge, &bytes)?;
            }
            RecognizerBackend::Partitioned(p) => p.kill_band(band)?,
        }
        if self.sentences.is_some() {
            self.recognizer.set_provenance(true);
        }
        Ok(())
    }

    /// Executes one window slide over a time-ordered positional batch
    /// (timestamps ≤ `query_time`).
    pub fn slide(&mut self, query_time: Timestamp, batch: &[PositionTuple]) -> SlideOutcome {
        let slide_span = SpanTimer::stage("slide", OBS_SLIDE_NS.get_ref());
        let mut timings = PhaseTimings::default();

        // Under tracing, assign each admitted tuple its sentence id (the
        // admission ordinal) before tracking consumes the batch.
        if let Some(index) = &mut self.sentences {
            index.index_batch(batch);
        }

        // Phase 1: online tracking (fanned out per shard when sharded;
        // `tracking` then measures the fan-out/merge wall time and
        // `shard_timings` the per-worker cost).
        let span = SpanTimer::stage("track", OBS_TRACKING_NS.get_ref());
        let (report, shard_timings) = self.tracker.slide(query_time, batch);
        timings.tracking = span.stop();

        // Feed fresh critical points to the recognizer (with spatial facts
        // attached when running in precomputed mode).
        self.recognizer.add_critical(&report.fresh_critical);

        // Phase 2: staging of evicted deltas.
        let span = SpanTimer::stage("stage", OBS_STAGING_NS.get_ref());
        self.staging.stage_batch(&report.evicted_delta);
        timings.staging = span.stop();

        // Phase 3: trip reconstruction.
        let span = SpanTimer::stage("reconstruct", OBS_RECONSTRUCTION_NS.get_ref());
        let trips = self.reconstructor.reconstruct(&mut self.staging);
        timings.reconstruction = span.stop();
        let trips_completed = trips.len();

        // Phase 4: archive loading.
        let span = SpanTimer::stage("load", OBS_LOADING_NS.get_ref());
        self.store.load(trips);
        timings.loading = span.stop();

        // Complex event recognition on its own cadence.
        let rec_slide = self.config.recognition_window.slide.as_secs();
        let due = (query_time.as_secs() - self.origin.as_secs()) % rec_slide == 0;
        let (recognition, chains) = if due {
            let (summary, chains, elapsed) = self.run_recognition(query_time);
            timings.recognition = elapsed;
            (Some(summary), chains)
        } else {
            (None, Vec::new())
        };

        flight::record(FlightKind::WindowSlide, || {
            format!(
                "q={} admitted={} fresh={} evicted={} recognized={}",
                query_time.as_secs(),
                report.admitted,
                report.fresh_critical.len(),
                report.evicted_delta.len(),
                recognition.is_some(),
            )
        });
        OBS_SLIDES.inc();
        slide_span.finish();
        SlideOutcome {
            query_time,
            admitted: report.admitted,
            fresh_critical: report.fresh_critical.len(),
            evicted: report.evicted_delta.len(),
            trips_completed,
            recognition,
            chains,
            timings,
            shard_timings,
        }
    }

    /// One recognition query: measures it as the `recognize` stage,
    /// collects provenance chains when tracing, enforces the soft
    /// deadline, and logs the resulting alerts.
    fn run_recognition(
        &mut self,
        q: Timestamp,
    ) -> (maritime_cer::RecognitionSummary, Vec<CeChain>, StdDuration) {
        let span = SpanTimer::stage("recognize", OBS_RECOGNITION_NS.get_ref());
        let summary = self.recognizer.recognize_and_summarize(q);
        let elapsed = span.stop();

        let chains = match &self.sentences {
            Some(index) => {
                let mut chains = self.recognizer.take_chains();
                for chain in &mut chains {
                    index.attach(chain);
                }
                chains
            }
            None => Vec::new(),
        };

        if let Some(deadline_ms) = self.config.recognition_deadline_ms {
            if elapsed.as_millis() as u64 > deadline_ms {
                OBS_DEADLINE_OVERRUNS.inc();
                flight::record(FlightKind::RecognitionOverrun, || {
                    format!(
                        "q={} took_ms={} deadline_ms={} ces={}",
                        q.as_secs(),
                        elapsed.as_millis(),
                        deadline_ms,
                        summary.ce_count,
                    )
                });
                flight::trigger_dump("recognition-overrun");
            }
        }

        self.log_alerts(&summary);
        (summary, chains, elapsed)
    }

    /// Runs the pipeline over a complete, time-ordered tuple stream,
    /// slicing it into per-slide batches and flushing at the end.
    pub fn run(&mut self, stream: impl IntoIterator<Item = PositionTuple>) -> RunReport {
        self.run_with_observer(stream, |_| {})
    }

    /// [`Self::run`], invoking `observer` after every slide (including the
    /// final flush). Lets callers watch a live run — e.g. the `surveil`
    /// binary's periodic metrics output — without re-implementing the
    /// batching loop.
    pub fn run_with_observer(
        &mut self,
        stream: impl IntoIterator<Item = PositionTuple>,
        mut observer: impl FnMut(&SlideOutcome),
    ) -> RunReport {
        let keyed = stream.into_iter().map(|t| (t.timestamp, t));
        let batches = SlideBatches::new(keyed, self.config.tracking_window, self.origin);
        let mut slides = 0usize;
        let mut ce_total = 0usize;
        let mut timings = PhaseTimings::default();
        let mut last_q = self.origin;
        for batch in batches {
            let tuples: Vec<PositionTuple> = batch.items.into_iter().map(|(_, t)| t).collect();
            let outcome = self.slide(batch.query_time, &tuples);
            slides += 1;
            ce_total += outcome.recognition.as_ref().map_or(0, |s| s.ce_count);
            timings = timings.combined(outcome.timings);
            last_q = batch.query_time;
            observer(&outcome);
        }
        let final_outcome = self.finish(last_q);
        observer(&final_outcome);
        ce_total += final_outcome.recognition.as_ref().map_or(0, |s| s.ce_count);
        timings = timings.combined(final_outcome.timings);

        let stats = self.tracker.fleet_stats();
        RunReport {
            slides,
            raw_positions: stats.raw,
            critical_points: stats.critical,
            compression_ratio: stats.compression_ratio(),
            alerts: self.alert_log.len(),
            ce_total,
            archive: self.archive_stats(),
            timings,
        }
    }

    /// Ends the stream: flushes open durative states, stages the residual
    /// window contents, reconstructs and loads the remaining trips, and
    /// runs one final recognition pass.
    pub fn finish(&mut self, at: Timestamp) -> SlideOutcome {
        let mut timings = PhaseTimings::default();

        let t0 = Instant::now();
        let (final_cps, remaining) = self.tracker.finish();
        timings.tracking = t0.elapsed();

        self.recognizer.add_critical(&final_cps);

        let t1 = Instant::now();
        self.staging.stage_batch(&remaining);
        timings.staging = t1.elapsed();

        let t2 = Instant::now();
        let trips = self.reconstructor.reconstruct(&mut self.staging);
        timings.reconstruction = t2.elapsed();
        let trips_completed = trips.len();

        let t3 = Instant::now();
        self.store.load(trips);
        timings.loading = t3.elapsed();

        let (summary, chains, elapsed) = self.run_recognition(at);
        timings.recognition = elapsed;

        SlideOutcome {
            query_time: at,
            admitted: 0,
            fresh_critical: final_cps.len(),
            evicted: remaining.len(),
            trips_completed,
            recognition: Some(summary),
            chains,
            timings,
            shard_timings: Vec::new(),
        }
    }

    fn log_alerts(&mut self, summary: &maritime_cer::RecognitionSummary) {
        for (at, alert) in &summary.alerts {
            self.alert_log.push(AlertRecord::Instant {
                at: *at,
                alert: *alert,
            });
        }
        for (name, entries) in [
            ("suspicious", &summary.suspicious),
            ("illegalFishing", &summary.illegal_fishing),
        ] {
            for (area, intervals) in entries {
                for iv in intervals.intervals() {
                    self.alert_log.push(AlertRecord::CeStarted {
                        at: iv.since,
                        name,
                        area: *area,
                    });
                    if let Some(until) = iv.until {
                        self.alert_log.push(AlertRecord::CeEnded {
                            at: until,
                            name,
                            area: *area,
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maritime_ais::{FleetConfig, FleetSimulator};
    use maritime_geo::aegean::{generate_areas, AreaGenConfig};

    fn run_tiny(seed: u64, mode: SpatialMode) -> (RunReport, usize) {
        let sim = FleetSimulator::new(FleetConfig::tiny(seed));
        let areas = generate_areas(&AreaGenConfig::default());
        let vessels: Vec<VesselInfo> = sim.profiles().iter().map(VesselInfo::from).collect();
        let config = SurveillanceConfig {
            spatial_mode: mode,
            ..SurveillanceConfig::default()
        };
        let mut pipeline = SurveillancePipeline::new(&config, vessels, areas).unwrap();
        let report = pipeline.run(sim.generate().into_iter().map(PositionTuple::from));
        let alerts = pipeline.alerts().len();
        (report, alerts)
    }

    #[test]
    fn end_to_end_run_produces_consistent_report() {
        let (report, alerts) = run_tiny(5, SpatialMode::OnDemand);
        assert!(report.slides > 0);
        assert!(report.raw_positions > 1_000);
        assert!(report.critical_points > 0);
        assert!(
            report.compression_ratio > 0.6,
            "ratio {}",
            report.compression_ratio
        );
        assert_eq!(report.alerts, alerts);
        // Conservation: archived + staged = critical points that left the
        // window plus the residue (all critical points end up somewhere).
        let accounted =
            report.archive.points_in_trajectories + report.archive.points_in_staging;
        assert_eq!(accounted as u64, report.critical_points);
    }

    #[test]
    fn spatial_modes_recognize_equivalently() {
        let (on_demand, a1) = run_tiny(6, SpatialMode::OnDemand);
        let (precomputed, a2) = run_tiny(6, SpatialMode::Precomputed);
        assert_eq!(on_demand.raw_positions, precomputed.raw_positions);
        assert_eq!(on_demand.critical_points, precomputed.critical_points);
        assert_eq!(a1, a2, "alert sets must match across spatial modes");
    }

    #[test]
    fn archive_fills_with_trips_on_longer_runs() {
        let sim = FleetSimulator::new(FleetConfig {
            vessels: 20,
            duration: maritime_stream::Duration::hours(24),
            ..FleetConfig::tiny(7)
        });
        let areas = generate_areas(&AreaGenConfig::default());
        let vessels: Vec<VesselInfo> = sim.profiles().iter().map(VesselInfo::from).collect();
        let mut pipeline =
            SurveillancePipeline::new(&SurveillanceConfig::default(), vessels, areas).unwrap();
        let report = pipeline.run(sim.generate().into_iter().map(PositionTuple::from));
        assert!(
            report.archive.trips > 0,
            "24h of 20 vessels should complete port-to-port trips: {:?}",
            report.archive
        );
    }

    #[test]
    fn sharded_backend_matches_serial_run_report() {
        let sim = FleetSimulator::new(FleetConfig::tiny(9));
        let areas = generate_areas(&AreaGenConfig::default());
        let vessels: Vec<VesselInfo> = sim.profiles().iter().map(VesselInfo::from).collect();
        let run = |shards: usize| {
            let config = SurveillanceConfig {
                parallelism: crate::config::Parallelism {
                    tracker_shards: shards,
                    recognition_bands: 1,
                },
                ..SurveillanceConfig::default()
            };
            let mut pipeline =
                SurveillancePipeline::new(&config, vessels.clone(), areas.clone()).unwrap();
            let report = pipeline.run(sim.generate().into_iter().map(PositionTuple::from));
            let alerts: Vec<String> =
                pipeline.alerts().records().iter().map(|r| r.render()).collect();
            (report, alerts)
        };
        let (serial, serial_alerts) = run(1);
        let (sharded, sharded_alerts) = run(4);
        assert_eq!(serial.raw_positions, sharded.raw_positions);
        assert_eq!(serial.critical_points, sharded.critical_points);
        assert_eq!(serial.slides, sharded.slides);
        assert_eq!(serial.ce_total, sharded.ce_total);
        assert_eq!(serial_alerts, sharded_alerts);
        let accounted =
            sharded.archive.points_in_trajectories + sharded.archive.points_in_staging;
        assert_eq!(accounted as u64, sharded.critical_points);
    }

    #[test]
    fn sharded_slides_report_per_shard_timings() {
        let sim = FleetSimulator::new(FleetConfig::tiny(10));
        let areas = generate_areas(&AreaGenConfig::default());
        let vessels: Vec<VesselInfo> = sim.profiles().iter().map(VesselInfo::from).collect();
        let config = SurveillanceConfig {
            parallelism: crate::config::Parallelism {
                tracker_shards: 3,
                recognition_bands: 2,
            },
            ..SurveillanceConfig::default()
        };
        let mut pipeline = SurveillancePipeline::new(&config, vessels, areas).unwrap();
        let stream: Vec<PositionTuple> =
            sim.generate().into_iter().map(PositionTuple::from).collect();
        let batches = SlideBatches::new(
            stream.into_iter().map(|t| (t.timestamp, t)),
            config.tracking_window,
            Timestamp::ZERO,
        );
        let mut saw_slide = false;
        for batch in batches {
            let tuples: Vec<PositionTuple> = batch.items.into_iter().map(|(_, t)| t).collect();
            let outcome = pipeline.slide(batch.query_time, &tuples);
            assert_eq!(outcome.shard_timings.len(), 3);
            saw_slide = true;
        }
        assert!(saw_slide);
    }

    #[test]
    fn traced_run_yields_chains_with_resolvable_sentence_ids() {
        let sim = FleetSimulator::new(FleetConfig::tiny(77));
        let areas = generate_areas(&AreaGenConfig::default());
        let vessels: Vec<VesselInfo> = sim.profiles().iter().map(VesselInfo::from).collect();
        let stream: Vec<PositionTuple> =
            sim.generate().into_iter().map(PositionTuple::from).collect();

        let run = |trace: crate::config::TraceMode| {
            let config = SurveillanceConfig {
                trace,
                ..SurveillanceConfig::default()
            };
            let mut pipeline =
                SurveillancePipeline::new(&config, vessels.clone(), areas.clone()).unwrap();
            let mut log = crate::trace::TraceLog::new();
            let report = pipeline
                .run_with_observer(stream.iter().copied(), |o| log.record(o.chains.clone()));
            let alerts: Vec<String> =
                pipeline.alerts().records().iter().map(|r| r.render()).collect();
            (report, alerts, log)
        };

        let (traced, traced_alerts, log) = run(crate::config::TraceMode::Full);
        let (plain, plain_alerts, empty_log) = run(crate::config::TraceMode::Off);

        // Tracing must not change what is recognized.
        assert_eq!(traced.ce_total, plain.ce_total);
        assert_eq!(traced_alerts, plain_alerts);
        assert!(empty_log.is_empty(), "untraced run must produce no chains");

        // This fleet produces CEs, and every CE gets a chain whose input
        // leaves cite sentence ids inside the admitted stream.
        assert!(traced.ce_total > 0, "seed no longer produces CEs");
        assert!(!log.is_empty());
        let n = stream.len() as u64;
        for chain in log.chains() {
            let id_label = chain.id.clone();
            let mut chain = chain.clone();
            maritime_cer::visit_input_leaves(&mut chain, &mut |leaf| {
                for &id in &leaf.sentences {
                    assert!(id < n, "sentence id {id} out of range in {id_label}");
                }
            });
        }
    }

    #[test]
    fn invalid_config_is_rejected_at_construction() {
        let bad = SurveillanceConfig {
            close_threshold_m: -1.0,
            ..SurveillanceConfig::default()
        };
        assert!(SurveillancePipeline::new(&bad, Vec::new(), Vec::new()).is_err());
    }
}
