//! `surveil serve`: the resident live-ingestion and alert fan-out server.
//!
//! ```text
//!  NMEA sources                    driver thread                subscribers
//!  ───────────                ─────────────────────             ───────────
//!  TCP conn ──┐                ┌─> SourceMux (filter/dedup)     TCP writer ──> nc
//!  TCP conn ──┼─> ingest ──────┤   AdmissionBuffer (skew)       TCP writer ──> app
//!  UDP peer ──┘    channel     │   DataScanner (per-source)     SSE writer ──> curl
//!                  (bounded)   │   LiveBatcher ─> pipeline
//!                              └─> WireEncoder ─> BroadcastHub ──^
//!                                                 (bounded queues, eviction)
//!  HTTP: /metrics /metrics.json /metrics/history /sources /healthz
//!        /dashboard /events
//! ```
//!
//! One driver thread owns the whole recognition path ([`LiveIngest`]);
//! listener threads own their sockets and talk to the driver through one
//! bounded channel; subscriber writer threads own their sockets and drain
//! bounded queues fed by the [`BroadcastHub`]. No recognition state is
//! ever shared across threads — the hot path is exactly the batch
//! pipeline's, which is why serve output is byte-identical to batch
//! output on the same sentences (a differential test pins this).
//!
//! `SERVING.md` at the repository root is the operator handbook: flags,
//! wire protocols, backpressure/eviction semantics, worked transcripts —
//! every example there is pinned by a test against this module.

pub mod cli;
mod dashboard;
pub mod health;
pub mod hub;
pub mod live;
mod net;
pub mod wire;

pub use health::{HealthEngine, HealthState, ServeTelemetry, SloThresholds, SLO_RULES};
pub use hub::BroadcastHub;
pub use live::{IngestStats, LiveBatcher, LiveIngest};
pub use wire::{sse_frame, WireEncoder, CONTROL_FLUSH, CONTROL_SHUTDOWN};

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use maritime_cer::VesselInfo;
use maritime_geo::Area;
use maritime_obs::{flight, names, Counter, FlightKind, LazyCounter, MetricsRegistry};
use maritime_stream::Duration;
use parking_lot::Mutex;

use crate::config::{ConfigError, SurveillanceConfig};

static OBS_INGEST_STALLS: LazyCounter = LazyCounter::new(names::SERVE_INGEST_STALLS);
static OBS_SAMPLES: LazyCounter = LazyCounter::new(names::SERVE_SAMPLES);
static OBS_OPS_ALERTS: LazyCounter = LazyCounter::new(names::SERVE_OPS_ALERTS);

/// Everything `serve` needs to start; see `SERVING.md` for the operator
/// view of each knob.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Pipeline configuration (windows, shards, bands, incremental...).
    pub config: SurveillanceConfig,
    /// Static vessel facts for the recognizer's knowledge base.
    pub vessels: Vec<VesselInfo>,
    /// Monitored areas.
    pub areas: Vec<Area>,
    /// Address to bind every listener on.
    pub bind: String,
    /// NMEA-in TCP port (`None` disables; `Some(0)` picks a free port).
    pub nmea_tcp_port: Option<u16>,
    /// NMEA-in UDP port.
    pub nmea_udp_port: Option<u16>,
    /// CE-out line-delimited JSON TCP port.
    pub subscribe_port: Option<u16>,
    /// HTTP port for `/metrics`, `/sources`, `/healthz`, `/events` (SSE).
    pub http_port: Option<u16>,
    /// Admission-buffer disorder bound.
    pub skew: Duration,
    /// Cross-source duplicate suppression window (zero disables).
    pub dedup_window: Duration,
    /// Per-subscriber event queue bound; a subscriber lagging past it is
    /// evicted.
    pub queue_bound: usize,
    /// Ingest channel bound — how many raw lines may wait for the driver
    /// before sources block (backpressure).
    pub ingest_bound: usize,
    /// How often the driver samples the metric registry into the
    /// telemetry ring (and evaluates the SLO health rules).
    pub sample_interval: std::time::Duration,
    /// How many samples the telemetry ring retains for
    /// `/metrics/history` and the dashboard.
    pub history_capacity: usize,
    /// SLO bounds the health engine judges each interval against.
    pub slo: SloThresholds,
    /// Directory for recognition-state checkpoints. When set, the driver
    /// writes `serve.ckpt` there (atomically, via temp-file + rename)
    /// every [`ServeOptions::checkpoint_every`] recognition queries, and
    /// [`start`] restores from an existing `serve.ckpt` on boot.
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Recognition queries between checkpoint writes (minimum 1).
    pub checkpoint_every: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            config: SurveillanceConfig::default(),
            vessels: Vec::new(),
            areas: Vec::new(),
            bind: "127.0.0.1".to_string(),
            nmea_tcp_port: Some(0),
            nmea_udp_port: None,
            subscribe_port: Some(0),
            http_port: Some(0),
            skew: Duration::secs(120),
            dedup_window: Duration::secs(10),
            queue_bound: 1024,
            ingest_bound: 4096,
            sample_interval: std::time::Duration::from_secs(2),
            history_capacity: 256,
            slo: SloThresholds::default(),
            checkpoint_dir: None,
            checkpoint_every: 1,
        }
    }
}

/// The checkpoint file a serving instance maintains inside
/// `--checkpoint-dir`.
pub const CHECKPOINT_FILE: &str = "serve.ckpt";

/// One message from a listener thread to the driver.
#[derive(Debug)]
pub(crate) enum Ingest {
    /// A raw line from a source, stamped with its event time.
    Line {
        /// Source that delivered the line.
        source: u32,
        /// Event time, seconds.
        t: i64,
        /// The sentence (framing already stripped).
        line: String,
    },
    /// `#flush`: end of stream — drain and run the final recognition.
    Flush,
    /// `#shutdown`: stop the server.
    Shutdown,
}

/// Sends one ingest message, counting (and then riding out) backpressure
/// when the driver is behind. Returns `false` when the driver is gone.
pub(crate) fn send_ingest(tx: &SyncSender<Ingest>, msg: Ingest) -> bool {
    match tx.try_send(msg) {
        Ok(()) => true,
        Err(TrySendError::Full(msg)) => {
            OBS_INGEST_STALLS.inc();
            tx.send(msg).is_ok()
        }
        Err(TrySendError::Disconnected(_)) => false,
    }
}

/// A running `surveil serve` instance. Dropping the handle does *not*
/// stop the server; call [`ServerHandle::shutdown`] then
/// [`ServerHandle::join`].
pub struct ServerHandle {
    /// Bound NMEA-in TCP address, when enabled.
    pub nmea_tcp: Option<SocketAddr>,
    /// Bound NMEA-in UDP address, when enabled.
    pub nmea_udp: Option<SocketAddr>,
    /// Bound CE-out subscriber address, when enabled.
    pub subscribe: Option<SocketAddr>,
    /// Bound HTTP address, when enabled.
    pub http: Option<SocketAddr>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    hub: Arc<BroadcastHub>,
    live: Arc<Mutex<LiveIngest>>,
    telemetry: Arc<ServeTelemetry>,
    /// Keeps the ingest channel open even with no socket listeners, so
    /// in-process tests can inject via [`ServerHandle::inject`].
    ingest_tx: SyncSender<Ingest>,
}

impl ServerHandle {
    /// Requests shutdown; listener and driver threads exit at their next
    /// poll (≤ ~100 ms).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested (by this handle or a
    /// `#shutdown` control line).
    #[must_use]
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Waits for every server thread to exit. Call after
    /// [`ServerHandle::shutdown`].
    pub fn join(mut self) {
        drop(self.ingest_tx);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        self.hub.close();
    }

    /// The broadcast hub, for in-process subscribers and tests.
    #[must_use]
    pub fn hub(&self) -> &Arc<BroadcastHub> {
        &self.hub
    }

    /// The telemetry ring and health verdict the driver maintains.
    #[must_use]
    pub fn telemetry(&self) -> &Arc<ServeTelemetry> {
        &self.telemetry
    }

    /// Live-path counters (snapshot under the driver's lock).
    #[must_use]
    pub fn ingest_stats(&self) -> IngestStats {
        self.live.lock().stats()
    }

    /// Injects one raw line as if a socket source had delivered it —
    /// the in-process test path. Returns `false` once the driver is gone.
    pub fn inject(&self, source: u32, t: i64, line: &str) -> bool {
        send_ingest(
            &self.ingest_tx,
            Ingest::Line {
                source,
                t,
                line: line.to_string(),
            },
        )
    }

    /// Injects the `#flush` control (end of stream).
    pub fn inject_flush(&self) -> bool {
        send_ingest(&self.ingest_tx, Ingest::Flush)
    }
}

/// Starts the server: binds every enabled listener, spawns the driver and
/// listener threads, and returns the handle with the bound addresses
/// (useful with port 0).
///
/// # Errors
/// A [`ServeError`] when the pipeline configuration fails validation or a
/// listener cannot bind.
pub fn start(opts: ServeOptions) -> Result<ServerHandle, ServeError> {
    let mut live = LiveIngest::new(
        &opts.config,
        opts.vessels.clone(),
        opts.areas.clone(),
        opts.skew,
        opts.dedup_window,
    )
    .map_err(ServeError::Config)?;
    // Restart-from-checkpoint: a `serve.ckpt` left by a previous instance
    // resumes the recognition state before any listener accepts a line.
    if let Some(dir) = &opts.checkpoint_dir {
        let path = dir.join(CHECKPOINT_FILE);
        match std::fs::read(&path) {
            Ok(bytes) => {
                live.restore_checkpoint(&bytes)
                    .map_err(ServeError::Checkpoint)?;
                flight::record(FlightKind::Note, || {
                    format!("restored recognition state from {}", path.display())
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(ServeError::CheckpointIo(e)),
        }
    }
    let live = Arc::new(Mutex::new(live));
    let hub = BroadcastHub::new(opts.queue_bound);
    let telemetry = Arc::new(ServeTelemetry::new(opts.history_capacity));
    let shutdown = Arc::new(AtomicBool::new(false));
    let next_source = Arc::new(AtomicU32::new(1));
    let (ingest_tx, ingest_rx) = std::sync::mpsc::sync_channel(opts.ingest_bound.max(1));

    let mut threads = Vec::new();
    let mut bind_tcp = |port: u16| -> Result<TcpListener, ServeError> {
        let l = TcpListener::bind((opts.bind.as_str(), port)).map_err(ServeError::Bind)?;
        l.set_nonblocking(true).map_err(ServeError::Bind)?;
        Ok(l)
    };

    let nmea_tcp = opts.nmea_tcp_port.map(&mut bind_tcp).transpose()?;
    let subscribe = opts.subscribe_port.map(&mut bind_tcp).transpose()?;
    let http = opts.http_port.map(&mut bind_tcp).transpose()?;
    let nmea_udp = opts
        .nmea_udp_port
        .map(|port| -> Result<UdpSocket, ServeError> {
            let s = UdpSocket::bind((opts.bind.as_str(), port)).map_err(ServeError::Bind)?;
            s.set_read_timeout(Some(std::time::Duration::from_millis(100)))
                .map_err(ServeError::Bind)?;
            Ok(s)
        })
        .transpose()?;

    let handle_addrs = (
        nmea_tcp.as_ref().and_then(|l| l.local_addr().ok()),
        nmea_udp.as_ref().and_then(|s| s.local_addr().ok()),
        subscribe.as_ref().and_then(|l| l.local_addr().ok()),
        http.as_ref().and_then(|l| l.local_addr().ok()),
    );

    // Driver: the single owner of the recognition path.
    {
        let live = Arc::clone(&live);
        let hub = Arc::clone(&hub);
        let shutdown = Arc::clone(&shutdown);
        let telemetry = Arc::clone(&telemetry);
        let sample_interval = opts.sample_interval;
        let slo = opts.slo;
        let ckpt = opts
            .checkpoint_dir
            .clone()
            .map(|dir| (dir, opts.checkpoint_every.max(1)));
        threads.push(
            std::thread::Builder::new()
                .name("serve-driver".into())
                .spawn(move || {
                    driver_loop(
                        &ingest_rx,
                        &live,
                        &hub,
                        &shutdown,
                        &telemetry,
                        sample_interval,
                        slo,
                        ckpt.as_ref(),
                    );
                })
                .map_err(ServeError::Spawn)?,
        );
    }
    if let Some(listener) = nmea_tcp {
        let tx = ingest_tx.clone();
        let shutdown = Arc::clone(&shutdown);
        let next_source = Arc::clone(&next_source);
        threads.push(
            std::thread::Builder::new()
                .name("serve-nmea-tcp".into())
                .spawn(move || net::tcp_ingest_loop(&listener, &tx, &shutdown, &next_source))
                .map_err(ServeError::Spawn)?,
        );
    }
    if let Some(socket) = nmea_udp {
        let tx = ingest_tx.clone();
        let shutdown = Arc::clone(&shutdown);
        let next_source = Arc::clone(&next_source);
        threads.push(
            std::thread::Builder::new()
                .name("serve-nmea-udp".into())
                .spawn(move || net::udp_ingest_loop(&socket, &tx, &shutdown, &next_source))
                .map_err(ServeError::Spawn)?,
        );
    }
    if let Some(listener) = subscribe {
        let hub = Arc::clone(&hub);
        let shutdown = Arc::clone(&shutdown);
        threads.push(
            std::thread::Builder::new()
                .name("serve-subscribers".into())
                .spawn(move || net::subscriber_loop(&listener, &hub, &shutdown))
                .map_err(ServeError::Spawn)?,
        );
    }
    if let Some(listener) = http {
        let hub = Arc::clone(&hub);
        let live = Arc::clone(&live);
        let shutdown = Arc::clone(&shutdown);
        let telemetry = Arc::clone(&telemetry);
        threads.push(
            std::thread::Builder::new()
                .name("serve-http".into())
                .spawn(move || net::http_loop(&listener, &hub, &live, &telemetry, &shutdown))
                .map_err(ServeError::Spawn)?,
        );
    }

    Ok(ServerHandle {
        nmea_tcp: handle_addrs.0,
        nmea_udp: handle_addrs.1,
        subscribe: handle_addrs.2,
        http: handle_addrs.3,
        shutdown,
        threads,
        hub,
        live,
        telemetry,
        ingest_tx,
    })
}

/// Why the server could not start.
#[derive(Debug)]
pub enum ServeError {
    /// The pipeline configuration failed validation.
    Config(ConfigError),
    /// A listener could not bind its address.
    Bind(std::io::Error),
    /// A server thread could not be spawned.
    Spawn(std::io::Error),
    /// The boot checkpoint exists but is corrupt or from a differently
    /// configured server.
    Checkpoint(maritime_rtec::CkptError),
    /// The boot checkpoint exists but could not be read.
    CheckpointIo(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(e) => write!(f, "invalid configuration: {e}"),
            ServeError::Bind(e) => write!(f, "cannot bind listener: {e}"),
            ServeError::Spawn(e) => write!(f, "cannot spawn server thread: {e}"),
            ServeError::Checkpoint(e) => write!(f, "cannot restore checkpoint: {e}"),
            ServeError::CheckpointIo(e) => write!(f, "cannot read checkpoint: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// The driver loop: drains the ingest channel into the live path, fans
/// resulting wire events out through the hub, and — every
/// `sample_interval` — records a telemetry sample and evaluates the SLO
/// health rules.
#[allow(clippy::too_many_arguments)]
fn driver_loop(
    rx: &Receiver<Ingest>,
    live: &Mutex<LiveIngest>,
    hub: &BroadcastHub,
    shutdown: &AtomicBool,
    telemetry: &ServeTelemetry,
    sample_interval: std::time::Duration,
    slo: SloThresholds,
    ckpt: Option<&(std::path::PathBuf, u64)>,
) {
    let mut sampler = Sampler::new(slo);
    // Seed the ring immediately so /metrics/history and the dashboard are
    // never empty, even on a freshly started server.
    sampler.tick(live, telemetry, hub);
    let mut last_sample = Instant::now();
    let mut last_saved_queries = live.lock().stats().queries;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match rx.recv_timeout(std::time::Duration::from_millis(50)) {
            Ok(Ingest::Line { source, t, line }) => {
                let events = live.lock().push_line(
                    maritime_stream::SourceId(source),
                    maritime_stream::Timestamp(t),
                    &line,
                );
                for event in &events {
                    hub.broadcast(event);
                }
            }
            Ok(Ingest::Flush) => {
                let events = live.lock().flush();
                for event in &events {
                    hub.broadcast(event);
                }
            }
            Ok(Ingest::Shutdown) => {
                shutdown.store(true, Ordering::SeqCst);
                break;
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        if let Some((dir, every)) = ckpt {
            let queries = live.lock().stats().queries;
            if queries.saturating_sub(last_saved_queries) >= *every {
                write_checkpoint(dir, live);
                last_saved_queries = queries;
            }
        }
        if last_sample.elapsed() >= sample_interval {
            sampler.tick(live, telemetry, hub);
            last_sample = Instant::now();
        }
    }
    // A final save on the way out, so `#shutdown` leaves a fresh resume
    // point even when fewer than `every` queries ran since the last one.
    if let Some((dir, _)) = ckpt {
        write_checkpoint(dir, live);
    }
    hub.close();
}

/// Serializes the live path and writes `serve.ckpt` atomically: the bytes
/// land in a temp file first and replace the previous checkpoint with one
/// rename, so a crash mid-write can never leave a truncated checkpoint. A
/// failed write is reported on the flight recorder — serving continues.
fn write_checkpoint(dir: &std::path::Path, live: &Mutex<LiveIngest>) {
    let bytes = live.lock().checkpoint();
    let path = dir.join(CHECKPOINT_FILE);
    let tmp = dir.join(format!("{CHECKPOINT_FILE}.tmp"));
    let result = std::fs::create_dir_all(dir)
        .and_then(|()| std::fs::write(&tmp, &bytes))
        .and_then(|()| std::fs::rename(&tmp, &path));
    match result {
        Ok(()) => flight::record(FlightKind::Note, || {
            format!("checkpoint: {} bytes -> {}", bytes.len(), path.display())
        }),
        Err(e) => flight::record(FlightKind::Note, move || {
            format!("checkpoint write failed: {e}")
        }),
    }
}

/// Last-mirrored per-source counters (lines, accepted, filtered,
/// duplicates) plus whether the source had traffic in the last interval.
struct MirroredSource {
    counters: [&'static Counter; 4],
    last: [u64; 4],
    was_active: bool,
}

/// The driver's telemetry tick: mirror per-source mux counters into the
/// `serve_source_*` labeled families, record one full-registry sample
/// into the ring, and run the health engine over the newest interval.
/// Runs on the driver thread between ingest batches — never on the
/// per-sentence hot path.
struct Sampler {
    engine: HealthEngine,
    prev: Option<Arc<maritime_obs::Sample>>,
    mirrored: HashMap<u32, MirroredSource>,
}

impl Sampler {
    fn new(slo: SloThresholds) -> Self {
        Self {
            engine: HealthEngine::new(slo),
            prev: None,
            mirrored: HashMap::new(),
        }
    }

    fn tick(&mut self, live: &Mutex<LiveIngest>, telemetry: &ServeTelemetry, hub: &BroadcastHub) {
        self.mirror_sources(live);
        let snapshot = maritime_obs::snapshot();
        telemetry.ring().record(snapshot);
        OBS_SAMPLES.inc();
        let cur = telemetry
            .ring()
            .latest()
            .expect("ring non-empty after record");
        if let Some(prev) = self.prev.take() {
            let eval = self.engine.evaluate(&prev, &cur);
            telemetry.set_state(eval.state, &eval.breaches);
            if let Some(line) = eval.ops_alert {
                OBS_OPS_ALERTS.inc();
                hub.broadcast(&line);
            }
        }
        self.prev = Some(cur);
    }

    /// Copies per-source [`SourceMux`](maritime_stream::SourceMux) deltas
    /// into the labeled counter families, so per-source rates show up in
    /// `/metrics` and the ring without touching the per-sentence path.
    /// A previously active source going silent lands in the flight
    /// recorder — the per-feed death marker.
    fn mirror_sources(&mut self, live: &Mutex<LiveIngest>) {
        let stats: Vec<(u32, [u64; 4])> = {
            let live = live.lock();
            live.sources()
                .map(|(id, s)| (id.0, [s.lines, s.accepted, s.filtered, s.duplicates]))
                .collect()
        };
        let registry = MetricsRegistry::global();
        for (id, now) in stats {
            let entry = self.mirrored.entry(id).or_insert_with(|| {
                let value = id.to_string();
                MirroredSource {
                    counters: [
                        registry.labeled_counter(&names::SERVE_SOURCE_LINES, &value),
                        registry.labeled_counter(&names::SERVE_SOURCE_ACCEPTED, &value),
                        registry.labeled_counter(&names::SERVE_SOURCE_FILTERED, &value),
                        registry.labeled_counter(&names::SERVE_SOURCE_DUPLICATES, &value),
                    ],
                    last: [0; 4],
                    was_active: false,
                }
            });
            let line_delta = now[0].saturating_sub(entry.last[0]);
            for (i, counter) in entry.counters.iter().enumerate() {
                counter.add(now[i].saturating_sub(entry.last[i]));
            }
            entry.last = now;
            if entry.was_active && line_delta == 0 {
                flight::record(FlightKind::Note, move || {
                    format!("source {id} went silent this sampling interval")
                });
            }
            entry.was_active = line_delta > 0;
        }
    }
}
