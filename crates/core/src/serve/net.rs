//! Socket plumbing for `surveil serve`: NMEA ingest (TCP/UDP), CE-out
//! subscribers, and the HTTP metrics/SSE endpoint.
//!
//! Every accept loop is non-blocking with a short sleep so the shutdown
//! flag is honored within ~100 ms; every connection thread reads/writes
//! with timeouts for the same reason. Reader threads frame the byte
//! stream into lines themselves (rather than `BufRead::read_line`) so a
//! connection cut mid-sentence leaves a well-defined partial buffer that
//! is discarded and counted — the behavior the socket-level chaos mode
//! exercises.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::Arc;
use std::time::Instant;

use maritime_obs::{names, LazyCounter, LazyGauge};
use parking_lot::Mutex;

use super::health::ServeTelemetry;
use super::hub::BroadcastHub;
use super::live::LiveIngest;
use super::wire::{sse_frame, CONTROL_FLUSH, CONTROL_SHUTDOWN};
use super::{dashboard, send_ingest, Ingest};

static OBS_SOURCES_CONNECTED: LazyGauge = LazyGauge::new(names::SERVE_SOURCES_CONNECTED);
static OBS_SOURCES: LazyCounter = LazyCounter::new(names::SERVE_SOURCES);
static OBS_FILTERED: LazyCounter = LazyCounter::new(names::SERVE_FILTERED_LINES);
static OBS_HTTP_REQUESTS: LazyCounter = LazyCounter::new(names::SERVE_HTTP_REQUESTS);

const ACCEPT_POLL: std::time::Duration = std::time::Duration::from_millis(25);
const READ_TIMEOUT: std::time::Duration = std::time::Duration::from_millis(100);
const WRITE_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(5);

/// Accepts NMEA-in TCP connections; each gets a fresh source id and a
/// reader thread for the connection's lifetime.
pub(crate) fn tcp_ingest_loop(
    listener: &TcpListener,
    tx: &SyncSender<Ingest>,
    shutdown: &Arc<AtomicBool>,
    next_source: &Arc<AtomicU32>,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let source = next_source.fetch_add(1, Ordering::Relaxed);
                OBS_SOURCES.inc();
                OBS_SOURCES_CONNECTED.add(1);
                let tx = tx.clone();
                let shutdown = Arc::clone(shutdown);
                let _ = std::thread::Builder::new()
                    .name(format!("serve-src-{source}"))
                    .spawn(move || {
                        ingest_reader(&stream, source, &tx, &shutdown);
                        OBS_SOURCES_CONNECTED.add(-1);
                    });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Reads one NMEA-in connection to EOF (or shutdown), framing lines and
/// forwarding them to the driver. A partial line left when the peer
/// disconnects — the mid-sentence cut — is discarded and counted as
/// filtered, never forwarded.
fn ingest_reader(
    stream: &TcpStream,
    source: u32,
    tx: &SyncSender<Ingest>,
    shutdown: &AtomicBool,
) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let started = Instant::now();
    let mut pending: Vec<u8> = Vec::new();
    let mut buf = [0u8; 4096];
    let mut reader = stream;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match reader.read(&mut buf) {
            Ok(0) => break, // EOF
            Ok(n) => {
                pending.extend_from_slice(&buf[..n]);
                if !drain_lines(&mut pending, source, &started, tx) {
                    return; // driver gone
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break, // reset mid-stream: same as a cut
        }
    }
    if !pending.is_empty() {
        // Mid-sentence disconnect: the unterminated tail is not a
        // sentence. Count it so the operator sees flaky feeds.
        OBS_FILTERED.inc();
    }
}

/// Splits complete lines out of `pending` and forwards each. Returns
/// `false` when the driver has gone away.
fn drain_lines(
    pending: &mut Vec<u8>,
    source: u32,
    started: &Instant,
    tx: &SyncSender<Ingest>,
) -> bool {
    while let Some(nl) = pending.iter().position(|&b| b == b'\n') {
        let raw: Vec<u8> = pending.drain(..=nl).collect();
        let line = String::from_utf8_lossy(&raw[..nl]);
        let line = line.trim_end_matches('\r').trim();
        if line.is_empty() {
            continue;
        }
        let Some(msg) = frame_line(line, source, started) else {
            continue;
        };
        if !send_ingest(tx, msg) {
            return false;
        }
    }
    true
}

/// Parses one framed line into an ingest message: `#flush`/`#shutdown`
/// controls, `<epoch-secs> <sentence>` timestamped lines, or a bare
/// sentence stamped with the connection's wall-clock age (documented in
/// `SERVING.md`; deterministic feeds always send explicit timestamps).
fn frame_line(line: &str, source: u32, started: &Instant) -> Option<Ingest> {
    if let Some(control) = line.strip_prefix('#') {
        return match format!("#{}", control.trim()).as_str() {
            CONTROL_FLUSH => Some(Ingest::Flush),
            CONTROL_SHUTDOWN => Some(Ingest::Shutdown),
            _ => None, // unknown controls are comments
        };
    }
    let (t, sentence) = match line.split_once(' ') {
        Some((ts, rest)) => match ts.parse::<i64>() {
            Ok(t) => (t, rest.trim_start()),
            Err(_) => (started.elapsed().as_secs() as i64, line),
        },
        None => (started.elapsed().as_secs() as i64, line),
    };
    Some(Ingest::Line {
        source,
        t,
        line: sentence.to_string(),
    })
}

/// Drains NMEA-in UDP datagrams. Each distinct peer address is a source;
/// datagrams carry one or more complete lines (no cross-datagram
/// fragments — UDP preserves message boundaries).
pub(crate) fn udp_ingest_loop(
    socket: &UdpSocket,
    tx: &SyncSender<Ingest>,
    shutdown: &Arc<AtomicBool>,
    next_source: &Arc<AtomicU32>,
) {
    let started = Instant::now();
    let mut peers: HashMap<SocketAddr, u32> = HashMap::new();
    let mut buf = [0u8; 65536];
    while !shutdown.load(Ordering::SeqCst) {
        match socket.recv_from(&mut buf) {
            Ok((n, peer)) => {
                let source = *peers.entry(peer).or_insert_with(|| {
                    OBS_SOURCES.inc();
                    OBS_SOURCES_CONNECTED.add(1);
                    next_source.fetch_add(1, Ordering::Relaxed)
                });
                let text = String::from_utf8_lossy(&buf[..n]);
                for line in text.lines() {
                    let line = line.trim_end_matches('\r').trim();
                    if line.is_empty() {
                        continue;
                    }
                    let Some(msg) = frame_line(line, source, &started) else {
                        continue;
                    };
                    if !send_ingest(tx, msg) {
                        break;
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(_) => {}
        }
    }
    OBS_SOURCES_CONNECTED.add(-(peers.len() as i64));
}

/// Accepts CE-out TCP subscribers: each connection gets a hub queue and a
/// writer thread streaming line-delimited JSON until the client hangs up,
/// the hub evicts it, or the server shuts down.
pub(crate) fn subscriber_loop(
    listener: &TcpListener,
    hub: &Arc<BroadcastHub>,
    shutdown: &Arc<AtomicBool>,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let hub = Arc::clone(hub);
                let _ = std::thread::Builder::new()
                    .name("serve-sub".into())
                    .spawn(move || {
                        let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
                        let (id, rx) = hub.subscribe();
                        let mut w = stream;
                        for event in rx.iter() {
                            if w.write_all(event.as_bytes())
                                .and_then(|()| w.write_all(b"\n"))
                                .and_then(|()| w.flush())
                                .is_err()
                            {
                                break;
                            }
                        }
                        hub.unsubscribe(id);
                    });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Serves the HTTP surface: `/metrics` (Prometheus text), `/metrics.json`,
/// `/metrics/history` (the telemetry ring), `/sources` (per-source mux
/// counters), `/healthz` (SLO verdict), `/dashboard` (the operator page),
/// and `/events` (SSE stream of the same wire events TCP subscribers
/// get).
pub(crate) fn http_loop(
    listener: &TcpListener,
    hub: &Arc<BroadcastHub>,
    live: &Arc<Mutex<LiveIngest>>,
    telemetry: &Arc<ServeTelemetry>,
    shutdown: &Arc<AtomicBool>,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let hub = Arc::clone(hub);
                let live = Arc::clone(live);
                let telemetry = Arc::clone(telemetry);
                let _ = std::thread::Builder::new()
                    .name("serve-http-conn".into())
                    .spawn(move || http_connection(stream, &hub, &live, &telemetry));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn http_connection(
    mut stream: TcpStream,
    hub: &Arc<BroadcastHub>,
    live: &Mutex<LiveIngest>,
    telemetry: &ServeTelemetry,
) {
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let Some(path) = read_request_path(&mut stream) else {
        return;
    };
    OBS_HTTP_REQUESTS.inc();
    match path.as_str() {
        "/metrics" => {
            let body = maritime_obs::encode::prometheus_text(&maritime_obs::snapshot());
            respond(&mut stream, "200 OK", "text/plain; version=0.0.4", &body);
        }
        "/metrics.json" => {
            let body = maritime_obs::encode::json(&maritime_obs::snapshot());
            respond(&mut stream, "200 OK", "application/json", &body);
        }
        "/metrics/history" => {
            let body = maritime_obs::timeseries::history_json(telemetry.ring());
            respond(&mut stream, "200 OK", "application/json", &body);
        }
        "/healthz" => {
            let state = telemetry.state();
            respond(
                &mut stream,
                state.http_status(),
                "text/plain",
                &telemetry.healthz_body(),
            );
        }
        "/dashboard" => {
            let body = dashboard::render(telemetry);
            respond(&mut stream, "200 OK", "text/html; charset=utf-8", &body);
        }
        "/sources" => {
            let body = sources_json(live);
            respond(&mut stream, "200 OK", "application/json", &body);
        }
        "/events" => {
            let (id, rx) = hub.subscribe();
            let header = "HTTP/1.0 200 OK\r\ncontent-type: text/event-stream\r\ncache-control: no-store\r\nconnection: close\r\n\r\n";
            if stream.write_all(header.as_bytes()).is_err() {
                hub.unsubscribe(id);
                return;
            }
            for event in rx.iter() {
                if stream
                    .write_all(sse_frame(&event).as_bytes())
                    .and_then(|()| stream.flush())
                    .is_err()
                {
                    break;
                }
            }
            hub.unsubscribe(id);
        }
        _ => respond(&mut stream, "404 Not Found", "text/plain", "not found\n"),
    }
}

/// Reads the request head and returns the path of `GET <path> HTTP/1.x`.
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    // Read until the blank line ending the header block (or 8 KiB).
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < 8192 {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&head);
    let mut parts = head.lines().next()?.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    if method != "GET" {
        return None;
    }
    Some(path.to_string())
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.0 {status}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .and_then(|()| stream.flush());
}

/// Renders the per-source mux counters as a JSON array.
fn sources_json(live: &Mutex<LiveIngest>) -> String {
    let live = live.lock();
    let rows: Vec<String> = live
        .sources()
        .map(|(id, s)| {
            format!(
                "{{\"source\":{},\"lines\":{},\"accepted\":{},\"filtered\":{},\
                 \"duplicates\":{},\"sentences_per_sec\":{:.3}}}",
                id.0,
                s.lines,
                s.accepted,
                s.filtered,
                s.duplicates,
                s.sentences_per_sec()
            )
        })
        .collect();
    format!("[{}]\n", rows.join(","))
}
