//! The `/dashboard` operator page: one self-contained HTML document.
//!
//! Zero dependencies end to end — the page is a single server-rendered
//! string with inline CSS and inline JavaScript that polls
//! `/metrics/history` and `/healthz` and draws SVG sparklines from the
//! sample ring. The health state is rendered *server-side* into the
//! initial document (the `health: <state>` line), so `curl /dashboard`
//! shows the verdict without executing any script — which is exactly how
//! the CI smoke test asserts it.

use super::health::ServeTelemetry;

/// Counter series the dashboard charts as per-interval rates.
const RATE_SERIES: &[(&str, &str)] = &[
    ("serve_sentences_total", "lines/s"),
    ("ais_positions_total", "positions/s"),
    ("pipeline_slides_total", "slides/s"),
    ("cer_ce_recognized_total", "CE/s"),
    ("cer_alerts_total", "alerts/s"),
    ("serve_events_broadcast_total", "events/s"),
];

/// Gauge series the dashboard charts as levels.
const LEVEL_SERIES: &[(&str, &str)] = &[
    ("serve_sources_connected", "sources"),
    ("serve_subscribers_connected", "subscribers"),
    ("stream_admission_buffered", "buffered"),
    ("tracker_active_vessels", "vessels"),
];

/// Renders the dashboard document for the current telemetry state.
pub(crate) fn render(telemetry: &ServeTelemetry) -> String {
    let state = telemetry.state();
    let healthz = telemetry.healthz_body();
    let detail: String = healthz
        .lines()
        .skip(1)
        .map(|l| format!("{}\n", html_escape(l)))
        .collect();
    let rate_json = series_json(RATE_SERIES);
    let level_json = series_json(LEVEL_SERIES);
    format!(
        r#"<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>surveil serve — live telemetry</title>
<style>
  body {{ font: 14px/1.5 ui-monospace, monospace; background: #0d1117; color: #c9d1d9;
         margin: 2rem auto; max-width: 72rem; padding: 0 1rem; }}
  h1 {{ font-size: 1.2rem; color: #e6edf3; }}
  .state {{ font-size: 1.1rem; font-weight: bold; }}
  .state.ok {{ color: #3fb950; }}
  .state.degraded {{ color: #d29922; }}
  .state.critical {{ color: #f85149; }}
  pre.detail {{ color: #d29922; white-space: pre-wrap; }}
  .cards {{ display: grid; grid-template-columns: repeat(auto-fill, minmax(20rem, 1fr));
            gap: 1rem; margin-top: 1rem; }}
  .card {{ background: #161b22; border: 1px solid #30363d; border-radius: 6px;
           padding: .6rem .8rem; }}
  .card .name {{ color: #8b949e; font-size: .8rem; }}
  .card .value {{ font-size: 1.3rem; color: #e6edf3; }}
  .card svg {{ width: 100%; height: 3rem; }}
  .card polyline {{ fill: none; stroke: #58a6ff; stroke-width: 1.5; }}
  footer {{ color: #484f58; margin-top: 2rem; font-size: .8rem; }}
</style>
</head>
<body>
<h1>surveil serve — live telemetry</h1>
<p class="state {state_class}" id="state">health: {state_name}</p>
<pre class="detail" id="detail">{detail}</pre>
<div class="cards" id="cards"></div>
<footer>samples from <code>/metrics/history</code>, refreshed every 2 s;
health from <code>/healthz</code>. Full catalog: <code>/metrics</code>.</footer>
<script>
const RATES = {rate_json};
const LEVELS = {level_json};

function spark(points) {{
  if (points.length < 2) return '<svg viewBox="0 0 100 30"></svg>';
  const max = Math.max(...points, 1e-9);
  const step = 100 / (points.length - 1);
  const pts = points
    .map((v, i) => (i * step).toFixed(1) + ',' + (28 - 26 * (v / max)).toFixed(1))
    .join(' ');
  return '<svg viewBox="0 0 100 30" preserveAspectRatio="none">' +
         '<polyline points="' + pts + '"/></svg>';
}}

function card(name, unit, value, points) {{
  return '<div class="card"><div class="name">' + name + '</div>' +
         '<div class="value">' + value + ' <small>' + unit + '</small></div>' +
         spark(points) + '</div>';
}}

async function refresh() {{
  try {{
    const hist = await (await fetch('/metrics/history')).json();
    const samples = hist.samples || [];
    let html = '';
    for (const [name, unit] of RATES) {{
      const pts = [];
      for (let i = 1; i < samples.length; i++) {{
        const prev = samples[i - 1], cur = samples[i];
        const a = (prev.metrics[name] || {{}}).value || 0;
        const b = (cur.metrics[name] || {{}}).value || 0;
        const dt = (cur.at_ns - prev.at_ns) / 1e9;
        pts.push(dt > 0 ? Math.max(b - a, 0) / dt : 0);
      }}
      const last = pts.length ? pts[pts.length - 1].toFixed(1) : '0.0';
      html += card(name, unit, last, pts);
    }}
    for (const [name, unit] of LEVELS) {{
      const pts = samples.map(s => (s.metrics[name] || {{}}).value || 0);
      const last = pts.length ? pts[pts.length - 1] : 0;
      html += card(name, unit, last, pts);
    }}
    document.getElementById('cards').innerHTML = html;
    const health = await (await fetch('/healthz')).text();
    const lines = health.trim().split('\n');
    const state = lines[0] || 'ok';
    const el = document.getElementById('state');
    el.textContent = 'health: ' + state;
    el.className = 'state ' + state;
    document.getElementById('detail').textContent = lines.slice(1).join('\n');
  }} catch (e) {{ /* server going away mid-poll is fine */ }}
}}
refresh();
setInterval(refresh, 2000);
</script>
</body>
</html>
"#,
        state_class = state.as_str(),
        state_name = state.as_str(),
        detail = detail,
        rate_json = rate_json,
        level_json = level_json,
    )
}

/// `[["name","unit"],...]` for the inline script.
fn series_json(series: &[(&str, &str)]) -> String {
    let rows: Vec<String> = series
        .iter()
        .map(|(name, unit)| format!("[\"{name}\",\"{unit}\"]"))
        .collect();
    format!("[{}]", rows.join(","))
}

fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::health::{Breach, HealthState};

    #[test]
    fn dashboard_renders_health_server_side() {
        let telemetry = ServeTelemetry::new(8);
        let page = render(&telemetry);
        assert!(page.starts_with("<!doctype html>"));
        assert!(page.contains("health: ok"), "curl-greppable state line");
        assert!(page.contains("/metrics/history"));
        // Self-contained: no external fetches besides our own endpoints.
        assert!(!page.contains("http://") && !page.contains("https://"));

        telemetry.set_state(
            HealthState::Critical,
            &[Breach {
                rule: "rate_collapse",
                detail: "rate_collapse: 2 source(s) <silent>".to_string(),
            }],
        );
        let page = render(&telemetry);
        assert!(page.contains("health: critical"));
        assert!(page.contains("&lt;silent&gt;"), "detail is HTML-escaped");
    }

    #[test]
    fn charted_series_exist_in_the_catalog() {
        use maritime_obs::names;
        for (name, _) in RATE_SERIES.iter().chain(LEVEL_SERIES) {
            assert!(
                names::CATALOG.iter().any(|d| d.name == *name),
                "dashboard charts unknown metric {name}"
            );
        }
    }
}
