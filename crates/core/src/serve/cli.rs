//! Flag tables and parsers for `surveil serve` and `surveil feed`.
//!
//! The tables are the single source of truth for the serving CLI surface:
//! the binary parses from them, and the `SERVING.md` doc tests diff the
//! handbook's flags against them two-way — an undocumented flag or a
//! documented phantom both fail CI.

use maritime_cer::VesselInfo;
use maritime_stream::{Duration, WindowSpec};

use crate::config::{Parallelism, SurveillanceConfig};
use crate::serve::ServeOptions;

/// One CLI flag: name, value placeholder (`None` for boolean switches),
/// one-line help.
#[derive(Debug, Clone, Copy)]
pub struct FlagSpec {
    /// The flag, with leading dashes (`--nmea-tcp`).
    pub name: &'static str,
    /// Placeholder for the value, or `None` for a switch.
    pub value: Option<&'static str>,
    /// One-line help string.
    pub help: &'static str,
}

const fn flag(name: &'static str, value: Option<&'static str>, help: &'static str) -> FlagSpec {
    FlagSpec { name, value, help }
}

/// Every `surveil serve` flag.
pub const SERVE_FLAGS: &[FlagSpec] = &[
    flag("--bind", Some("ADDR"), "address every listener binds (default 127.0.0.1)"),
    flag("--nmea-tcp", Some("PORT"), "NMEA-in TCP port; 0 picks free, 'off' disables (default 10110)"),
    flag("--nmea-udp", Some("PORT"), "NMEA-in UDP port (default off)"),
    flag("--subscribe", Some("PORT"), "CE-out line-JSON TCP port; 'off' disables (default 10111)"),
    flag("--http", Some("PORT"), "HTTP port for /metrics, /sources, /healthz, /events (default 9090)"),
    flag("--queue", Some("N"), "per-subscriber event queue bound before eviction (default 1024)"),
    flag("--ingest-queue", Some("N"), "raw-line backlog before sources block (default 4096)"),
    flag("--skew", Some("SECS"), "admission-buffer disorder bound (default 120)"),
    flag("--dedup-secs", Some("SECS"), "cross-source duplicate window; 0 disables (default 10)"),
    flag("--track-window", Some("RANGE,SLIDE"), "tracking window in minutes (default 60,5)"),
    flag("--recog-window", Some("RANGE,SLIDE"), "recognition window in minutes (default 360,60)"),
    flag("--shards", Some("N"), "tracker shards (default 1)"),
    flag("--bands", Some("N"), "recognition bands (default 1)"),
    flag("--incremental", None, "checkpointed incremental recognition"),
    flag("--demo-fleet", Some("N"), "vessel facts for the N-vessel demo fleet (matches 'surveil feed --demo N H')"),
    flag("--fleet", Some("FILE"), "vessel facts from a JSON array of {mmsi, draft_m, is_fishing}"),
    flag("--run-secs", Some("N"), "self-shutdown after N wall-clock seconds (default: run until #shutdown)"),
    flag("--checkpoint-dir", Some("DIR"), "write recognition-state checkpoints to DIR/serve.ckpt and restore from it on boot (default off)"),
    flag("--checkpoint-every", Some("N"), "recognition queries between checkpoint writes (default 1)"),
    flag("--sample-secs", Some("SECS"), "telemetry sampling interval for /metrics/history and SLO health (default 2)"),
    flag("--history-cap", Some("N"), "samples retained by the telemetry ring (default 256)"),
    flag("--slo-stale", Some("N"), "silent intervals with sources connected before rate_collapse breaches (default 3)"),
    flag("--slo-max-evictions", Some("N"), "subscriber evictions tolerated per interval (default 0)"),
    flag("--slo-error-ratio", Some("X"), "decode-error ratio tolerated per interval (default 0.5)"),
    flag("--slo-max-lag-ms", Some("MS"), "mean admission-to-alert latency tolerated (default 5000)"),
    flag("--slo-critical-after", Some("N"), "consecutive breaching evaluations before critical (default 5)"),
];

/// Every `surveil watch` flag.
pub const WATCH_FLAGS: &[FlagSpec] = &[
    flag("--http", Some("HOST:PORT"), "the server's HTTP address (required)"),
    flag("--interval-ms", Some("MS"), "poll interval (default 1000)"),
    flag("--samples", Some("N"), "stop after N polls; 0 runs until interrupted (default 0)"),
];

/// Every `surveil feed` flag.
pub const FEED_FLAGS: &[FlagSpec] = &[
    flag("--demo", Some("VESSELS HOURS"), "stream the deterministic demo log"),
    flag("--input", Some("FILE"), "stream a '<epoch> <sentence>' log file"),
    flag("--to", Some("HOST:PORT"), "the server's NMEA-in TCP address"),
    flag("--flush", None, "send #flush after the stream (end of stream)"),
    flag("--control", Some("NAME"), "send only a control line: 'flush' or 'shutdown'"),
    flag("--rate", Some("LINES/S"), "throttle the replay (default: full speed)"),
];

/// Parsed `surveil serve` invocation.
#[derive(Debug, Clone)]
pub struct ServeCli {
    /// Listener bind address.
    pub bind: String,
    /// NMEA-in TCP port (`None` = disabled).
    pub nmea_tcp: Option<u16>,
    /// NMEA-in UDP port.
    pub nmea_udp: Option<u16>,
    /// CE-out subscriber port.
    pub subscribe: Option<u16>,
    /// HTTP port.
    pub http: Option<u16>,
    /// Per-subscriber queue bound.
    pub queue: usize,
    /// Ingest channel bound.
    pub ingest_queue: usize,
    /// Admission skew, seconds.
    pub skew_secs: i64,
    /// Dedup window, seconds.
    pub dedup_secs: i64,
    /// Tracking window (range, slide) minutes.
    pub track_window_mins: (i64, i64),
    /// Recognition window (range, slide) minutes.
    pub recog_window_mins: (i64, i64),
    /// Tracker shards.
    pub shards: usize,
    /// Recognition bands.
    pub bands: usize,
    /// Incremental recognition.
    pub incremental: bool,
    /// Demo-fleet size for vessel facts.
    pub demo_fleet: Option<usize>,
    /// Vessel-facts JSON file.
    pub fleet: Option<String>,
    /// Self-shutdown deadline, seconds.
    pub run_secs: Option<u64>,
    /// Checkpoint directory (`None` = checkpointing off).
    pub checkpoint_dir: Option<String>,
    /// Recognition queries between checkpoint writes.
    pub checkpoint_every: u64,
    /// Telemetry sampling interval, seconds.
    pub sample_secs: u64,
    /// Telemetry ring capacity.
    pub history_cap: usize,
    /// SLO bounds for the health engine.
    pub slo: crate::serve::SloThresholds,
}

impl Default for ServeCli {
    fn default() -> Self {
        Self {
            bind: "127.0.0.1".to_string(),
            nmea_tcp: Some(10110),
            nmea_udp: None,
            subscribe: Some(10111),
            http: Some(9090),
            queue: 1024,
            ingest_queue: 4096,
            skew_secs: 120,
            dedup_secs: 10,
            track_window_mins: (60, 5),
            recog_window_mins: (360, 60),
            shards: 1,
            bands: 1,
            incremental: false,
            demo_fleet: None,
            fleet: None,
            run_secs: None,
            checkpoint_dir: None,
            checkpoint_every: 1,
            sample_secs: 2,
            history_cap: 256,
            slo: crate::serve::SloThresholds::default(),
        }
    }
}

fn parse_port(v: &str) -> Result<Option<u16>, String> {
    if v == "off" {
        return Ok(None);
    }
    v.parse::<u16>()
        .map(Some)
        .map_err(|_| format!("not a port (or 'off'): {v}"))
}

fn parse_pair(v: &str) -> Result<(i64, i64), String> {
    let (a, b) = v
        .split_once(',')
        .ok_or_else(|| format!("expected RANGE,SLIDE: {v}"))?;
    let a = a.trim().parse::<i64>().map_err(|_| format!("not a number: {a}"))?;
    let b = b.trim().parse::<i64>().map_err(|_| format!("not a number: {b}"))?;
    Ok((a, b))
}

impl ServeCli {
    /// Parses `surveil serve` arguments (without the leading `serve`).
    ///
    /// # Errors
    /// A human-readable message naming the offending flag or value.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut cli = Self::default();
        let mut it = args.iter();
        let value = |name: &str, it: &mut std::slice::Iter<'_, String>| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        while let Some(a) = it.next() {
            match a.as_str() {
                "--bind" => cli.bind = value(a, &mut it)?,
                "--nmea-tcp" => cli.nmea_tcp = parse_port(&value(a, &mut it)?)?,
                "--nmea-udp" => cli.nmea_udp = parse_port(&value(a, &mut it)?)?,
                "--subscribe" => cli.subscribe = parse_port(&value(a, &mut it)?)?,
                "--http" => cli.http = parse_port(&value(a, &mut it)?)?,
                "--queue" => {
                    cli.queue = value(a, &mut it)?
                        .parse()
                        .map_err(|_| "--queue needs a positive integer".to_string())?;
                }
                "--ingest-queue" => {
                    cli.ingest_queue = value(a, &mut it)?
                        .parse()
                        .map_err(|_| "--ingest-queue needs a positive integer".to_string())?;
                }
                "--skew" => {
                    cli.skew_secs = value(a, &mut it)?
                        .parse()
                        .map_err(|_| "--skew needs seconds".to_string())?;
                }
                "--dedup-secs" => {
                    cli.dedup_secs = value(a, &mut it)?
                        .parse()
                        .map_err(|_| "--dedup-secs needs seconds".to_string())?;
                }
                "--track-window" => cli.track_window_mins = parse_pair(&value(a, &mut it)?)?,
                "--recog-window" => cli.recog_window_mins = parse_pair(&value(a, &mut it)?)?,
                "--shards" => {
                    cli.shards = value(a, &mut it)?
                        .parse()
                        .map_err(|_| "--shards needs a positive integer".to_string())?;
                }
                "--bands" => {
                    cli.bands = value(a, &mut it)?
                        .parse()
                        .map_err(|_| "--bands needs a positive integer".to_string())?;
                }
                "--incremental" => cli.incremental = true,
                "--demo-fleet" => {
                    cli.demo_fleet = Some(
                        value(a, &mut it)?
                            .parse()
                            .map_err(|_| "--demo-fleet needs a vessel count".to_string())?,
                    );
                }
                "--fleet" => cli.fleet = Some(value(a, &mut it)?),
                "--checkpoint-dir" => cli.checkpoint_dir = Some(value(a, &mut it)?),
                "--checkpoint-every" => {
                    cli.checkpoint_every = value(a, &mut it)?
                        .parse()
                        .map_err(|_| "--checkpoint-every needs a query count".to_string())?;
                }
                "--run-secs" => {
                    cli.run_secs = Some(
                        value(a, &mut it)?
                            .parse()
                            .map_err(|_| "--run-secs needs seconds".to_string())?,
                    );
                }
                "--sample-secs" => {
                    cli.sample_secs = value(a, &mut it)?
                        .parse()
                        .map_err(|_| "--sample-secs needs seconds".to_string())?;
                }
                "--history-cap" => {
                    cli.history_cap = value(a, &mut it)?
                        .parse()
                        .map_err(|_| "--history-cap needs a positive integer".to_string())?;
                }
                "--slo-stale" => {
                    cli.slo.stale_intervals = value(a, &mut it)?
                        .parse()
                        .map_err(|_| "--slo-stale needs an interval count".to_string())?;
                }
                "--slo-max-evictions" => {
                    cli.slo.max_evictions = value(a, &mut it)?
                        .parse()
                        .map_err(|_| "--slo-max-evictions needs a count".to_string())?;
                }
                "--slo-error-ratio" => {
                    cli.slo.error_ratio = value(a, &mut it)?
                        .parse()
                        .map_err(|_| "--slo-error-ratio needs a ratio in [0,1]".to_string())?;
                }
                "--slo-max-lag-ms" => {
                    cli.slo.max_lag_ms = value(a, &mut it)?
                        .parse()
                        .map_err(|_| "--slo-max-lag-ms needs milliseconds".to_string())?;
                }
                "--slo-critical-after" => {
                    cli.slo.critical_after = value(a, &mut it)?
                        .parse()
                        .map_err(|_| "--slo-critical-after needs a count".to_string())?;
                }
                other => return Err(format!("unknown serve flag: {other}")),
            }
        }
        Ok(cli)
    }

    /// Builds the pipeline configuration these flags describe.
    ///
    /// # Errors
    /// The window-spec message when a `--track-window`/`--recog-window`
    /// pair is invalid.
    pub fn surveillance_config(&self) -> Result<SurveillanceConfig, String> {
        let (tr, ts) = self.track_window_mins;
        let (rr, rs) = self.recog_window_mins;
        Ok(SurveillanceConfig {
            tracking_window: WindowSpec::new(Duration::minutes(tr), Duration::minutes(ts))
                .map_err(|e| format!("--track-window: {e}"))?,
            recognition_window: WindowSpec::new(Duration::minutes(rr), Duration::minutes(rs))
                .map_err(|e| format!("--recog-window: {e}"))?,
            parallelism: Parallelism {
                tracker_shards: self.shards,
                recognition_bands: self.bands,
            },
            incremental_recognition: self.incremental,
            ..SurveillanceConfig::default()
        })
    }

    /// Turns the parsed flags into full [`ServeOptions`] (vessels/areas
    /// supplied by the caller, who knows where the fleet facts come from).
    ///
    /// # Errors
    /// See [`ServeCli::surveillance_config`].
    pub fn serve_options(
        &self,
        vessels: Vec<VesselInfo>,
        areas: Vec<maritime_geo::Area>,
    ) -> Result<ServeOptions, String> {
        Ok(ServeOptions {
            config: self.surveillance_config()?,
            vessels,
            areas,
            bind: self.bind.clone(),
            nmea_tcp_port: self.nmea_tcp,
            nmea_udp_port: self.nmea_udp,
            subscribe_port: self.subscribe,
            http_port: self.http,
            skew: Duration::secs(self.skew_secs),
            dedup_window: Duration::secs(self.dedup_secs),
            queue_bound: self.queue,
            ingest_bound: self.ingest_queue,
            sample_interval: std::time::Duration::from_secs(self.sample_secs.max(1)),
            history_capacity: self.history_cap,
            slo: self.slo,
            checkpoint_dir: self.checkpoint_dir.clone().map(std::path::PathBuf::from),
            checkpoint_every: self.checkpoint_every.max(1),
        })
    }
}

/// Parsed `surveil watch` invocation.
#[derive(Debug, Clone)]
pub struct WatchCli {
    /// The server's HTTP address.
    pub http: String,
    /// Poll interval, milliseconds.
    pub interval_ms: u64,
    /// Polls before exiting (0 = until interrupted).
    pub samples: u64,
}

impl WatchCli {
    /// Parses `surveil watch` arguments (without the leading `watch`).
    ///
    /// # Errors
    /// A human-readable message naming the offending flag or value.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut http = None;
        let mut interval_ms = 1000u64;
        let mut samples = 0u64;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--http" => http = it.next().cloned(),
                "--interval-ms" => {
                    interval_ms = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--interval-ms needs milliseconds")?;
                }
                "--samples" => {
                    samples = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--samples needs a count")?;
                }
                other => return Err(format!("unknown watch flag: {other}")),
            }
        }
        Ok(Self {
            http: http.ok_or("watch needs --http HOST:PORT")?,
            interval_ms: interval_ms.max(50),
            samples,
        })
    }
}

/// Parsed `surveil feed` invocation.
#[derive(Debug, Clone, Default)]
pub struct FeedCli {
    /// Demo stream: (vessels, hours).
    pub demo: Option<(usize, i64)>,
    /// Log file to stream.
    pub input: Option<String>,
    /// Server address.
    pub to: Option<String>,
    /// Send `#flush` after the stream.
    pub flush: bool,
    /// Send only a control line.
    pub control: Option<String>,
    /// Replay throttle, lines per second (0 = full speed).
    pub rate: u64,
}

impl FeedCli {
    /// Parses `surveil feed` arguments (without the leading `feed`).
    ///
    /// # Errors
    /// A human-readable message naming the offending flag or value.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut cli = Self::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--demo" => {
                    let vessels = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--demo needs VESSELS HOURS")?;
                    let hours = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--demo needs VESSELS HOURS")?;
                    cli.demo = Some((vessels, hours));
                }
                "--input" => cli.input = it.next().cloned(),
                "--to" => cli.to = it.next().cloned(),
                "--flush" => cli.flush = true,
                "--control" => cli.control = it.next().cloned(),
                "--rate" => {
                    cli.rate = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--rate needs lines per second")?;
                }
                other => return Err(format!("unknown feed flag: {other}")),
            }
        }
        if cli.to.is_none() {
            return Err("feed needs --to HOST:PORT".to_string());
        }
        if cli.control.is_none() && cli.demo.is_none() && cli.input.is_none() {
            return Err("feed needs --demo, --input, or --control".to_string());
        }
        Ok(cli)
    }
}

/// The demo fleet's static vessel facts: the same profiles (seed
/// `0x5EAF00D`) that `surveil feed --demo N H` streams, so a server
/// started with `--demo-fleet N` recognizes against the right knowledge
/// base. Profile generation does not depend on the simulated duration.
#[must_use]
pub fn demo_fleet(vessels: usize) -> Vec<VesselInfo> {
    use maritime_ais::{FleetConfig, FleetSimulator};
    let sim = FleetSimulator::new(FleetConfig {
        vessels,
        duration: Duration::hours(1),
        seed: 0x5EAF00D,
        ..FleetConfig::default()
    });
    sim.profiles().iter().map(VesselInfo::from).collect()
}

/// Reads vessel facts from a JSON array of
/// `{"mmsi": N, "draft_m": X, "is_fishing": B}` objects.
///
/// # Errors
/// A message naming the first malformed entry.
pub fn parse_fleet_json(body: &str) -> Result<Vec<VesselInfo>, String> {
    use serde_json::Value;
    let v: Value = serde_json::from_str(body).map_err(|e| format!("not JSON: {e}"))?;
    let Value::Array(rows) = v else {
        return Err("fleet file must be a JSON array".to_string());
    };
    rows.iter()
        .enumerate()
        .map(|(i, row)| {
            let mmsi = match row.get("mmsi") {
                Some(Value::Int(n)) if *n >= 0 => u32::try_from(*n)
                    .map_err(|_| format!("entry {i}: mmsi out of range"))?,
                Some(Value::UInt(n)) => u32::try_from(*n)
                    .map_err(|_| format!("entry {i}: mmsi out of range"))?,
                _ => return Err(format!("entry {i}: missing mmsi")),
            };
            let draft_m = match row.get("draft_m") {
                Some(Value::Float(x)) => *x,
                #[allow(clippy::cast_precision_loss)]
                Some(Value::Int(n)) => *n as f64,
                _ => return Err(format!("entry {i}: missing draft_m")),
            };
            let Some(Value::Bool(is_fishing)) = row.get("is_fishing") else {
                return Err(format!("entry {i}: missing is_fishing"));
            };
            Ok(VesselInfo {
                mmsi: maritime_ais::Mmsi(mmsi),
                draft_m,
                is_fishing: *is_fishing,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn every_serve_flag_is_parsed() {
        for f in SERVE_FLAGS {
            let args = match f.value {
                Some(_) => {
                    // A representative value each flag accepts.
                    let v = match f.name {
                        "--bind" => "0.0.0.0",
                        "--fleet" => "fleet.json",
                        "--track-window" | "--recog-window" => "60,10",
                        "--demo" => "20 6",
                        _ => "7",
                    };
                    argv(&[f.name, v])
                }
                None => argv(&[f.name]),
            };
            ServeCli::parse(&args).unwrap_or_else(|e| panic!("{} rejected: {e}", f.name));
        }
    }

    #[test]
    fn every_feed_flag_is_parsed() {
        for f in FEED_FLAGS {
            let mut parts: Vec<&str> = vec!["--to", "127.0.0.1:10110", "--demo", "5", "1"];
            match f.value {
                Some(_) => {
                    let v = match f.name {
                        "--to" => "127.0.0.1:10110",
                        "--input" => "ais.log",
                        "--control" => "flush",
                        "--demo" => "",
                        _ => "7",
                    };
                    if f.name != "--demo" && f.name != "--to" {
                        parts.extend([f.name, v]);
                    }
                }
                None => parts.push(f.name),
            }
            FeedCli::parse(&argv(&parts)).unwrap_or_else(|e| panic!("{} rejected: {e}", f.name));
        }
    }

    #[test]
    fn every_watch_flag_is_parsed() {
        for f in WATCH_FLAGS {
            let mut parts: Vec<&str> = vec!["--http", "127.0.0.1:9090"];
            if f.name != "--http" {
                parts.extend([f.name, "500"]);
            }
            WatchCli::parse(&argv(&parts)).unwrap_or_else(|e| panic!("{} rejected: {e}", f.name));
        }
        assert!(WatchCli::parse(&[]).is_err(), "--http is required");
        assert!(WatchCli::parse(&argv(&["--http", "x:1", "--bogus"])).is_err());
    }

    #[test]
    fn slo_flags_reach_the_thresholds() {
        let cli = ServeCli::parse(&argv(&[
            "--sample-secs", "1", "--history-cap", "32", "--slo-stale", "2",
            "--slo-max-evictions", "4", "--slo-error-ratio", "0.9",
            "--slo-max-lag-ms", "250", "--slo-critical-after", "3",
        ]))
        .unwrap();
        assert_eq!(cli.sample_secs, 1);
        assert_eq!(cli.history_cap, 32);
        assert_eq!(cli.slo.stale_intervals, 2);
        assert_eq!(cli.slo.max_evictions, 4);
        assert!((cli.slo.error_ratio - 0.9).abs() < 1e-9);
        assert_eq!(cli.slo.max_lag_ms, 250);
        assert_eq!(cli.slo.critical_after, 3);
        let opts = cli.serve_options(Vec::new(), Vec::new()).unwrap();
        assert_eq!(opts.sample_interval, std::time::Duration::from_secs(1));
        assert_eq!(opts.history_capacity, 32);
        assert_eq!(opts.slo.critical_after, 3);
    }

    #[test]
    fn unknown_flags_are_rejected() {
        assert!(ServeCli::parse(&argv(&["--bogus"])).is_err());
        assert!(FeedCli::parse(&argv(&["--to", "x:1", "--bogus"])).is_err());
    }

    #[test]
    fn ports_accept_off() {
        let cli = ServeCli::parse(&argv(&["--nmea-udp", "4001", "--http", "off"])).unwrap();
        assert_eq!(cli.nmea_udp, Some(4001));
        assert_eq!(cli.http, None);
        assert_eq!(cli.nmea_tcp, Some(10110), "default untouched");
    }

    #[test]
    fn serve_config_validates_default_windows() {
        let cli = ServeCli::parse(&[]).unwrap();
        let config = cli.surveillance_config().unwrap();
        assert!(config.validate().is_ok());
    }

    #[test]
    fn fleet_json_round_trips() {
        let body = r#"[{"mmsi": 237000001, "draft_m": 5.5, "is_fishing": false},
                       {"mmsi": 237000002, "draft_m": 2.1, "is_fishing": true}]"#;
        let fleet = parse_fleet_json(body).unwrap();
        assert_eq!(fleet.len(), 2);
        assert_eq!(fleet[1].mmsi, maritime_ais::Mmsi(237_000_002));
        assert!(fleet[1].is_fishing);
        assert!(parse_fleet_json("{}").is_err());
        assert!(parse_fleet_json(r#"[{"mmsi": 1}]"#).is_err());
    }

    #[test]
    fn demo_fleet_matches_demo_log_profiles() {
        let a = demo_fleet(8);
        let b = demo_fleet(8);
        assert_eq!(a.len(), 8);
        assert_eq!(a, b, "deterministic");
    }
}
