//! The broadcast hub: one recognition core, N cheap subscribers.
//!
//! Every subscriber owns a bounded queue. The driver thread enqueues each
//! wire event to every queue without ever blocking: a subscriber whose
//! queue is full is *evicted* (its sender dropped, its writer thread
//! unwinds on the closed channel) rather than allowed to stall the
//! recognition loop. This is the load-shedding contract of `SERVING.md` —
//! a slow consumer loses its own feed, never anyone else's.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;

use maritime_obs::{names, LazyCounter, LazyGauge};
use parking_lot::Mutex;

static OBS_SUBSCRIBERS_CONNECTED: LazyGauge = LazyGauge::new(names::SERVE_SUBSCRIBERS_CONNECTED);
static OBS_SUBSCRIBERS: LazyCounter = LazyCounter::new(names::SERVE_SUBSCRIBERS);
static OBS_EVENTS_BROADCAST: LazyCounter = LazyCounter::new(names::SERVE_EVENTS_BROADCAST);
static OBS_SLOW_EVICTIONS: LazyCounter = LazyCounter::new(names::SERVE_SLOW_EVICTIONS);
static OBS_DROPPED_EVENTS: LazyCounter = LazyCounter::new(names::SERVE_DROPPED_EVENTS);

/// One subscriber's end of the hub: the queue of wire event lines.
pub type EventReceiver = Receiver<Arc<str>>;

struct Subscriber {
    id: u64,
    tx: SyncSender<Arc<str>>,
}

/// Fan-out of wire event lines to bounded per-subscriber queues.
#[derive(Debug)]
pub struct BroadcastHub {
    subscribers: Mutex<Vec<Subscriber>>,
    queue_bound: usize,
    next_id: AtomicU64,
    evicted: AtomicU64,
}

impl std::fmt::Debug for Subscriber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscriber").field("id", &self.id).finish()
    }
}

impl BroadcastHub {
    /// Creates a hub whose subscribers may lag at most `queue_bound`
    /// events before eviction.
    #[must_use]
    pub fn new(queue_bound: usize) -> Arc<Self> {
        Arc::new(Self {
            subscribers: Mutex::new(Vec::new()),
            queue_bound: queue_bound.max(1),
            next_id: AtomicU64::new(1),
            evicted: AtomicU64::new(0),
        })
    }

    /// Registers a subscriber; returns its id and the event queue.
    /// Registration is atomic with respect to [`Self::broadcast`]: a
    /// subscriber sees either all of an event's fan-out or none of it,
    /// so a mid-stream join receives exactly the events broadcast after
    /// this call returns.
    pub fn subscribe(&self) -> (u64, EventReceiver) {
        let (tx, rx) = std::sync::mpsc::sync_channel(self.queue_bound);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.subscribers.lock().push(Subscriber { id, tx });
        OBS_SUBSCRIBERS.inc();
        OBS_SUBSCRIBERS_CONNECTED.add(1);
        (id, rx)
    }

    /// Removes a subscriber that disconnected on its own (socket closed).
    /// Unknown ids are fine — the subscriber may already have been
    /// evicted.
    pub fn unsubscribe(&self, id: u64) {
        let mut subs = self.subscribers.lock();
        if let Some(pos) = subs.iter().position(|s| s.id == id) {
            subs.swap_remove(pos);
            OBS_SUBSCRIBERS_CONNECTED.add(-1);
        }
    }

    /// Enqueues one wire event line to every subscriber. Never blocks:
    /// a full queue evicts its subscriber on the spot (counted in
    /// `serve_slow_evictions_total`; the undeliverable event in
    /// `serve_dropped_events_total`).
    pub fn broadcast(&self, line: &str) {
        let event: Arc<str> = Arc::from(line);
        let mut subs = self.subscribers.lock();
        let mut i = 0;
        while i < subs.len() {
            match subs[i].tx.try_send(Arc::clone(&event)) {
                Ok(()) => {
                    OBS_EVENTS_BROADCAST.inc();
                    i += 1;
                }
                Err(TrySendError::Full(_)) => {
                    // Dropping the sender closes the channel; the
                    // subscriber's writer thread drains what is queued,
                    // then sees the disconnect and hangs up.
                    subs.swap_remove(i);
                    self.evicted.fetch_add(1, Ordering::Relaxed);
                    OBS_SLOW_EVICTIONS.inc();
                    OBS_DROPPED_EVENTS.inc();
                    OBS_SUBSCRIBERS_CONNECTED.add(-1);
                }
                Err(TrySendError::Disconnected(_)) => {
                    // Writer already hung up; reap silently.
                    subs.swap_remove(i);
                    OBS_SUBSCRIBERS_CONNECTED.add(-1);
                }
            }
        }
    }

    /// Subscribers currently registered.
    #[must_use]
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.lock().len()
    }

    /// Subscribers evicted for falling behind, since hub creation.
    #[must_use]
    pub fn evicted_count(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// The configured per-subscriber queue bound.
    #[must_use]
    pub fn queue_bound(&self) -> usize {
        self.queue_bound
    }

    /// Drops every subscriber, closing all queues (server shutdown).
    pub fn close(&self) {
        let mut subs = self.subscribers.lock();
        OBS_SUBSCRIBERS_CONNECTED.add(-(subs.len() as i64));
        subs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_consumer_is_evicted_at_the_queue_bound() {
        let hub = BroadcastHub::new(4);
        let (_fast, fast_rx) = hub.subscribe();
        let (_slow, slow_rx) = hub.subscribe();
        assert_eq!(hub.subscriber_count(), 2);

        // The fast consumer drains; the slow one never reads. The slow
        // queue fills after 4 events and the 5th evicts it.
        for i in 0..5 {
            hub.broadcast(&format!("event-{i}"));
            assert_eq!(fast_rx.recv().unwrap().as_ref(), format!("event-{i}"));
        }
        assert_eq!(hub.subscriber_count(), 1, "slow subscriber evicted");
        assert_eq!(hub.evicted_count(), 1);

        // The evicted subscriber still drains what was queued before the
        // channel closed, then sees the hang-up.
        let drained: Vec<String> = slow_rx.iter().map(|e| e.to_string()).collect();
        assert_eq!(drained, ["event-0", "event-1", "event-2", "event-3"]);

        // The surviving subscriber keeps receiving.
        hub.broadcast("after");
        assert_eq!(fast_rx.recv().unwrap().as_ref(), "after");
    }

    #[test]
    fn disconnected_subscriber_is_reaped_silently() {
        let hub = BroadcastHub::new(4);
        let (_id, rx) = hub.subscribe();
        drop(rx);
        hub.broadcast("x");
        assert_eq!(hub.subscriber_count(), 0);
        assert_eq!(hub.evicted_count(), 0, "hang-up is not an eviction");
    }

    #[test]
    fn unsubscribe_is_idempotent() {
        let hub = BroadcastHub::new(2);
        let (id, _rx) = hub.subscribe();
        hub.unsubscribe(id);
        hub.unsubscribe(id);
        assert_eq!(hub.subscriber_count(), 0);
    }
}
