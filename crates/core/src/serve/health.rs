//! The declarative SLO health engine behind `/healthz`.
//!
//! The serve driver samples the full metric registry into a
//! [`SampleRing`] every `--sample-secs`; the
//! engine reads consecutive samples and judges the *interval* between
//! them against a small table of SLO rules ([`SLO_RULES`]):
//!
//! * `rate_collapse` — sources are connected but no lines arrived for
//!   `--slo-stale` consecutive intervals (a half-open feed: the socket is
//!   alive, the data is not);
//! * `watermark_lag` — the mean admission-to-alert latency over the
//!   interval exceeded `--slo-max-lag-ms`;
//! * `subscriber_eviction` — more than `--slo-max-evictions` slow
//!   subscribers were evicted in the interval;
//! * `decode_errors` — the interval's filtered + malformed + bad-checksum
//!   ratio exceeded `--slo-error-ratio` (judged only past a minimum line
//!   volume, so a single stray line cannot degrade a quiet server).
//!
//! Any breach degrades the server; `--slo-critical-after` *consecutive*
//! breaching evaluations escalate to critical (`/healthz` starts
//! answering 503); one clean evaluation recovers to ok. Every transition
//! increments `serve_health_transitions_total`, lands in the flight
//! recorder, and is broadcast to every subscriber as a machine-readable
//! `{"type":"ops",...}` wire line — the operator's pager feed.

use std::sync::atomic::{AtomicU8, Ordering};

use maritime_obs::timeseries::counter_delta;
use maritime_obs::{flight, names, FlightKind, LazyCounter, LazyGauge, Sample, SampleRing};
use parking_lot::Mutex;

static OBS_STATE: LazyGauge = LazyGauge::new(names::SERVE_HEALTH_STATE);
static OBS_TRANSITIONS: LazyCounter = LazyCounter::new(names::SERVE_HEALTH_TRANSITIONS);

/// Minimum lines an interval must carry before the decode-error ratio is
/// judged at all.
const MIN_ERROR_VOLUME: u64 = 8;

/// The server's SLO health, as exposed on `/healthz` and the
/// `serve_health_state` gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Every SLO held in the last evaluated interval.
    Ok,
    /// At least one SLO rule is breaching.
    Degraded,
    /// The breach persisted for `critical_after` consecutive evaluations.
    Critical,
}

impl HealthState {
    /// Stable wire/dashboard name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            HealthState::Ok => "ok",
            HealthState::Degraded => "degraded",
            HealthState::Critical => "critical",
        }
    }

    /// Encoding on the `serve_health_state` gauge.
    #[must_use]
    pub fn as_gauge(self) -> i64 {
        match self {
            HealthState::Ok => 0,
            HealthState::Degraded => 1,
            HealthState::Critical => 2,
        }
    }

    /// The `/healthz` status line: degraded still answers 200 (the server
    /// serves; probes that only check liveness keep passing), critical
    /// answers 503 so load balancers stop routing to it.
    #[must_use]
    pub fn http_status(self) -> &'static str {
        match self {
            HealthState::Ok | HealthState::Degraded => "200 OK",
            HealthState::Critical => "503 Service Unavailable",
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            0 => HealthState::Ok,
            1 => HealthState::Degraded,
            _ => HealthState::Critical,
        }
    }
}

/// SLO bounds the health engine judges each sampling interval against.
/// Defaults match the flag defaults documented in `SERVING.md`.
#[derive(Debug, Clone, Copy)]
pub struct SloThresholds {
    /// Consecutive zero-line intervals (with sources connected) before
    /// `rate_collapse` breaches.
    pub stale_intervals: u32,
    /// Slow-subscriber evictions tolerated per interval.
    pub max_evictions: u64,
    /// Decode-error ratio (errors / lines) tolerated per interval.
    pub error_ratio: f64,
    /// Mean admission-to-alert latency tolerated, milliseconds.
    pub max_lag_ms: u64,
    /// Consecutive breaching evaluations before degraded escalates to
    /// critical.
    pub critical_after: u32,
}

impl Default for SloThresholds {
    fn default() -> Self {
        Self {
            stale_intervals: 3,
            max_evictions: 0,
            error_ratio: 0.5,
            max_lag_ms: 5_000,
            critical_after: 5,
        }
    }
}

/// One row of the declarative rule table: the stable rule name (as it
/// appears in ops alerts and `/healthz` detail lines) and what it guards.
#[derive(Debug, Clone, Copy)]
pub struct SloRule {
    /// Stable rule name.
    pub name: &'static str,
    /// One-line description, mirrored in `SERVING.md`.
    pub help: &'static str,
}

/// Every SLO rule the engine evaluates, in evaluation order.
pub const SLO_RULES: &[SloRule] = &[
    SloRule {
        name: "rate_collapse",
        help: "sources connected but no lines for --slo-stale consecutive intervals",
    },
    SloRule {
        name: "watermark_lag",
        help: "mean admission-to-alert latency over the interval above --slo-max-lag-ms",
    },
    SloRule {
        name: "subscriber_eviction",
        help: "more than --slo-max-evictions slow subscribers evicted in the interval",
    },
    SloRule {
        name: "decode_errors",
        help: "filtered+malformed ratio over the interval above --slo-error-ratio",
    },
];

/// One breaching rule in one evaluated interval.
#[derive(Debug, Clone)]
pub struct Breach {
    /// Which [`SLO_RULES`] row breached.
    pub rule: &'static str,
    /// Human-readable specifics (`rule: figures vs bound`).
    pub detail: String,
}

/// What one [`HealthEngine::evaluate`] call concluded.
#[derive(Debug)]
pub struct Evaluation {
    /// The state after this interval.
    pub state: HealthState,
    /// Every rule that breached (empty when ok).
    pub breaches: Vec<Breach>,
    /// The `{"type":"ops",...}` wire line to broadcast — present only
    /// when the state *changed*.
    pub ops_alert: Option<String>,
}

/// Judges consecutive registry samples against [`SloThresholds`]. Owned
/// by the serve driver; everything here is plain single-threaded state.
#[derive(Debug)]
pub struct HealthEngine {
    slo: SloThresholds,
    state: HealthState,
    breach_streak: u32,
    silent_intervals: u32,
}

impl HealthEngine {
    /// An engine starting in the ok state.
    #[must_use]
    pub fn new(slo: SloThresholds) -> Self {
        Self {
            slo,
            state: HealthState::Ok,
            breach_streak: 0,
            silent_intervals: 0,
        }
    }

    /// The state after the most recent evaluation.
    #[must_use]
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Judges the interval between two consecutive samples, updates the
    /// `serve_health_state` / `serve_health_transitions_total` metrics,
    /// and flight-records any transition.
    pub fn evaluate(&mut self, prev: &Sample, cur: &Sample) -> Evaluation {
        let breaches = self.check_rules(prev, cur);
        if breaches.is_empty() {
            self.breach_streak = 0;
        } else {
            self.breach_streak = self.breach_streak.saturating_add(1);
        }
        let next = if self.breach_streak == 0 {
            HealthState::Ok
        } else if self.breach_streak >= self.slo.critical_after {
            HealthState::Critical
        } else {
            HealthState::Degraded
        };
        let prev_state = self.state;
        self.state = next;
        OBS_STATE.set(next.as_gauge());
        let ops_alert = (next != prev_state).then(|| {
            OBS_TRANSITIONS.inc();
            let line = ops_alert_line(cur.at_ns, prev_state, next, &breaches);
            let flight_line = line.clone();
            flight::record(FlightKind::Note, move || {
                format!("health {} -> {}: {flight_line}", prev_state.as_str(), next.as_str())
            });
            line
        });
        Evaluation {
            state: next,
            breaches,
            ops_alert,
        }
    }

    fn check_rules(&mut self, prev: &Sample, cur: &Sample) -> Vec<Breach> {
        let mut breaches = Vec::new();
        let p = &prev.snapshot;
        let c = &cur.snapshot;
        let delta = |name: &str| counter_delta(p.counter(name), c.counter(name));

        // rate_collapse: a half-open feed — connections alive, data dead.
        let connected = c.gauge(names::SERVE_SOURCES_CONNECTED);
        let lines = delta(names::SERVE_SENTENCES);
        if connected > 0 && lines == 0 {
            self.silent_intervals = self.silent_intervals.saturating_add(1);
        } else {
            self.silent_intervals = 0;
        }
        if self.silent_intervals >= self.slo.stale_intervals {
            breaches.push(Breach {
                rule: "rate_collapse",
                detail: format!(
                    "rate_collapse: {connected} source(s) connected but no lines for {} intervals",
                    self.silent_intervals
                ),
            });
        }

        // watermark_lag: interval-mean end-to-end latency.
        if let (Some(ph), Some(ch)) = (
            p.histogram(names::SERVE_E2E_LATENCY_NS),
            c.histogram(names::SERVE_E2E_LATENCY_NS),
        ) {
            let count = counter_delta(ph.count, ch.count);
            let sum = counter_delta(ph.sum, ch.sum);
            if let Some(mean_ms) = sum.checked_div(count).map(|ns| ns / 1_000_000) {
                if mean_ms > self.slo.max_lag_ms {
                    breaches.push(Breach {
                        rule: "watermark_lag",
                        detail: format!(
                            "watermark_lag: mean end-to-end latency {mean_ms} ms > {} ms",
                            self.slo.max_lag_ms
                        ),
                    });
                }
            }
        }

        // subscriber_eviction: slow consumers thrown off the hub.
        let evictions = delta(names::SERVE_SLOW_EVICTIONS);
        if evictions > self.slo.max_evictions {
            breaches.push(Breach {
                rule: "subscriber_eviction",
                detail: format!(
                    "subscriber_eviction: {evictions} eviction(s) this interval > {}",
                    self.slo.max_evictions
                ),
            });
        }

        // decode_errors: the feed is up but mostly garbage.
        let errors = delta(names::SERVE_FILTERED_LINES)
            + delta(names::AIS_MALFORMED)
            + delta(names::AIS_BAD_CHECKSUM);
        if lines >= MIN_ERROR_VOLUME {
            #[allow(clippy::cast_precision_loss)]
            let ratio = errors as f64 / lines as f64;
            if ratio > self.slo.error_ratio {
                breaches.push(Breach {
                    rule: "decode_errors",
                    detail: format!(
                        "decode_errors: {errors}/{lines} lines rejected ({ratio:.2} > {:.2})",
                        self.slo.error_ratio
                    ),
                });
            }
        }
        breaches
    }
}

/// Renders the `{"type":"ops",...}` wire line for one state transition.
/// Details are plain ASCII by construction; quotes/backslashes are
/// escaped anyway so the line is always valid JSON.
fn ops_alert_line(
    at_ns: u64,
    prev: HealthState,
    next: HealthState,
    breaches: &[Breach],
) -> String {
    let rules: Vec<String> = breaches
        .iter()
        .map(|b| format!("\"{}\"", b.rule))
        .collect();
    let detail = if breaches.is_empty() {
        "recovered".to_string()
    } else {
        breaches
            .iter()
            .map(|b| b.detail.as_str())
            .collect::<Vec<_>>()
            .join("; ")
    };
    format!(
        "{{\"type\":\"ops\",\"at_ns\":{at_ns},\"state\":\"{}\",\"prev\":\"{}\",\
         \"rules\":[{}],\"detail\":\"{}\"}}",
        next.as_str(),
        prev.as_str(),
        rules.join(","),
        json_escape(&detail),
    )
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push(' '),
            c => out.push(c),
        }
    }
    out
}

/// Telemetry shared between the serve driver (writer) and the HTTP layer
/// (readers): the sample ring behind `/metrics/history` and the health
/// verdict behind `/healthz` and `/dashboard`.
#[derive(Debug)]
pub struct ServeTelemetry {
    ring: SampleRing,
    state: AtomicU8,
    detail: Mutex<String>,
}

impl ServeTelemetry {
    /// Telemetry with a ring retaining the newest `history_capacity`
    /// samples.
    #[must_use]
    pub fn new(history_capacity: usize) -> Self {
        Self {
            ring: SampleRing::new(history_capacity),
            state: AtomicU8::new(HealthState::Ok.as_gauge() as u8),
            detail: Mutex::new(String::new()),
        }
    }

    /// The time-series ring the driver samples into.
    #[must_use]
    pub fn ring(&self) -> &SampleRing {
        &self.ring
    }

    /// The current health state.
    #[must_use]
    pub fn state(&self) -> HealthState {
        HealthState::from_u8(self.state.load(Ordering::Relaxed))
    }

    /// Publishes the verdict of one evaluation (driver side).
    pub fn set_state(&self, state: HealthState, breaches: &[Breach]) {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        self.state.store(state.as_gauge() as u8, Ordering::Relaxed);
        let mut detail = self.detail.lock();
        detail.clear();
        for b in breaches {
            detail.push_str(&b.detail);
            detail.push('\n');
        }
    }

    /// The `/healthz` body: the state on the first line, one detail line
    /// per breaching rule after it.
    #[must_use]
    pub fn healthz_body(&self) -> String {
        let mut body = String::from(self.state().as_str());
        body.push('\n');
        body.push_str(&self.detail.lock());
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maritime_obs::MetricsRegistry;
    use std::sync::Arc;

    /// A sample whose snapshot reads the given serve counters.
    fn sample(
        seq: u64,
        lines: u64,
        connected: i64,
        evictions: u64,
        filtered: u64,
    ) -> Arc<Sample> {
        let reg = MetricsRegistry::with_catalog(names::CATALOG);
        reg.counter(names::SERVE_SENTENCES).add(lines);
        reg.gauge(names::SERVE_SOURCES_CONNECTED).set(connected);
        reg.counter(names::SERVE_SLOW_EVICTIONS).add(evictions);
        reg.counter(names::SERVE_FILTERED_LINES).add(filtered);
        Arc::new(Sample {
            seq,
            at_ns: seq * 1_000_000_000,
            snapshot: reg.snapshot(),
        })
    }

    #[test]
    fn silent_sources_degrade_then_recover() {
        let mut engine = HealthEngine::new(SloThresholds {
            stale_intervals: 2,
            ..SloThresholds::default()
        });
        // Interval 1: lines flowing — ok.
        let e = engine.evaluate(&sample(0, 0, 1, 0, 0), &sample(1, 50, 1, 0, 0));
        assert_eq!(e.state, HealthState::Ok);
        assert!(e.ops_alert.is_none());
        // Intervals 2-3: connected but silent; breaches on the 2nd.
        let e = engine.evaluate(&sample(1, 50, 1, 0, 0), &sample(2, 50, 1, 0, 0));
        assert_eq!(e.state, HealthState::Ok, "one silent interval tolerated");
        let e = engine.evaluate(&sample(2, 50, 1, 0, 0), &sample(3, 50, 1, 0, 0));
        assert_eq!(e.state, HealthState::Degraded);
        let alert = e.ops_alert.expect("transition broadcasts an ops alert");
        assert!(alert.starts_with("{\"type\":\"ops\""), "{alert}");
        assert!(alert.contains("\"state\":\"degraded\""), "{alert}");
        assert!(alert.contains("\"rules\":[\"rate_collapse\"]"), "{alert}");
        // Traffic resumes: immediate recovery, with a recovery alert.
        let e = engine.evaluate(&sample(3, 50, 1, 0, 0), &sample(4, 90, 1, 0, 0));
        assert_eq!(e.state, HealthState::Ok);
        let alert = e.ops_alert.expect("recovery is a transition too");
        assert!(alert.contains("\"state\":\"ok\"") && alert.contains("\"prev\":\"degraded\""));
        assert!(alert.contains("recovered"));
    }

    #[test]
    fn disconnected_quiet_server_stays_ok() {
        // No sources connected: silence is idleness, not collapse.
        let mut engine = HealthEngine::new(SloThresholds {
            stale_intervals: 1,
            ..SloThresholds::default()
        });
        for seq in 1..6 {
            let e = engine.evaluate(
                &sample(seq - 1, 100, 0, 0, 0),
                &sample(seq, 100, 0, 0, 0),
            );
            assert_eq!(e.state, HealthState::Ok);
        }
    }

    #[test]
    fn evictions_breach_immediately_and_escalate_to_critical() {
        let mut engine = HealthEngine::new(SloThresholds {
            critical_after: 2,
            ..SloThresholds::default()
        });
        let e = engine.evaluate(&sample(0, 0, 0, 0, 0), &sample(1, 0, 0, 3, 0));
        assert_eq!(e.state, HealthState::Degraded);
        assert_eq!(e.breaches[0].rule, "subscriber_eviction");
        assert_eq!(e.state.http_status(), "200 OK", "degraded still serves");
        let e = engine.evaluate(&sample(1, 0, 0, 3, 0), &sample(2, 0, 0, 9, 0));
        assert_eq!(e.state, HealthState::Critical);
        assert_eq!(e.state.http_status(), "503 Service Unavailable");
        let alert = e.ops_alert.expect("degraded -> critical is a transition");
        assert!(alert.contains("\"prev\":\"degraded\""));
    }

    #[test]
    fn decode_error_ratio_needs_volume() {
        let mut engine = HealthEngine::new(SloThresholds::default());
        // 2 lines, both filtered: below MIN_ERROR_VOLUME, not judged.
        let e = engine.evaluate(&sample(0, 0, 0, 0, 0), &sample(1, 2, 0, 0, 2));
        assert_eq!(e.state, HealthState::Ok);
        // 20 lines, 18 filtered: judged and breaching.
        let e = engine.evaluate(&sample(1, 2, 0, 0, 2), &sample(2, 22, 0, 0, 20));
        assert_eq!(e.state, HealthState::Degraded);
        assert_eq!(e.breaches[0].rule, "decode_errors");
    }

    #[test]
    fn telemetry_publishes_state_and_detail() {
        let telemetry = ServeTelemetry::new(8);
        assert_eq!(telemetry.state(), HealthState::Ok);
        assert_eq!(telemetry.healthz_body(), "ok\n");
        telemetry.set_state(
            HealthState::Degraded,
            &[Breach {
                rule: "rate_collapse",
                detail: "rate_collapse: 1 source(s) silent".to_string(),
            }],
        );
        assert_eq!(telemetry.state(), HealthState::Degraded);
        let body = telemetry.healthz_body();
        assert!(body.starts_with("degraded\n"), "{body}");
        assert!(body.contains("rate_collapse"), "{body}");
        telemetry.set_state(HealthState::Ok, &[]);
        assert_eq!(telemetry.healthz_body(), "ok\n");
    }

    #[test]
    fn rule_table_matches_rule_names() {
        // The declarative table is what SERVING.md documents; the engine
        // must only ever emit rules from it.
        let names: Vec<&str> = SLO_RULES.iter().map(|r| r.name).collect();
        assert_eq!(
            names,
            ["rate_collapse", "watermark_lag", "subscriber_eviction", "decode_errors"]
        );
    }
}
