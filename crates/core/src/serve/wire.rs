//! The CE-out wire protocol: line-delimited JSON events and SSE framing.
//!
//! One encoder renders recognition results for *both* the live server and
//! the batch pipeline, so "serve output equals batch output" is a
//! byte-equality test, not a semantic argument. The protocol is documented
//! (and golden-pinned) in `SERVING.md`; change it there and here together
//! or the doc tests fail.
//!
//! Three event types flow to subscribers, each one JSON object per line:
//!
//! * `alert` — an instantaneous alert, emitted once per distinct
//!   `(time, kind, vessel, area)` no matter how many overlapping
//!   recognition windows re-derive it.
//! * `query` — one per recognition query, carrying the canonical
//!   recognition summary (the same rendering the differential and chaos
//!   harnesses compare on).
//! * `flushed` — the end-of-stream marker emitted after a `#flush`
//!   control line has drained the pipeline.

use std::collections::BTreeSet;

use maritime_cer::{AlertKind, RecognitionSummary};

use crate::pipeline::SlideOutcome;

/// Control line a source sends to drain the admission buffer and run the
/// final recognition pass (end of stream).
pub const CONTROL_FLUSH: &str = "#flush";

/// Control line a source sends to stop the server.
pub const CONTROL_SHUTDOWN: &str = "#shutdown";

/// Stable wire name of an alert kind.
#[must_use]
pub fn alert_kind_name(kind: AlertKind) -> &'static str {
    match kind {
        AlertKind::IllegalShipping => "illegal_shipping",
        AlertKind::DangerousShipping => "dangerous_shipping",
    }
}

/// Renders recognition results as wire events, de-duplicating alerts
/// across overlapping recognition windows. Deterministic: the same
/// sequence of [`SlideOutcome`]s yields the same bytes, which is the
/// contract the serve-vs-batch differential tests pin.
#[derive(Debug, Default)]
pub struct WireEncoder {
    /// Alerts already emitted, keyed `(at, kind, mmsi, area)`.
    seen: BTreeSet<(i64, u8, u32, u32)>,
}

impl WireEncoder {
    /// A fresh encoder with no alerts emitted yet.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Events for one pipeline slide: nothing when recognition did not
    /// run, otherwise any *new* `alert` events (in summary order) followed
    /// by the `query` event.
    pub fn encode_outcome(&mut self, outcome: &SlideOutcome) -> Vec<String> {
        outcome
            .recognition
            .as_ref()
            .map_or_else(Vec::new, |summary| self.encode_summary(summary))
    }

    /// Events for one recognition summary; see [`Self::encode_outcome`].
    pub fn encode_summary(&mut self, summary: &RecognitionSummary) -> Vec<String> {
        let mut out = Vec::new();
        for (at, alert) in &summary.alerts {
            let key = (
                at.as_secs(),
                alert.kind as u8,
                alert.vessel.0,
                alert.area.0,
            );
            if self.seen.insert(key) {
                out.push(format!(
                    "{{\"type\":\"alert\",\"at\":{},\"kind\":\"{}\",\"mmsi\":{},\"area\":{}}}",
                    at.as_secs(),
                    alert_kind_name(alert.kind),
                    alert.vessel.0,
                    alert.area.0,
                ));
            }
        }
        out.push(format!(
            "{{\"type\":\"query\",\"at\":{},\"ce_count\":{},\"alerts\":{},\"summary\":{}}}",
            summary.query_time.as_secs(),
            summary.ce_count,
            summary.alerts.len(),
            summary.canonical_json(),
        ));
        out
    }

    /// The end-of-stream marker, emitted once the `#flush` control line
    /// has drained the pipeline through its final recognition pass.
    #[must_use]
    pub fn flushed_marker(at_secs: i64) -> String {
        format!("{{\"type\":\"flushed\",\"at\":{at_secs}}}")
    }
}

/// The `type` field of a wire event line, used as the SSE event name.
#[must_use]
pub fn event_type(line: &str) -> &str {
    line.strip_prefix("{\"type\":\"")
        .and_then(|rest| rest.split('"').next())
        .unwrap_or("message")
}

/// Wraps one wire event line as a Server-Sent Events frame: the event
/// name is the wire `type`, the data is the JSON line verbatim.
#[must_use]
pub fn sse_frame(line: &str) -> String {
    format!("event: {}\ndata: {line}\n\n", event_type(line))
}

#[cfg(test)]
mod tests {
    use super::*;
    use maritime_cer::Alert;
    use maritime_geo::AreaId;
    use maritime_stream::Timestamp;

    fn summary_with_alert(q: i64, at: i64) -> RecognitionSummary {
        RecognitionSummary {
            query_time: Timestamp(q),
            suspicious: Vec::new(),
            illegal_fishing: Vec::new(),
            alerts: vec![(
                Timestamp(at),
                Alert {
                    kind: AlertKind::IllegalShipping,
                    vessel: maritime_ais::Mmsi(237_000_001),
                    area: AreaId(7),
                },
            )],
            ce_count: 1,
            working_memory: 42,
        }
    }

    #[test]
    fn alerts_emit_once_across_overlapping_windows() {
        let mut enc = WireEncoder::new();
        let first = enc.encode_summary(&summary_with_alert(7200, 5400));
        assert_eq!(first.len(), 2, "alert + query");
        assert!(first[0].contains("\"type\":\"alert\""));
        assert!(first[1].contains("\"type\":\"query\""));
        // The next window re-derives the same alert: only the query event.
        let second = enc.encode_summary(&summary_with_alert(9000, 5400));
        assert_eq!(second.len(), 1);
        assert!(second[0].contains("\"type\":\"query\""));
    }

    #[test]
    fn every_event_is_one_json_object_per_line() {
        let mut enc = WireEncoder::new();
        for line in enc.encode_summary(&summary_with_alert(7200, 5400)) {
            let v: serde_json::Value = serde_json::from_str(&line).expect("valid JSON");
            assert!(v.get("type").is_some());
            assert!(!line.contains('\n'));
        }
    }

    #[test]
    fn sse_frames_carry_the_wire_type_as_event_name() {
        let mut enc = WireEncoder::new();
        let lines = enc.encode_summary(&summary_with_alert(7200, 5400));
        let frame = sse_frame(&lines[0]);
        assert!(frame.starts_with("event: alert\ndata: {\"type\":\"alert\""));
        assert!(frame.ends_with("\n\n"));
        assert_eq!(event_type(&WireEncoder::flushed_marker(3600)), "flushed");
    }
}
