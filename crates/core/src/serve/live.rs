//! The socket-free core of `surveil serve`: raw line in, wire events out.
//!
//! [`LiveIngest`] is the whole serving data path minus the network —
//! per-source filter/dedup ([`SourceMux`]), bounded-disorder repair
//! ([`AdmissionBuffer`]), decode ([`DataScanner::scan_from`]), and a
//! [`LiveBatcher`] that mirrors the batch replayer's
//! [`SlideBatches`](maritime_stream::SlideBatches) semantics exactly, so
//! a live run and a batch run over the same sentences produce
//! byte-identical wire events. The listener layer owns the sockets and
//! calls [`LiveIngest::push_line`]; the bench's sustained-ingest leg and
//! the differential tests call it directly.
//!
//! # Watermark-driven sliding
//!
//! Batch mode knows the stream is over when the file ends; a live feed
//! never ends. Here the window slides when the *event-time watermark*
//! advances: the admission buffer releases tuples once they are `skew`
//! old relative to the newest arrival, and each released tuple whose
//! timestamp crosses the next query boundary triggers the pending slides
//! (including empty ones across quiet gaps — the window keeps pace with
//! reported time, §5 of the paper). End of stream becomes an explicit
//! `#flush` control line: drain the admission buffer, run the final
//! recognition pass, emit the `flushed` marker.

use std::time::Instant;

use maritime_ais::{DataScanner, PositionTuple, ScanStats};
use maritime_cer::{AlertKind, RecognitionSummary, VesselInfo};
use maritime_geo::Area;
use maritime_obs::{names, LazyCounter, LazyHistogram, MetricsRegistry};
use maritime_stream::{
    AdmissionBuffer, AdmissionStats, Duration, SourceId, SourceMux, SourceStats, SourceVerdict,
    Timestamp, WindowSpec,
};

use crate::config::SurveillanceConfig;
use crate::pipeline::{PhaseTimings, SlideOutcome, SurveillancePipeline};
use crate::serve::wire::{alert_kind_name, WireEncoder};

static OBS_BATCHES: LazyCounter = LazyCounter::new(names::STREAM_BATCHES);
static OBS_SENTENCES: LazyCounter = LazyCounter::new(names::SERVE_SENTENCES);
static OBS_FILTERED: LazyCounter = LazyCounter::new(names::SERVE_FILTERED_LINES);
static OBS_DEDUP: LazyCounter = LazyCounter::new(names::SERVE_DEDUP_DROPS);
static OBS_FLUSHES: LazyCounter = LazyCounter::new(names::SERVE_FLUSHES);
static OBS_E2E: LazyHistogram = LazyHistogram::new(names::SERVE_E2E_LATENCY_NS);

/// Re-creates [`maritime_stream::SlideBatches`] batching for a push-driven
/// stream: tuples arrive one at a time, and every crossing of a query
/// boundary `Qᵢ = origin + i·β` closes the batch `(Qᵢ₋₁, Qᵢ]` —
/// including empty batches across gaps. Feeding the same time-ordered
/// tuples through this and through `SlideBatches` yields the same
/// `(query_time, items)` sequence; a unit test below locks that down.
#[derive(Debug)]
pub struct LiveBatcher {
    next_q: Timestamp,
    slide: Duration,
    acc: Vec<PositionTuple>,
}

impl LiveBatcher {
    /// Starts batching from `origin`: the first batch closes at
    /// `origin + slide`.
    #[must_use]
    pub fn new(spec: WindowSpec, origin: Timestamp) -> Self {
        Self {
            next_q: origin + spec.slide,
            slide: spec.slide,
            acc: Vec::new(),
        }
    }

    /// Accepts the next tuple (time-ordered), invoking `slide(q, batch)`
    /// for every query boundary the tuple's timestamp crosses.
    pub fn push(
        &mut self,
        tuple: PositionTuple,
        mut slide: impl FnMut(Timestamp, Vec<PositionTuple>),
    ) {
        while tuple.timestamp > self.next_q {
            let batch = std::mem::take(&mut self.acc);
            OBS_BATCHES.inc();
            slide(self.next_q, batch);
            self.next_q = self.next_q + self.slide;
        }
        self.acc.push(tuple);
    }

    /// Ends the stream: closes the final (possibly empty) batch at the
    /// current boundary and returns that boundary — the query time the
    /// pipeline's `finish` must run at, exactly as batch mode's replayer
    /// does.
    pub fn finish(&mut self, mut slide: impl FnMut(Timestamp, Vec<PositionTuple>)) -> Timestamp {
        let batch = std::mem::take(&mut self.acc);
        OBS_BATCHES.inc();
        slide(self.next_q, batch);
        self.next_q
    }

    /// The next query boundary to close.
    #[must_use]
    pub fn next_query(&self) -> Timestamp {
        self.next_q
    }
}

/// Counters describing what the live ingest path has seen so far.
#[derive(Debug, Clone, Copy, Default)]
pub struct IngestStats {
    /// Raw lines pushed (pre-filter).
    pub lines: u64,
    /// Lines past filter + dedup, handed to admission/decode.
    pub accepted: u64,
    /// Lines dropped by the syntactic filter.
    pub filtered: u64,
    /// Lines dropped as cross-source duplicates.
    pub duplicates: u64,
    /// Window slides executed.
    pub slides: u64,
    /// Recognition queries answered.
    pub queries: u64,
    /// Complex events recognized (intervals + alerts), total.
    pub ce_total: u64,
}

/// The complete live serving data path, sockets excluded. See the module
/// docs for the layer diagram and `SERVING.md` for operator semantics.
pub struct LiveIngest {
    mux: SourceMux,
    /// Buffered `(line, source, admission stamp ns)` triples; the stamp
    /// is wall-clock nanoseconds since `origin`, carried through the
    /// buffer so end-to-end latency can be measured at alert emission.
    admission: AdmissionBuffer<(String, u32, u64)>,
    scanner: DataScanner,
    batcher: LiveBatcher,
    pipeline: SurveillancePipeline,
    encoder: WireEncoder,
    stats: IngestStats,
    last_t: Timestamp,
    flushed: bool,
    /// Wall-clock origin for admission stamps.
    origin: Instant,
    /// Oldest admission stamp among tuples fed to the batcher since the
    /// last recognition query — the numerator of `serve_e2e_latency_ns`.
    pending_oldest: Option<u64>,
}

impl LiveIngest {
    /// Builds the path: `skew` bounds admission disorder, `dedup_window`
    /// suppresses cross-source duplicate sentences (zero disables).
    ///
    /// # Errors
    /// The configuration error, if `config` fails validation.
    pub fn new(
        config: &SurveillanceConfig,
        vessels: Vec<VesselInfo>,
        areas: Vec<Area>,
        skew: Duration,
        dedup_window: Duration,
    ) -> Result<Self, crate::config::ConfigError> {
        let pipeline = SurveillancePipeline::new(config, vessels, areas)?;
        Ok(Self {
            mux: SourceMux::new(dedup_window),
            admission: AdmissionBuffer::new(skew),
            scanner: DataScanner::new(),
            batcher: LiveBatcher::new(config.tracking_window, Timestamp::ZERO),
            pipeline,
            encoder: WireEncoder::new(),
            stats: IngestStats::default(),
            last_t: Timestamp::ZERO,
            flushed: false,
            origin: Instant::now(),
            pending_oldest: None,
        })
    }

    /// Feeds one raw line from `source` with event time `t`; returns the
    /// wire events (possibly none) its processing produced. Lines arriving
    /// after a flush are counted but dropped — the stream has ended.
    pub fn push_line(&mut self, source: SourceId, t: Timestamp, line: &str) -> Vec<String> {
        self.stats.lines += 1;
        OBS_SENTENCES.inc();
        if self.flushed {
            self.stats.filtered += 1;
            OBS_FILTERED.inc();
            return Vec::new();
        }
        match self.mux.admit(source, t, line) {
            SourceVerdict::Filtered => {
                self.stats.filtered += 1;
                OBS_FILTERED.inc();
                return Vec::new();
            }
            SourceVerdict::Duplicate => {
                self.stats.duplicates += 1;
                OBS_DEDUP.inc();
                return Vec::new();
            }
            SourceVerdict::Accepted => {}
        }
        self.stats.accepted += 1;
        self.last_t = self.last_t.max(t);
        let stamp = self.origin.elapsed().as_nanos() as u64;
        let released = self.admission.push(t, (line.to_string(), source.0, stamp));
        self.process_released(released)
    }

    /// Drains everything still buffered — admission, defragmenter, the
    /// open batch — runs the pipeline's final recognition pass, and
    /// returns its events plus the `flushed` marker. Idempotent: a second
    /// flush returns nothing.
    pub fn flush(&mut self) -> Vec<String> {
        if self.flushed {
            return Vec::new();
        }
        self.flushed = true;
        OBS_FLUSHES.inc();
        let released = self.admission.flush();
        let mut events = self.process_released(released);
        self.scanner.finish(self.last_t);
        let mut outcomes: Vec<SlideOutcome> = Vec::new();
        let pipeline = &mut self.pipeline;
        let final_q = self.batcher.finish(|q, batch| {
            outcomes.push(pipeline.slide(q, &batch));
        });
        outcomes.push(pipeline.finish(final_q));
        for outcome in &outcomes {
            self.note_outcome(outcome);
            events.extend(self.encoder.encode_outcome(outcome));
        }
        events.push(WireEncoder::flushed_marker(final_q.as_secs()));
        events
    }

    fn process_released(&mut self, released: Vec<(Timestamp, (String, u32, u64))>) -> Vec<String> {
        let mut events = Vec::new();
        for (t, (line, source, stamp)) in released {
            let Some(tuple) = self.scanner.scan_from(source, &line, t) else {
                continue;
            };
            self.pending_oldest = Some(self.pending_oldest.map_or(stamp, |s| s.min(stamp)));
            let pipeline = &mut self.pipeline;
            let mut outcomes: Vec<SlideOutcome> = Vec::new();
            self.batcher.push(tuple, |q, batch| {
                outcomes.push(pipeline.slide(q, &batch));
            });
            for outcome in &outcomes {
                self.note_outcome(outcome);
                events.extend(self.encoder.encode_outcome(outcome));
            }
        }
        events
    }

    fn note_outcome(&mut self, outcome: &SlideOutcome) {
        self.stats.slides += 1;
        if let Some(summary) = &outcome.recognition {
            self.stats.queries += 1;
            self.stats.ce_total += summary.ce_count as u64;
            note_rules(summary, &outcome.timings);
            // Admission-to-emission latency of the oldest sentence this
            // recognition pass consumed; the stamp set resets at every
            // query so a quiet stretch cannot inflate the next reading.
            if let Some(stamp) = self.pending_oldest.take() {
                let now = self.origin.elapsed().as_nanos() as u64;
                OBS_E2E.record(now.saturating_sub(stamp));
            }
        }
    }

    /// Serializes the live path's recognition state into one framed
    /// checkpoint: the recognizer backend (every band engine plus the
    /// coordinator's vessel/routing state), the defragmenter's in-flight
    /// partial messages (so a checkpoint taken mid-fragment neither drops
    /// nor duplicates the reassembled sentence), the batcher boundary and
    /// its open batch, and the ingest counters. Mobility-tracking window
    /// state is deliberately excluded — it refills from the live stream
    /// within one tracking window, while the recognition window (hours)
    /// resumes exactly.
    #[must_use]
    pub fn checkpoint(&self) -> Vec<u8> {
        use maritime_rtec::Codec;
        let mut w = maritime_rtec::Writer::new();
        for n in [
            self.stats.lines,
            self.stats.accepted,
            self.stats.filtered,
            self.stats.duplicates,
            self.stats.slides,
            self.stats.queries,
            self.stats.ce_total,
        ] {
            w.put_u64(n);
        }
        w.put_i64(self.last_t.as_secs());
        w.put_bool(self.flushed);
        w.put_i64(self.batcher.next_q.as_secs());
        w.put_len(self.batcher.acc.len());
        for tuple in &self.batcher.acc {
            w.put_u32(tuple.mmsi.0);
            w.put_f64(tuple.position.lon);
            w.put_f64(tuple.position.lat);
            w.put_i64(tuple.timestamp.as_secs());
        }
        let pending = self.scanner.export_defrag_pending();
        w.put_len(pending.messages.len());
        for ((source, seq, channel, total), fragments, last_touch) in &pending.messages {
            w.put_u32(*source);
            w.put_u8(*seq);
            w.put_u32(*channel as u32);
            w.put_u8(*total);
            w.put_len(fragments.len());
            for slot in fragments {
                match slot {
                    None => w.put_u8(0),
                    Some((payload, fill)) => {
                        w.put_u8(1);
                        payload.encode(&mut w);
                        w.put_u8(*fill);
                    }
                }
            }
            w.put_u64(*last_touch);
        }
        w.put_u64(pending.clock);
        w.put_u64(pending.evicted_incomplete);
        let recognizer = self.pipeline.checkpoint_recognizer();
        w.put_len(recognizer.len());
        w.put_bytes(&recognizer);
        w.into_frame()
    }

    /// Restores the state captured by [`LiveIngest::checkpoint`] into this
    /// freshly built path; the pipeline configuration, fleet facts and
    /// areas must match the checkpointing server's.
    ///
    /// # Errors
    /// A [`maritime_rtec::CkptError`] when the bytes are truncated,
    /// corrupt, or from a differently configured server.
    pub fn restore_checkpoint(
        &mut self,
        bytes: &[u8],
    ) -> Result<(), maritime_rtec::CkptError> {
        use maritime_rtec::{Codec, CkptError};
        let payload = maritime_rtec::ckpt::unframe(bytes)?;
        let mut r = maritime_rtec::Reader::new(payload);
        let mut stats = IngestStats::default();
        for slot in [
            &mut stats.lines,
            &mut stats.accepted,
            &mut stats.filtered,
            &mut stats.duplicates,
            &mut stats.slides,
            &mut stats.queries,
            &mut stats.ce_total,
        ] {
            *slot = r.take_u64()?;
        }
        let last_t = Timestamp(r.take_i64()?);
        let flushed = r.take_bool()?;
        let next_q = Timestamp(r.take_i64()?);
        let n = r.take_len()?;
        let mut acc = Vec::with_capacity(n);
        for _ in 0..n {
            let mmsi = maritime_ais::Mmsi(r.take_u32()?);
            let lon = r.take_f64()?;
            let lat = r.take_f64()?;
            let t = Timestamp(r.take_i64()?);
            acc.push(PositionTuple {
                mmsi,
                position: maritime_geo::GeoPoint::new(lon, lat),
                timestamp: t,
            });
        }
        let n = r.take_len()?;
        let mut messages = Vec::with_capacity(n);
        for _ in 0..n {
            let source = r.take_u32()?;
            let seq = r.take_u8()?;
            let channel = char::from_u32(r.take_u32()?)
                .ok_or(CkptError::Corrupt("invalid fragment channel"))?;
            let total = r.take_u8()?;
            let slots = r.take_len()?;
            let mut fragments = Vec::with_capacity(slots);
            for _ in 0..slots {
                fragments.push(match r.take_u8()? {
                    0 => None,
                    1 => {
                        let payload = String::decode(&mut r)?;
                        let fill = r.take_u8()?;
                        Some((payload, fill))
                    }
                    _ => return Err(CkptError::Corrupt("invalid fragment slot tag")),
                });
            }
            let last_touch = r.take_u64()?;
            messages.push(((source, seq, channel, total), fragments, last_touch));
        }
        let pending = maritime_ais::PendingFragments {
            messages,
            clock: r.take_u64()?,
            evicted_incomplete: r.take_u64()?,
        };
        let n = r.take_len()?;
        let recognizer = r.take_bytes(n)?;
        self.pipeline.restore_recognizer(recognizer)?;
        r.finish()?;
        self.scanner.restore_defrag_pending(pending);
        self.stats = stats;
        self.last_t = last_t;
        self.flushed = flushed;
        self.batcher.next_q = next_q;
        self.batcher.acc = acc;
        Ok(())
    }

    /// Whether `#flush` has ended the stream.
    #[must_use]
    pub fn flushed(&self) -> bool {
        self.flushed
    }

    /// Live-path counters.
    #[must_use]
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// Decode-layer counters.
    #[must_use]
    pub fn scan_stats(&self) -> ScanStats {
        self.scanner.stats()
    }

    /// Admission-layer counters.
    #[must_use]
    pub fn admission_stats(&self) -> AdmissionStats {
        self.admission.stats()
    }

    /// Per-source mux counters, for the `/sources` endpoint.
    pub fn sources(&self) -> impl Iterator<Item = (SourceId, &SourceStats)> {
        self.mux.sources()
    }
}

/// Mirrors one recognition summary into the per-rule labeled families:
/// `cer_rule_recognized_total{rule=...}` counts what each CE rule
/// produced, and `cer_rule_latency_ns{rule=...}` attributes the slide's
/// recognition wall time to every rule that fired. Runs once per
/// recognition query, never per sentence.
fn note_rules(summary: &RecognitionSummary, timings: &PhaseTimings) {
    let registry = MetricsRegistry::global();
    let mut fired: Vec<&'static str> = Vec::new();
    let suspicious: u64 = summary.suspicious.iter().map(|(_, il)| il.len() as u64).sum();
    if suspicious > 0 {
        registry
            .labeled_counter(&names::CER_RULE_RECOGNIZED, "suspicious")
            .add(suspicious);
        fired.push("suspicious");
    }
    let fishing: u64 = summary
        .illegal_fishing
        .iter()
        .map(|(_, il)| il.len() as u64)
        .sum();
    if fishing > 0 {
        registry
            .labeled_counter(&names::CER_RULE_RECOGNIZED, "illegal_fishing")
            .add(fishing);
        fired.push("illegal_fishing");
    }
    for kind in [AlertKind::IllegalShipping, AlertKind::DangerousShipping] {
        let n = summary.alerts.iter().filter(|(_, a)| a.kind == kind).count() as u64;
        if n > 0 {
            let rule = alert_kind_name(kind);
            registry.labeled_counter(&names::CER_RULE_RECOGNIZED, rule).add(n);
            fired.push(rule);
        }
    }
    let recognition_ns = timings.recognition.as_nanos() as u64;
    for rule in fired {
        registry
            .labeled_histogram(&names::CER_RULE_LATENCY_NS, rule)
            .record(recognition_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maritime_stream::SlideBatches;

    fn tuple_at(t: i64) -> PositionTuple {
        PositionTuple {
            mmsi: maritime_ais::Mmsi(237_000_001),
            position: maritime_geo::GeoPoint::new(24.0, 37.0),
            timestamp: Timestamp(t),
        }
    }

    fn spec(range_s: i64, slide_s: i64) -> WindowSpec {
        WindowSpec::new(Duration::secs(range_s), Duration::secs(slide_s)).unwrap()
    }

    /// The push-driven batcher must reproduce the pull-driven replayer's
    /// batch sequence on the same stream — boundaries, empty gap batches,
    /// final batch, and the finish query time.
    #[test]
    fn live_batcher_matches_slide_batches() {
        let times: &[i64] = &[1, 9, 10, 11, 35, 36, 70, 95];
        let spec = spec(30, 10);

        let replayed: Vec<(i64, Vec<i64>)> = SlideBatches::new(
            times.iter().map(|&t| (Timestamp(t), tuple_at(t))),
            spec,
            Timestamp::ZERO,
        )
        .map(|b| {
            (
                b.query_time.as_secs(),
                b.items.iter().map(|(t, _)| t.as_secs()).collect(),
            )
        })
        .collect();

        let mut live: Vec<(i64, Vec<i64>)> = Vec::new();
        let mut batcher = LiveBatcher::new(spec, Timestamp::ZERO);
        for &t in times {
            batcher.push(tuple_at(t), |q, batch| {
                live.push((
                    q.as_secs(),
                    batch.iter().map(|p| p.timestamp.as_secs()).collect(),
                ));
            });
        }
        let final_q = batcher.finish(|q, batch| {
            live.push((
                q.as_secs(),
                batch.iter().map(|p| p.timestamp.as_secs()).collect(),
            ));
        });

        assert_eq!(live, replayed);
        assert_eq!(
            final_q.as_secs(),
            replayed.last().unwrap().0,
            "finish runs at the final batch's query time, like batch mode"
        );
    }

    #[test]
    fn empty_stream_still_emits_one_batch() {
        let mut batcher = LiveBatcher::new(spec(30, 10), Timestamp::ZERO);
        let mut batches = 0;
        let q = batcher.finish(|_, b| {
            assert!(b.is_empty());
            batches += 1;
        });
        assert_eq!(batches, 1);
        assert_eq!(q, Timestamp(10));
    }
}
