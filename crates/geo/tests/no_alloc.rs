//! Proof that the per-event spatial lookup path allocates nothing.
//!
//! `GridIndex::candidates` used to clone the cell's candidate `Vec` on
//! every lookup — one heap allocation per critical movement event per
//! query. It now returns a borrowed slice; this test pins that down with
//! a counting global allocator so the regression cannot sneak back in.
//!
//! This lives in its own integration-test binary because it installs a
//! `#[global_allocator]`, which must not leak into other test binaries.

use std::alloc::{GlobalAlloc, Layout, System};

use maritime_geo::areas::{Area, AreaId, AreaKind};
use maritime_geo::grid::GridIndex;
use maritime_geo::point::GeoPoint;
use maritime_geo::polygon::Polygon;

struct CountingAlloc;

// Per-thread counter: the libtest harness thread allocates concurrently
// with the test thread, so a process-global count would be flaky. A
// const-initialized `Cell<usize>` has no destructor and no lazy init, so
// touching it from inside the allocator cannot recurse.
std::thread_local! {
    static THREAD_ALLOCATIONS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let before = THREAD_ALLOCATIONS.with(std::cell::Cell::get);
    let result = f();
    (THREAD_ALLOCATIONS.with(std::cell::Cell::get) - before, result)
}

fn sample_index() -> GridIndex {
    let areas = vec![
        Area::new(
            AreaId(0),
            "west",
            AreaKind::Protected,
            Polygon::rectangle(GeoPoint::new(23.0, 37.0), GeoPoint::new(23.5, 37.5)),
        ),
        Area::new(
            AreaId(1),
            "east",
            AreaKind::ForbiddenFishing,
            Polygon::rectangle(GeoPoint::new(25.0, 38.0), GeoPoint::new(25.5, 38.5)),
        ),
    ];
    GridIndex::build(areas, 0.25, 5_000.0)
}

#[test]
fn candidate_lookup_allocates_nothing() {
    let idx = sample_index();
    // Points inside a populated cell, in an empty cell, and outside the
    // extent — every branch of the lookup must be allocation-free.
    let probes = [
        GeoPoint::new(23.2, 37.2),
        GeoPoint::new(24.2, 37.7),
        GeoPoint::new(0.0, 0.0),
    ];
    // Warm up (lazy statics, test-harness buffers) before counting.
    for p in probes {
        let _ = idx.candidates(p).len();
    }
    let (allocs, total) = allocations(|| {
        let mut total = 0usize;
        for _ in 0..1_000 {
            for p in probes {
                total += idx.candidates(p).len();
                total += idx.close_areas(p).count();
                total += idx.containing_areas(p).count();
            }
        }
        total
    });
    assert!(total > 0, "probe set must exercise a populated cell");
    assert_eq!(allocs, 0, "per-lookup path must not touch the heap");
}
