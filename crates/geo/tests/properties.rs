//! Property-based tests for the geospatial substrate.

use maritime_geo::{
    angle_diff_deg, destination, haversine_distance_m, initial_bearing_deg, signed_angle_diff_deg,
    BoundingBox, GeoPoint, Polygon,
};
use proptest::prelude::*;

/// Arbitrary point away from the poles (bearing math degenerates at ±90°,
/// and the monitored domain is the Mediterranean anyway).
fn arb_point() -> impl Strategy<Value = GeoPoint> {
    (-179.0f64..179.0, -80.0f64..80.0).prop_map(|(lon, lat)| GeoPoint::new(lon, lat))
}

fn arb_aegean_point() -> impl Strategy<Value = GeoPoint> {
    (20.0f64..28.0, 35.0f64..41.0).prop_map(|(lon, lat)| GeoPoint::new(lon, lat))
}

proptest! {
    #[test]
    fn haversine_is_symmetric_and_nonnegative(a in arb_point(), b in arb_point()) {
        let d1 = haversine_distance_m(a, b);
        let d2 = haversine_distance_m(b, a);
        prop_assert!(d1 >= 0.0);
        prop_assert!((d1 - d2).abs() < 1e-6);
    }

    #[test]
    fn haversine_identity(a in arb_point()) {
        prop_assert_eq!(haversine_distance_m(a, a), 0.0);
    }

    #[test]
    fn haversine_triangle_inequality(
        a in arb_point(), b in arb_point(), c in arb_point()
    ) {
        let ab = haversine_distance_m(a, b);
        let bc = haversine_distance_m(b, c);
        let ac = haversine_distance_m(a, c);
        // Great-circle distances satisfy the triangle inequality up to
        // floating-point slack.
        prop_assert!(ac <= ab + bc + 1e-6);
    }

    #[test]
    fn destination_travels_requested_distance(
        start in arb_point(),
        bearing in 0.0f64..360.0,
        dist in 1.0f64..200_000.0,
    ) {
        let end = destination(start, bearing, dist);
        let measured = haversine_distance_m(start, end);
        prop_assert!((measured - dist).abs() < dist * 0.001 + 0.5,
            "requested {dist}, measured {measured}");
    }

    #[test]
    fn destination_bearing_matches(
        start in arb_aegean_point(),
        bearing in 0.0f64..360.0,
        dist in 100.0f64..50_000.0,
    ) {
        let end = destination(start, bearing, dist);
        let measured = initial_bearing_deg(start, end);
        prop_assert!(angle_diff_deg(measured, bearing) < 0.5,
            "requested {bearing}, measured {measured}");
    }

    #[test]
    fn angle_diff_bounds_and_symmetry(a in 0.0f64..360.0, b in 0.0f64..360.0) {
        let d = angle_diff_deg(a, b);
        prop_assert!((0.0..=180.0).contains(&d));
        prop_assert!((angle_diff_deg(b, a) - d).abs() < 1e-9);
    }

    #[test]
    fn signed_angle_diff_consistent_with_unsigned(a in 0.0f64..360.0, b in 0.0f64..360.0) {
        let signed = signed_angle_diff_deg(a, b);
        let unsigned = angle_diff_deg(a, b);
        prop_assert!((signed.abs() - unsigned).abs() < 1e-9);
        prop_assert!(signed > -180.0 - 1e-9 && signed <= 180.0 + 1e-9);
    }

    #[test]
    fn bbox_contains_its_generators(points in prop::collection::vec(arb_point(), 1..20)) {
        let bbox = BoundingBox::around(&points).unwrap();
        for p in &points {
            prop_assert!(bbox.contains(*p));
        }
    }

    #[test]
    fn polygon_contains_implies_zero_distance(
        center in arb_aegean_point(),
        radius in 1_000.0f64..30_000.0,
        probe in arb_aegean_point(),
    ) {
        let poly = Polygon::circle(center, radius, 16);
        if poly.contains(probe) {
            prop_assert_eq!(poly.distance_m(probe), 0.0);
        } else {
            prop_assert!(poly.distance_m(probe) > 0.0);
        }
    }

    #[test]
    fn circle_polygon_contains_center_and_excludes_far(
        center in arb_aegean_point(),
        radius in 1_000.0f64..30_000.0,
    ) {
        let poly = Polygon::circle(center, radius, 24);
        prop_assert!(poly.contains(center));
        let far = destination(center, 45.0, radius * 3.0);
        prop_assert!(!poly.contains(far));
        // Distance to the far point is roughly 2 radii (within polygon
        // approximation error of the circle).
        let d = poly.distance_m(far);
        prop_assert!(d > radius, "distance {d} vs radius {radius}");
    }

    #[test]
    fn is_close_monotone_in_threshold(
        center in arb_aegean_point(),
        radius in 1_000.0f64..20_000.0,
        probe in arb_aegean_point(),
        t1 in 100.0f64..10_000.0,
        extra in 1.0f64..10_000.0,
    ) {
        let poly = Polygon::circle(center, radius, 16);
        if poly.is_close(probe, t1) {
            prop_assert!(poly.is_close(probe, t1 + extra),
                "close at {t1} but not at {}", t1 + extra);
        }
    }

    #[test]
    fn lerp_stays_on_segment_bbox(a in arb_point(), b in arb_point(), f in 0.0f64..1.0) {
        let m = a.lerp(b, f);
        let bbox = BoundingBox::around(&[a, b]).unwrap();
        prop_assert!(bbox.contains(m));
    }
}
