//! Aegean-sea geography: real port locations and the synthetic area set.
//!
//! The paper's evaluation (§5) covers the Aegean, the Ionian and part of the
//! Mediterranean, with vessel traces between Greek ports, and augments the
//! recognition input with "35 polygons representing protected areas,
//! forbidden fishing areas, and areas with shallow waters" generated
//! synthetically. This module reproduces both: a catalogue of real port
//! coordinates (used by the AIS fleet simulator as voyage endpoints) and a
//! deterministic generator for the 35 areas.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::areas::{Area, AreaId, AreaKind};
use crate::bbox::BoundingBox;
use crate::point::GeoPoint;
use crate::polygon::Polygon;

/// Bounding box of the monitored region (Aegean plus east Ionian).
#[must_use]
pub fn aegean_extent() -> BoundingBox {
    BoundingBox {
        min_lon: 19.5,
        min_lat: 34.5,
        max_lon: 28.5,
        max_lat: 41.0,
    }
}

/// Longitude that splits the monitored region into the *west* and *east*
/// partitions of the two-processor experiments (Figure 11).
pub const EAST_WEST_SPLIT_LON: f64 = 24.3;

/// A real Greek port: name and harbour coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Port {
    /// Port name.
    pub name: &'static str,
    /// Harbour-mouth coordinates.
    pub location: GeoPoint,
}

/// Catalogue of major Greek ports used as voyage endpoints by the synthetic
/// fleet. Coordinates are the approximate harbour positions.
#[must_use]
pub fn ports() -> Vec<Port> {
    const RAW: &[(&str, f64, f64)] = &[
        ("Piraeus", 23.618, 37.942),
        ("Thessaloniki", 22.930, 40.630),
        ("Heraklion", 25.144, 35.345),
        ("Volos", 22.945, 39.358),
        ("Patras", 21.728, 38.255),
        ("Rhodes", 28.227, 36.450),
        ("Mytilene", 26.558, 39.105),
        ("Chania", 24.017, 35.517),
        ("Chios", 26.140, 38.373),
        ("Kavala", 24.405, 40.933),
        ("Syros", 24.942, 37.440),
        ("Paros", 25.150, 37.085),
        ("Naxos", 25.373, 37.107),
        ("Santorini", 25.430, 36.390),
        ("Mykonos", 25.325, 37.450),
        ("Kos", 27.288, 36.897),
        ("Samos", 26.975, 37.757),
        ("Rafina", 24.010, 38.022),
        ("Lavrio", 24.057, 37.713),
        ("Igoumenitsa", 20.267, 39.503),
        ("Corfu", 19.920, 39.625),
        ("Alexandroupoli", 25.875, 40.845),
        ("Kalamata", 22.110, 37.022),
        ("Gythio", 22.565, 36.758),
        ("Milos", 24.445, 36.727),
    ];
    RAW.iter()
        .map(|&(name, lon, lat)| Port {
            name,
            location: GeoPoint::new(lon, lat),
        })
        .collect()
}

/// Configuration for the synthetic area generator.
#[derive(Debug, Clone, Copy)]
pub struct AreaGenConfig {
    /// RNG seed; the same seed always yields the same 35 polygons.
    pub seed: u64,
    /// Number of environmentally protected areas.
    pub protected: usize,
    /// Number of forbidden-fishing areas.
    pub forbidden_fishing: usize,
    /// Number of shallow-water areas.
    pub shallow: usize,
    /// Radius range of generated areas, meters.
    pub radius_m: (f64, f64),
}

impl Default for AreaGenConfig {
    /// The paper's §5.2 setup: 35 areas total, split across the three kinds.
    fn default() -> Self {
        Self {
            seed: 0x0A15_2015,
            protected: 12,
            forbidden_fishing: 12,
            shallow: 11,
            radius_m: (3_000.0, 15_000.0),
        }
    }
}

/// Generates the synthetic surveillance areas plus port basins.
///
/// Port areas come first (ids `0..ports.len()`), then the 35 synthetic
/// areas. Synthetic polygons are irregular 8–14-gons centred at random
/// offshore positions near shipping lanes (within a corridor around the
/// midpoints between random port pairs), so vessels genuinely pass close to
/// them during replay.
#[must_use]
pub fn generate_areas(config: &AreaGenConfig) -> Vec<Area> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let port_list = ports();
    let mut areas = Vec::with_capacity(port_list.len() + 35);

    for (i, port) in port_list.iter().enumerate() {
        areas.push(Area::new(
            AreaId(i as u32),
            port.name,
            AreaKind::Port,
            Polygon::circle(port.location, 2_500.0, 16),
        ));
    }

    let mut next_id = port_list.len() as u32;
    let mut push_kind = |kind_of: &mut dyn FnMut(&mut SmallRng) -> AreaKind,
                         count: usize,
                         name_prefix: &str,
                         rng: &mut SmallRng,
                         areas: &mut Vec<Area>| {
        for i in 0..count {
            let center = lane_point(rng, &port_list);
            let radius = rng.gen_range(config.radius_m.0..config.radius_m.1);
            let polygon = irregular_polygon(rng, center, radius);
            let kind = kind_of(rng);
            areas.push(Area::new(
                AreaId(next_id),
                format!("{name_prefix}-{i}"),
                kind,
                polygon,
            ));
            next_id += 1;
        }
    };

    push_kind(
        &mut |_| AreaKind::Protected,
        config.protected,
        "protected",
        &mut rng,
        &mut areas,
    );
    push_kind(
        &mut |_| AreaKind::ForbiddenFishing,
        config.forbidden_fishing,
        "no-fishing",
        &mut rng,
        &mut areas,
    );
    push_kind(
        &mut |rng: &mut SmallRng| AreaKind::Shallow {
            depth_m: rng.gen_range(2.0..12.0),
        },
        config.shallow,
        "shallow",
        &mut rng,
        &mut areas,
    );

    areas
}

/// Picks a point near a shipping lane: a random position along the segment
/// between two random ports, jittered laterally by up to ~20 km.
fn lane_point(rng: &mut SmallRng, ports: &[Port]) -> GeoPoint {
    let a = ports[rng.gen_range(0..ports.len())].location;
    let b = ports[rng.gen_range(0..ports.len())].location;
    let t = rng.gen_range(0.15..0.85);
    let on_lane = a.lerp(b, t);
    let jitter = crate::haversine::destination(
        on_lane,
        rng.gen_range(0.0..360.0),
        rng.gen_range(2_000.0..20_000.0),
    );
    // Keep within the monitored extent.
    GeoPoint {
        lon: jitter.lon.clamp(aegean_extent().min_lon, aegean_extent().max_lon),
        lat: jitter.lat.clamp(aegean_extent().min_lat, aegean_extent().max_lat),
    }
}

/// An irregular polygon: vertices at jittered radii around the center.
fn irregular_polygon(rng: &mut SmallRng, center: GeoPoint, radius_m: f64) -> Polygon {
    let n = rng.gen_range(8..=14);
    let vertices = (0..n)
        .map(|i| {
            let bearing = 360.0 * i as f64 / n as f64;
            let r = radius_m * rng.gen_range(0.7..1.3);
            crate::haversine::destination(center, bearing, r)
        })
        .collect();
    Polygon::new(vertices).expect("generated polygon has >= 3 vertices")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_catalogue_is_sane() {
        let ps = ports();
        assert!(ps.len() >= 20);
        let extent = aegean_extent();
        for p in &ps {
            assert!(extent.contains(p.location), "{} outside extent", p.name);
        }
    }

    #[test]
    fn default_config_generates_35_synthetic_areas() {
        let areas = generate_areas(&AreaGenConfig::default());
        let synthetic = areas
            .iter()
            .filter(|a| a.kind != AreaKind::Port)
            .count();
        assert_eq!(synthetic, 35);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_areas(&AreaGenConfig::default());
        let b = generate_areas(&AreaGenConfig::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.polygon.vertices(), y.polygon.vertices());
            assert_eq!(x.name, y.name);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_areas(&AreaGenConfig::default());
        let b = generate_areas(&AreaGenConfig {
            seed: 99,
            ..AreaGenConfig::default()
        });
        let same = a
            .iter()
            .zip(&b)
            .filter(|(x, y)| x.polygon.vertices() == y.polygon.vertices())
            .count();
        // Ports are identical; synthetic areas should differ.
        assert_eq!(same, ports().len());
    }

    #[test]
    fn area_ids_are_dense_and_unique() {
        let areas = generate_areas(&AreaGenConfig::default());
        for (i, a) in areas.iter().enumerate() {
            assert_eq!(a.id, AreaId(i as u32));
        }
    }

    #[test]
    fn shallow_areas_carry_depth() {
        let areas = generate_areas(&AreaGenConfig::default());
        let shallows: Vec<_> = areas
            .iter()
            .filter(|a| matches!(a.kind, AreaKind::Shallow { .. }))
            .collect();
        assert_eq!(shallows.len(), 11);
        for s in shallows {
            if let AreaKind::Shallow { depth_m } = s.kind {
                assert!((2.0..12.0).contains(&depth_m));
            }
        }
    }

    #[test]
    fn split_longitude_partitions_ports_nontrivially() {
        let ps = ports();
        let west = ps.iter().filter(|p| p.location.lon < EAST_WEST_SPLIT_LON).count();
        let east = ps.len() - west;
        assert!(west >= 5 && east >= 5, "west={west} east={east}");
    }
}
