//! Simple polygons for the static geographic areas of §4.
//!
//! The CE rules correlate vessel positions with *areas* — port polygons,
//! protected areas, forbidden-fishing zones, and shallow waters. Two
//! geometric predicates are needed:
//!
//! * containment (`contains`) — used when enriching long-term stops with the
//!   port they fall in (§3.2);
//! * proximity (`distance_m` / `is_close`) — the `close(Lon, Lat, Area)`
//!   predicate of §4.1, true when the Haversine distance between a point and
//!   an area is below a threshold (zero when inside).

use serde::{Deserialize, Serialize};

use crate::bbox::BoundingBox;
use crate::haversine::haversine_distance_m;
use crate::point::GeoPoint;

/// A simple (non-self-intersecting) polygon in lon/lat space.
///
/// The ring is stored without the closing vertex; edges are implicit
/// between consecutive vertices and between the last and the first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    vertices: Vec<GeoPoint>,
    bbox: BoundingBox,
}

impl Polygon {
    /// Builds a polygon from at least three vertices.
    ///
    /// A trailing vertex equal to the first (a "closed" ring, as produced by
    /// most GIS exports) is dropped automatically.
    pub fn new(mut vertices: Vec<GeoPoint>) -> Result<Self, PolygonError> {
        if vertices.len() > 3 && vertices.first() == vertices.last() {
            vertices.pop();
        }
        if vertices.len() < 3 {
            return Err(PolygonError::TooFewVertices(vertices.len()));
        }
        let bbox = BoundingBox::around(&vertices).expect("non-empty");
        Ok(Self { vertices, bbox })
    }

    /// Convenience constructor: an axis-aligned rectangle.
    #[must_use]
    pub fn rectangle(min: GeoPoint, max: GeoPoint) -> Self {
        Self::new(vec![
            min,
            GeoPoint { lon: max.lon, lat: min.lat },
            max,
            GeoPoint { lon: min.lon, lat: max.lat },
        ])
        .expect("rectangle has 4 vertices")
    }

    /// Convenience constructor: a regular n-gon approximating a circle of
    /// radius `radius_m` meters around `center`. Used by the Aegean area
    /// generator for port basins and circular protection zones.
    #[must_use]
    pub fn circle(center: GeoPoint, radius_m: f64, segments: usize) -> Self {
        let n = segments.max(3);
        let vertices = (0..n)
            .map(|i| {
                let bearing = 360.0 * i as f64 / n as f64;
                crate::haversine::destination(center, bearing, radius_m)
            })
            .collect();
        Self::new(vertices).expect("circle has >= 3 vertices")
    }

    /// The polygon's vertices, without the closing duplicate.
    #[must_use]
    pub fn vertices(&self) -> &[GeoPoint] {
        &self.vertices
    }

    /// Precomputed bounding box.
    #[must_use]
    pub fn bbox(&self) -> BoundingBox {
        self.bbox
    }

    /// Arithmetic centroid of the vertices (adequate for the small, convex
    /// areas used in maritime surveillance).
    #[must_use]
    pub fn centroid(&self) -> GeoPoint {
        GeoPoint::centroid(&self.vertices).expect("non-empty")
    }

    /// Point-in-polygon by ray casting (even-odd rule).
    ///
    /// Points exactly on an edge may report either side; the surveillance
    /// rules are threshold-based so this does not matter in practice.
    #[must_use]
    pub fn contains(&self, p: GeoPoint) -> bool {
        if !self.bbox.contains(p) {
            return false;
        }
        let mut inside = false;
        let n = self.vertices.len();
        let mut j = n - 1;
        for i in 0..n {
            let vi = self.vertices[i];
            let vj = self.vertices[j];
            if ((vi.lat > p.lat) != (vj.lat > p.lat))
                && (p.lon < (vj.lon - vi.lon) * (p.lat - vi.lat) / (vj.lat - vi.lat) + vi.lon)
            {
                inside = !inside;
            }
            j = i;
        }
        inside
    }

    /// Haversine distance in meters from `p` to the polygon: zero when the
    /// point is inside, otherwise the distance to the nearest boundary point.
    #[must_use]
    pub fn distance_m(&self, p: GeoPoint) -> f64 {
        if self.contains(p) {
            return 0.0;
        }
        let n = self.vertices.len();
        let mut best = f64::INFINITY;
        let mut j = n - 1;
        for i in 0..n {
            best = best.min(segment_distance_m(p, self.vertices[j], self.vertices[i]));
            j = i;
        }
        best
    }

    /// The `close/3` predicate of §4.1: is the Haversine distance between the
    /// point and the area below `threshold_m`? Inside counts as close.
    ///
    /// Equivalent to `distance_m(p) < threshold_m` but without computing
    /// the full minimum: the segment scan exits on the first segment
    /// within threshold (`min < t ⇔ ∃ segment < t`), which for the common
    /// clearly-close case costs one segment distance instead of a whole
    /// perimeter of Haversine evaluations.
    #[must_use]
    pub fn is_close(&self, p: GeoPoint, threshold_m: f64) -> bool {
        // Quick rejection: a degree of latitude is ~111 km, so a point whose
        // inflated bbox excludes it cannot be within threshold.
        let margin_deg = threshold_m / 111_000.0 * 1.5;
        if !self.bbox.inflated(margin_deg).contains(p) {
            return false;
        }
        if self.contains(p) {
            return true;
        }
        let n = self.vertices.len();
        let mut j = n - 1;
        for i in 0..n {
            if segment_within_m(p, self.vertices[j], self.vertices[i], threshold_m) {
                return true;
            }
            j = i;
        }
        false
    }
}

/// Meters per degree of great-circle arc on the spherical Earth model.
const METERS_PER_DEG: f64 = std::f64::consts::PI * crate::haversine::EARTH_RADIUS_M / 180.0;

/// `segment_distance_m(p, a, b) < threshold_m`, decided without the final
/// Haversine evaluation whenever a cheap planar bound is conclusive.
///
/// The planar estimate measures the equirectangular distance to the same
/// projected closest point that [`segment_distance_m`] uses. Within the
/// gated domain (latitudes below 70°, all points within 1° of latitude and
/// 5° of longitude of `a` — comfortably covering surveillance-area
/// geometry), the Haversine distance to that point differs from the
/// estimate by at most ~5%: the dominant term is the fixed `cos(a.lat)`
/// longitude scale versus the true `cos φ` factors (≤ `tan(71°)·1°` ≈
/// 5.1%); small-angle and arc-vs-chord terms are orders of magnitude
/// smaller. A 7% margin therefore makes the accept/reject guards sound;
/// only distances within the margin of the threshold — or points outside
/// the gate — pay for the exact evaluation.
#[inline]
fn segment_within_m(p: GeoPoint, a: GeoPoint, b: GeoPoint, threshold_m: f64) -> bool {
    const EPS: f64 = 0.07;
    if a.lat.abs() <= 70.0
        && (p.lat - a.lat).abs() <= 1.0
        && (b.lat - a.lat).abs() <= 1.0
        && (p.lon - a.lon).abs() <= 5.0
        && (b.lon - a.lon).abs() <= 5.0
    {
        let k = a.lat.to_radians().cos();
        let (px, py) = ((p.lon - a.lon) * k, p.lat - a.lat);
        let (bx, by) = ((b.lon - a.lon) * k, b.lat - a.lat);
        let len2 = bx * bx + by * by;
        let t = if len2 == 0.0 {
            0.0
        } else {
            ((px * bx + py * by) / len2).clamp(0.0, 1.0)
        };
        let (dx, dy) = (px - bx * t, py - by * t);
        let d_planar = (dx * dx + dy * dy).sqrt() * METERS_PER_DEG;
        if d_planar * (1.0 + EPS) < threshold_m {
            return true;
        }
        if d_planar * (1.0 - EPS) >= threshold_m {
            return false;
        }
    }
    segment_distance_m(p, a, b) < threshold_m
}

/// Distance from point `p` to the segment `a`–`b`, in meters.
///
/// Projects in the local equirectangular plane (valid because surveillance
/// areas span at most a few tens of kilometres) and measures the Haversine
/// distance to the projected closest point. Also the deviation metric of
/// the path-simplification baselines (Douglas–Peucker, dead reckoning).
#[must_use]
pub fn segment_distance_m(p: GeoPoint, a: GeoPoint, b: GeoPoint) -> f64 {
    // Local planar coordinates centred on `a`, with longitude scaled by
    // cos(latitude) so both axes are in comparable metric units.
    let k = a.lat.to_radians().cos();
    let (px, py) = ((p.lon - a.lon) * k, p.lat - a.lat);
    let (bx, by) = ((b.lon - a.lon) * k, b.lat - a.lat);
    let len2 = bx * bx + by * by;
    let t = if len2 == 0.0 {
        0.0
    } else {
        ((px * bx + py * by) / len2).clamp(0.0, 1.0)
    };
    let closest = GeoPoint {
        lon: a.lon + (b.lon - a.lon) * t,
        lat: a.lat + (b.lat - a.lat) * t,
    };
    haversine_distance_m(p, closest)
}

/// Error constructing a [`Polygon`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolygonError {
    /// Fewer than three distinct vertices were provided.
    TooFewVertices(usize),
}

impl std::fmt::Display for PolygonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TooFewVertices(n) => write!(f, "polygon needs >= 3 vertices, got {n}"),
        }
    }
}

impl std::error::Error for PolygonError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon {
        Polygon::rectangle(GeoPoint::new(0.0, 0.0), GeoPoint::new(1.0, 1.0))
    }

    #[test]
    fn too_few_vertices_rejected() {
        assert!(matches!(
            Polygon::new(vec![GeoPoint::new(0.0, 0.0), GeoPoint::new(1.0, 1.0)]),
            Err(PolygonError::TooFewVertices(2))
        ));
    }

    #[test]
    fn closing_vertex_is_dropped() {
        let p = Polygon::new(vec![
            GeoPoint::new(0.0, 0.0),
            GeoPoint::new(1.0, 0.0),
            GeoPoint::new(1.0, 1.0),
            GeoPoint::new(0.0, 0.0),
        ])
        .unwrap();
        assert_eq!(p.vertices().len(), 3);
    }

    #[test]
    fn contains_interior_and_rejects_exterior() {
        let sq = unit_square();
        assert!(sq.contains(GeoPoint::new(0.5, 0.5)));
        assert!(!sq.contains(GeoPoint::new(1.5, 0.5)));
        assert!(!sq.contains(GeoPoint::new(0.5, -0.1)));
    }

    #[test]
    fn contains_concave_polygon() {
        // An L-shape: the notch (0.75, 0.75) is outside.
        let l = Polygon::new(vec![
            GeoPoint::new(0.0, 0.0),
            GeoPoint::new(1.0, 0.0),
            GeoPoint::new(1.0, 0.5),
            GeoPoint::new(0.5, 0.5),
            GeoPoint::new(0.5, 1.0),
            GeoPoint::new(0.0, 1.0),
        ])
        .unwrap();
        assert!(l.contains(GeoPoint::new(0.25, 0.75)));
        assert!(l.contains(GeoPoint::new(0.75, 0.25)));
        assert!(!l.contains(GeoPoint::new(0.75, 0.75)));
    }

    #[test]
    fn distance_zero_inside() {
        assert_eq!(unit_square().distance_m(GeoPoint::new(0.5, 0.5)), 0.0);
    }

    #[test]
    fn distance_outside_matches_haversine_to_nearest_edge() {
        let sq = unit_square();
        // Point due east of the (1, 0.5) edge midpoint by 0.1 degrees.
        let p = GeoPoint::new(1.1, 0.5);
        let expected = haversine_distance_m(p, GeoPoint::new(1.0, 0.5));
        let got = sq.distance_m(p);
        assert!((got - expected).abs() < expected * 0.01, "{got} vs {expected}");
    }

    #[test]
    fn is_close_threshold_behaviour() {
        let sq = unit_square();
        let p = GeoPoint::new(1.01, 0.5); // ~1.1 km east of the boundary
        assert!(sq.is_close(p, 2_000.0));
        assert!(!sq.is_close(p, 500.0));
        assert!(sq.is_close(GeoPoint::new(0.5, 0.5), 1.0), "inside is close");
    }

    #[test]
    fn is_close_matches_exact_distance_reference() {
        // The guarded planar fast path must agree with the exact
        // definition `distance_m < threshold` everywhere, including
        // distances straddling the threshold where only the Haversine
        // fallback can decide.
        let shapes = [
            Polygon::circle(GeoPoint::new(24.5, 38.5), 5_000.0, 16),
            Polygon::rectangle(GeoPoint::new(24.0, 37.0), GeoPoint::new(24.3, 37.2)),
        ];
        for poly in &shapes {
            let c = poly.centroid();
            for step in 0..72 {
                let bearing = 5.0 * f64::from(step);
                for dist in [100.0, 1_900.0, 1_999.0, 2_001.0, 4_000.0, 7_000.0, 20_000.0] {
                    let p = crate::haversine::destination(c, bearing, dist);
                    for t in [500.0, 2_000.0, 5_000.0] {
                        assert_eq!(
                            poly.is_close(p, t),
                            poly.distance_m(p) < t,
                            "poly@{c:?} p={p:?} t={t}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn circle_radius_is_respected() {
        let c = Polygon::circle(GeoPoint::new(24.0, 37.0), 5_000.0, 24);
        for v in c.vertices() {
            let d = haversine_distance_m(GeoPoint::new(24.0, 37.0), *v);
            assert!((d - 5_000.0).abs() < 5.0, "vertex at {d} m");
        }
        assert!(c.contains(GeoPoint::new(24.0, 37.0)));
        assert!(!c.contains(GeoPoint::new(24.2, 37.0)));
    }

    #[test]
    fn centroid_of_square_is_center() {
        let c = unit_square().centroid();
        assert!((c.lon - 0.5).abs() < 1e-9);
        assert!((c.lat - 0.5).abs() < 1e-9);
    }
}
