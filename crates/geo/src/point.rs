//! Geographic points in WGS-84 longitude/latitude degrees.

use serde::{Deserialize, Serialize};

/// A geographic position: longitude and latitude in decimal degrees.
///
/// Longitude is in `[-180, 180]`, latitude in `[-90, 90]`. The paper's
/// positional stream carries `(Lon, Lat)` pairs extracted from AIS messages
/// (§2); we keep the same ordering convention throughout.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Longitude in decimal degrees, east positive.
    pub lon: f64,
    /// Latitude in decimal degrees, north positive.
    pub lat: f64,
}

impl GeoPoint {
    /// Creates a point, panicking if the coordinates are outside the valid
    /// WGS-84 ranges. Use [`GeoPoint::try_new`] for fallible construction
    /// (e.g. when decoding untrusted AIS payloads).
    #[must_use]
    pub fn new(lon: f64, lat: f64) -> Self {
        Self::try_new(lon, lat).expect("coordinates out of range")
    }

    /// Creates a point if the coordinates are valid WGS-84 degrees.
    pub fn try_new(lon: f64, lat: f64) -> Result<Self, CoordinateError> {
        if !lon.is_finite() || !(-180.0..=180.0).contains(&lon) {
            return Err(CoordinateError::Longitude(lon));
        }
        if !lat.is_finite() || !(-90.0..=90.0).contains(&lat) {
            return Err(CoordinateError::Latitude(lat));
        }
        Ok(Self { lon, lat })
    }

    /// Longitude/latitude in radians, in `(lon, lat)` order.
    #[must_use]
    pub fn to_radians(self) -> (f64, f64) {
        (self.lon.to_radians(), self.lat.to_radians())
    }

    /// Midpoint on the straight chord between two nearby points.
    ///
    /// Valid for the small inter-report displacements of vessel traces,
    /// where the course "practically evolves in a very small area, which can
    /// be locally approximated with a Euclidean plane" (paper, footnote 2).
    #[must_use]
    pub fn midpoint(self, other: GeoPoint) -> GeoPoint {
        GeoPoint {
            lon: (self.lon + other.lon) / 2.0,
            lat: (self.lat + other.lat) / 2.0,
        }
    }

    /// Arithmetic centroid of a non-empty set of nearby points.
    ///
    /// Used to collapse a long-term stop into a single critical point
    /// (paper §3.1: the consecutive pause positions "could be collectively
    /// approximated by a single critical point (their centroid)").
    #[must_use]
    pub fn centroid(points: &[GeoPoint]) -> Option<GeoPoint> {
        if points.is_empty() {
            return None;
        }
        let n = points.len() as f64;
        let (sum_lon, sum_lat) = points
            .iter()
            .fold((0.0, 0.0), |(slon, slat), p| (slon + p.lon, slat + p.lat));
        Some(GeoPoint {
            lon: sum_lon / n,
            lat: sum_lat / n,
        })
    }

    /// Linear interpolation between `self` (at fraction 0) and `other`
    /// (at fraction 1). Used for time-aligned trajectory reconstruction when
    /// estimating the approximation error of compressed traces (§5.1).
    #[must_use]
    pub fn lerp(self, other: GeoPoint, fraction: f64) -> GeoPoint {
        GeoPoint {
            lon: self.lon + (other.lon - self.lon) * fraction,
            lat: self.lat + (other.lat - self.lat) * fraction,
        }
    }
}

/// Error produced when a coordinate falls outside WGS-84 bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CoordinateError {
    /// Longitude outside `[-180, 180]` or non-finite.
    Longitude(f64),
    /// Latitude outside `[-90, 90]` or non-finite.
    Latitude(f64),
}

impl std::fmt::Display for CoordinateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Longitude(v) => write!(f, "longitude {v} out of [-180, 180]"),
            Self::Latitude(v) => write!(f, "latitude {v} out of [-90, 90]"),
        }
    }
}

impl std::error::Error for CoordinateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_point_roundtrips() {
        let p = GeoPoint::new(23.64, 37.94); // Piraeus
        assert_eq!(p.lon, 23.64);
        assert_eq!(p.lat, 37.94);
    }

    #[test]
    fn rejects_out_of_range_longitude() {
        assert!(matches!(
            GeoPoint::try_new(181.0, 0.0),
            Err(CoordinateError::Longitude(_))
        ));
        assert!(matches!(
            GeoPoint::try_new(f64::NAN, 0.0),
            Err(CoordinateError::Longitude(_))
        ));
    }

    #[test]
    fn rejects_out_of_range_latitude() {
        assert!(matches!(
            GeoPoint::try_new(0.0, -90.5),
            Err(CoordinateError::Latitude(_))
        ));
        assert!(matches!(
            GeoPoint::try_new(0.0, f64::INFINITY),
            Err(CoordinateError::Latitude(_))
        ));
    }

    #[test]
    fn boundary_coordinates_are_valid() {
        assert!(GeoPoint::try_new(-180.0, -90.0).is_ok());
        assert!(GeoPoint::try_new(180.0, 90.0).is_ok());
    }

    #[test]
    fn centroid_of_empty_slice_is_none() {
        assert_eq!(GeoPoint::centroid(&[]), None);
    }

    #[test]
    fn centroid_averages_coordinates() {
        let pts = [GeoPoint::new(0.0, 0.0), GeoPoint::new(2.0, 4.0)];
        let c = GeoPoint::centroid(&pts).unwrap();
        assert!((c.lon - 1.0).abs() < 1e-12);
        assert!((c.lat - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints_and_middle() {
        let a = GeoPoint::new(10.0, 20.0);
        let b = GeoPoint::new(12.0, 24.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        let m = a.lerp(b, 0.5);
        assert!((m.lon - 11.0).abs() < 1e-12);
        assert!((m.lat - 22.0).abs() < 1e-12);
    }

    #[test]
    fn midpoint_matches_half_lerp() {
        let a = GeoPoint::new(23.0, 37.0);
        let b = GeoPoint::new(24.0, 38.0);
        assert_eq!(a.midpoint(b), a.lerp(b, 0.5));
    }
}
