//! Axis-aligned bounding boxes in longitude/latitude space.

use serde::{Deserialize, Serialize};

use crate::point::GeoPoint;

/// An axis-aligned rectangle in degree space.
///
/// Bounding boxes serve two roles: pre-filtering polygon containment tests
/// (a point outside an area's box cannot be inside the area) and defining
/// the cell extents of the [`crate::GridIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Western edge (minimum longitude).
    pub min_lon: f64,
    /// Southern edge (minimum latitude).
    pub min_lat: f64,
    /// Eastern edge (maximum longitude).
    pub max_lon: f64,
    /// Northern edge (maximum latitude).
    pub max_lat: f64,
}

impl BoundingBox {
    /// An "empty" box that contains nothing and absorbs any point on
    /// [`BoundingBox::expand_to`].
    #[must_use]
    pub fn empty() -> Self {
        Self {
            min_lon: f64::INFINITY,
            min_lat: f64::INFINITY,
            max_lon: f64::NEG_INFINITY,
            max_lat: f64::NEG_INFINITY,
        }
    }

    /// Builds the tightest box around a set of points; `None` if empty.
    #[must_use]
    pub fn around(points: &[GeoPoint]) -> Option<Self> {
        if points.is_empty() {
            return None;
        }
        let mut b = Self::empty();
        for p in points {
            b.expand_to(*p);
        }
        Some(b)
    }

    /// Grows the box so that it contains `p`.
    pub fn expand_to(&mut self, p: GeoPoint) {
        self.min_lon = self.min_lon.min(p.lon);
        self.min_lat = self.min_lat.min(p.lat);
        self.max_lon = self.max_lon.max(p.lon);
        self.max_lat = self.max_lat.max(p.lat);
    }

    /// Grows the box outward by `margin_deg` degrees on every side.
    #[must_use]
    pub fn inflated(self, margin_deg: f64) -> Self {
        Self {
            min_lon: self.min_lon - margin_deg,
            min_lat: self.min_lat - margin_deg,
            max_lon: self.max_lon + margin_deg,
            max_lat: self.max_lat + margin_deg,
        }
    }

    /// Whether the point lies inside or on the boundary of the box.
    #[must_use]
    pub fn contains(&self, p: GeoPoint) -> bool {
        p.lon >= self.min_lon && p.lon <= self.max_lon && p.lat >= self.min_lat && p.lat <= self.max_lat
    }

    /// Whether two boxes overlap (share any point).
    #[must_use]
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        self.min_lon <= other.max_lon
            && self.max_lon >= other.min_lon
            && self.min_lat <= other.max_lat
            && self.max_lat >= other.min_lat
    }

    /// Center of the box.
    #[must_use]
    pub fn center(&self) -> GeoPoint {
        GeoPoint {
            lon: (self.min_lon + self.max_lon) / 2.0,
            lat: (self.min_lat + self.max_lat) / 2.0,
        }
    }

    /// Width in degrees of longitude.
    #[must_use]
    pub fn width_deg(&self) -> f64 {
        (self.max_lon - self.min_lon).max(0.0)
    }

    /// Height in degrees of latitude.
    #[must_use]
    pub fn height_deg(&self) -> f64 {
        (self.max_lat - self.min_lat).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn around_points_is_tight() {
        let b = BoundingBox::around(&[
            GeoPoint::new(23.0, 37.0),
            GeoPoint::new(25.0, 36.0),
            GeoPoint::new(24.0, 39.0),
        ])
        .unwrap();
        assert_eq!(b.min_lon, 23.0);
        assert_eq!(b.max_lon, 25.0);
        assert_eq!(b.min_lat, 36.0);
        assert_eq!(b.max_lat, 39.0);
    }

    #[test]
    fn around_empty_is_none() {
        assert!(BoundingBox::around(&[]).is_none());
    }

    #[test]
    fn contains_boundary_points() {
        let b = BoundingBox::around(&[GeoPoint::new(23.0, 37.0), GeoPoint::new(25.0, 39.0)]).unwrap();
        assert!(b.contains(GeoPoint::new(23.0, 37.0)));
        assert!(b.contains(GeoPoint::new(25.0, 39.0)));
        assert!(b.contains(GeoPoint::new(24.0, 38.0)));
        assert!(!b.contains(GeoPoint::new(22.99, 38.0)));
    }

    #[test]
    fn intersects_is_symmetric_and_detects_touching() {
        let a = BoundingBox::around(&[GeoPoint::new(0.0, 0.0), GeoPoint::new(2.0, 2.0)]).unwrap();
        let b = BoundingBox::around(&[GeoPoint::new(2.0, 2.0), GeoPoint::new(4.0, 4.0)]).unwrap();
        let c = BoundingBox::around(&[GeoPoint::new(5.0, 5.0), GeoPoint::new(6.0, 6.0)]).unwrap();
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn inflated_grows_every_side() {
        let b = BoundingBox::around(&[GeoPoint::new(10.0, 10.0), GeoPoint::new(11.0, 11.0)])
            .unwrap()
            .inflated(0.5);
        assert_eq!(b.min_lon, 9.5);
        assert_eq!(b.max_lat, 11.5);
    }

    #[test]
    fn empty_box_contains_nothing() {
        let b = BoundingBox::empty();
        assert!(!b.contains(GeoPoint::new(0.0, 0.0)));
    }

    #[test]
    fn center_and_dimensions() {
        let b = BoundingBox::around(&[GeoPoint::new(10.0, 20.0), GeoPoint::new(14.0, 26.0)]).unwrap();
        let c = b.center();
        assert_eq!(c.lon, 12.0);
        assert_eq!(c.lat, 23.0);
        assert_eq!(b.width_deg(), 4.0);
        assert_eq!(b.height_deg(), 6.0);
    }
}
