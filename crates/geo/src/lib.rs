//! Geospatial substrate for the maritime surveillance system.
//!
//! The paper (Patroumpas et al., EDBT 2015) abstracts vessels as
//! 2-dimensional point entities on the WGS-84 ellipsoid and measures all
//! distances with the Haversine formula (footnote 2 and §5.1). This crate
//! provides:
//!
//! * [`GeoPoint`] — longitude/latitude positions and [`haversine`] geometry
//!   (distance, bearing, destination point);
//! * [`Polygon`] and [`BoundingBox`] — the static *areas* (ports, protected
//!   areas, forbidden-fishing zones, shallow waters) that complex event
//!   recognition correlates vessel activity with;
//! * [`GridIndex`] — a uniform spatial grid that accelerates the `close/3`
//!   predicate of §4.1 (is a point within a threshold of an area?);
//! * [`aegean`] — real Aegean-sea port coordinates and a deterministic
//!   generator for the 35 synthetic areas used in the paper's §5.2;
//! * [`kml`] — the *Trajectory Exporter* of Figure 1 (KML polylines and
//!   placemarks).

#![warn(missing_docs)]

pub mod aegean;
pub mod areas;
pub mod bbox;
pub mod grid;
pub mod haversine;
pub mod kml;
pub mod point;
pub mod polygon;

pub use areas::{Area, AreaId, AreaKind};
pub use bbox::BoundingBox;
pub use grid::GridIndex;
pub use haversine::{
    angle_diff_deg, destination, haversine_distance_m, initial_bearing_deg, knots_to_mps,
    mps_to_knots, signed_angle_diff_deg, EARTH_RADIUS_M,
};
pub use point::GeoPoint;
pub use polygon::{segment_distance_m, Polygon};
