//! Static geographic areas: ports, protected zones, fishing bans, shallows.
//!
//! §4 of the paper correlates the critical-point stream with "static
//! geographical and vessel data, such as bathymetric data and locations of
//! protected areas". An [`Area`] is a named polygon with a [`AreaKind`]
//! that determines which complex-event rules apply to it.

use serde::{Deserialize, Serialize};

use crate::point::GeoPoint;
use crate::polygon::Polygon;

/// Dense identifier for an area, assigned by the knowledge base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AreaId(pub u32);

impl std::fmt::Display for AreaId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "area{}", self.0)
    }
}

/// The role an area plays in the surveillance rules (§4.1, §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AreaKind {
    /// A port basin — used for trip segmentation and semantic enrichment
    /// (§3.2), and as the anchor for `suspicious(Area)` monitoring.
    Port,
    /// Environmentally protected area (e.g. the National Marine Park of
    /// Alonnisos); target of the `illegalShipping` rule.
    Protected,
    /// Area where fishing is forbidden; target of the `illegalFishing` rules.
    ForbiddenFishing,
    /// Shallow waters; target of the `dangerousShipping` rule. Carries the
    /// depth so the `shallow(Area, Vessel)` predicate can compare it with a
    /// vessel's draft.
    Shallow {
        /// Water depth in meters.
        depth_m: f64,
    },
    /// Area watched for loitering / suspicious congregation (§4.1 scenario 1
    /// — "officials ... restrict computation of the maximal intervals of the
    /// suspicious fluent to these areas").
    Watch,
}

impl AreaKind {
    /// Short machine-readable label used in alerts and KML export.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Port => "port",
            Self::Protected => "protected",
            Self::ForbiddenFishing => "forbidden_fishing",
            Self::Shallow { .. } => "shallow",
            Self::Watch => "watch",
        }
    }
}

/// A named polygonal area of interest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Area {
    /// Stable identifier within the knowledge base.
    pub id: AreaId,
    /// Human-readable name, e.g. `"Piraeus"` or `"Alonnisos Marine Park"`.
    pub name: String,
    /// What the area is, and therefore which rules target it.
    pub kind: AreaKind,
    /// The geometry.
    pub polygon: Polygon,
}

impl Area {
    /// Creates an area.
    #[must_use]
    pub fn new(id: AreaId, name: impl Into<String>, kind: AreaKind, polygon: Polygon) -> Self {
        Self {
            id,
            name: name.into(),
            kind,
            polygon,
        }
    }

    /// Whether the point lies inside the area.
    #[must_use]
    pub fn contains(&self, p: GeoPoint) -> bool {
        self.polygon.contains(p)
    }

    /// The `close/3` predicate: within `threshold_m` meters of the area.
    #[must_use]
    pub fn is_close(&self, p: GeoPoint, threshold_m: f64) -> bool {
        self.polygon.is_close(p, threshold_m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn port() -> Area {
        Area::new(
            AreaId(1),
            "Piraeus",
            AreaKind::Port,
            Polygon::circle(GeoPoint::new(23.62, 37.94), 2_000.0, 16),
        )
    }

    #[test]
    fn area_contains_delegates_to_polygon() {
        let a = port();
        assert!(a.contains(GeoPoint::new(23.62, 37.94)));
        assert!(!a.contains(GeoPoint::new(24.5, 37.94)));
    }

    #[test]
    fn area_close_with_threshold() {
        let a = port();
        // ~2.6 km east of center = ~0.6 km outside the 2 km basin.
        let p = crate::haversine::destination(GeoPoint::new(23.62, 37.94), 90.0, 2_600.0);
        assert!(a.is_close(p, 1_000.0));
        assert!(!a.is_close(p, 100.0));
    }

    #[test]
    fn kind_labels_are_distinct() {
        use std::collections::HashSet;
        let labels: HashSet<_> = [
            AreaKind::Port,
            AreaKind::Protected,
            AreaKind::ForbiddenFishing,
            AreaKind::Shallow { depth_m: 5.0 },
            AreaKind::Watch,
        ]
        .iter()
        .map(AreaKind::label)
        .collect();
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn display_of_area_id() {
        assert_eq!(AreaId(7).to_string(), "area7");
    }
}
