//! Haversine geometry on the spherical Earth model.
//!
//! All distances in the paper — trajectory approximation error (§5.1, the
//! `H(p, p')` term of the RMSE formula), the `close/3` predicate of the CE
//! rules (§4.1), and the mobility-tracker displacement computations (§3.1) —
//! use the Haversine great-circle distance.

use crate::point::GeoPoint;

/// Mean Earth radius in meters (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// Meters per nautical mile.
pub const METERS_PER_NAUTICAL_MILE: f64 = 1_852.0;

/// Great-circle (Haversine) distance between two points, in meters.
#[must_use]
pub fn haversine_distance_m(a: GeoPoint, b: GeoPoint) -> f64 {
    let (lon1, lat1) = a.to_radians();
    let (lon2, lat2) = b.to_radians();
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_M * h.sqrt().min(1.0).asin()
}

/// Initial great-circle bearing from `a` to `b`, in degrees clockwise from
/// true north, normalized to `[0, 360)`.
///
/// This is the *heading* the mobility tracker compares against the turn
/// threshold Δθ (§3.1). For coincident points the bearing is defined as 0.
#[must_use]
pub fn initial_bearing_deg(a: GeoPoint, b: GeoPoint) -> f64 {
    let (lon1, lat1) = a.to_radians();
    let (lon2, lat2) = b.to_radians();
    let dlon = lon2 - lon1;
    let y = dlon.sin() * lat2.cos();
    let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
    if y == 0.0 && x == 0.0 {
        return 0.0;
    }
    let deg = y.atan2(x).to_degrees();
    (deg + 360.0) % 360.0
}

/// Destination point reached by travelling `distance_m` meters from `start`
/// on the great circle with initial bearing `bearing_deg`.
///
/// The synthetic AIS fleet simulator advances vessels with this formula.
#[must_use]
pub fn destination(start: GeoPoint, bearing_deg: f64, distance_m: f64) -> GeoPoint {
    let (lon1, lat1) = start.to_radians();
    let brg = bearing_deg.to_radians();
    let ang = distance_m / EARTH_RADIUS_M;
    let lat2 = (lat1.sin() * ang.cos() + lat1.cos() * ang.sin() * brg.cos()).asin();
    let lon2 = lon1
        + (brg.sin() * ang.sin() * lat1.cos()).atan2(ang.cos() - lat1.sin() * lat2.sin());
    // Normalize longitude into [-180, 180].
    let lon_deg = (lon2.to_degrees() + 540.0) % 360.0 - 180.0;
    GeoPoint {
        lon: lon_deg,
        lat: lat2.to_degrees().clamp(-90.0, 90.0),
    }
}

/// Smallest absolute difference between two headings, in degrees `[0, 180]`.
///
/// A *turn* event occurs when this exceeds the threshold Δθ; the comparison
/// must wrap around north (e.g. 350° vs 10° differ by 20°, not 340°).
#[must_use]
pub fn angle_diff_deg(a_deg: f64, b_deg: f64) -> f64 {
    let d = (a_deg - b_deg).rem_euclid(360.0);
    if d > 180.0 {
        360.0 - d
    } else {
        d
    }
}

/// Signed heading change from `from_deg` to `to_deg`, in `(-180, 180]`
/// degrees; positive is clockwise. Used to accumulate *smooth turn* drift
/// (§3.1) where consecutive small same-sign changes add up.
#[must_use]
pub fn signed_angle_diff_deg(from_deg: f64, to_deg: f64) -> f64 {
    let d = (to_deg - from_deg).rem_euclid(360.0);
    if d > 180.0 {
        d - 360.0
    } else {
        d
    }
}

/// Converts speed in knots to meters per second.
#[must_use]
pub fn knots_to_mps(knots: f64) -> f64 {
    knots * METERS_PER_NAUTICAL_MILE / 3_600.0
}

/// Converts speed in meters per second to knots.
#[must_use]
pub fn mps_to_knots(mps: f64) -> f64 {
    mps * 3_600.0 / METERS_PER_NAUTICAL_MILE
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = GeoPoint::new(23.64, 37.94);
        assert_eq!(haversine_distance_m(p, p), 0.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = GeoPoint::new(23.64, 37.94); // Piraeus
        let b = GeoPoint::new(25.14, 35.34); // Heraklion
        assert!(close(
            haversine_distance_m(a, b),
            haversine_distance_m(b, a),
            1e-9
        ));
    }

    #[test]
    fn piraeus_to_heraklion_known_distance() {
        // Great-circle distance ≈ 317 km.
        let a = GeoPoint::new(23.6400, 37.9420);
        let b = GeoPoint::new(25.1442, 35.3387);
        let d = haversine_distance_m(a, b);
        assert!(d > 310_000.0 && d < 325_000.0, "got {d}");
    }

    #[test]
    fn one_degree_latitude_is_about_111km() {
        let a = GeoPoint::new(24.0, 37.0);
        let b = GeoPoint::new(24.0, 38.0);
        let d = haversine_distance_m(a, b);
        assert!(close(d, 111_195.0, 200.0), "got {d}");
    }

    #[test]
    fn bearing_due_north_east_south_west() {
        let origin = GeoPoint::new(24.0, 37.0);
        assert!(close(
            initial_bearing_deg(origin, GeoPoint::new(24.0, 38.0)),
            0.0,
            1e-6
        ));
        assert!(close(
            initial_bearing_deg(origin, GeoPoint::new(25.0, 37.0)),
            90.0,
            1.0
        ));
        assert!(close(
            initial_bearing_deg(origin, GeoPoint::new(24.0, 36.0)),
            180.0,
            1e-6
        ));
        assert!(close(
            initial_bearing_deg(origin, GeoPoint::new(23.0, 37.0)),
            270.0,
            1.0
        ));
    }

    #[test]
    fn bearing_of_coincident_points_is_zero() {
        let p = GeoPoint::new(24.0, 37.0);
        assert_eq!(initial_bearing_deg(p, p), 0.0);
    }

    #[test]
    fn destination_roundtrip_distance_and_bearing() {
        let start = GeoPoint::new(24.0, 37.0);
        let dest = destination(start, 63.0, 5_000.0);
        assert!(close(haversine_distance_m(start, dest), 5_000.0, 1.0));
        assert!(close(initial_bearing_deg(start, dest), 63.0, 0.1));
    }

    #[test]
    fn destination_normalizes_longitude_across_antimeridian() {
        let start = GeoPoint::new(179.9, 0.0);
        let dest = destination(start, 90.0, 50_000.0);
        assert!((-180.0..=180.0).contains(&dest.lon));
        assert!(dest.lon < 0.0, "should wrap to west longitudes: {}", dest.lon);
    }

    #[test]
    fn angle_diff_wraps_around_north() {
        assert!(close(angle_diff_deg(350.0, 10.0), 20.0, 1e-12));
        assert!(close(angle_diff_deg(10.0, 350.0), 20.0, 1e-12));
        assert!(close(angle_diff_deg(0.0, 180.0), 180.0, 1e-12));
        assert!(close(angle_diff_deg(90.0, 90.0), 0.0, 1e-12));
    }

    #[test]
    fn signed_angle_diff_sign_convention() {
        assert!(close(signed_angle_diff_deg(10.0, 30.0), 20.0, 1e-12));
        assert!(close(signed_angle_diff_deg(30.0, 10.0), -20.0, 1e-12));
        assert!(close(signed_angle_diff_deg(350.0, 10.0), 20.0, 1e-12));
        assert!(close(signed_angle_diff_deg(10.0, 350.0), -20.0, 1e-12));
    }

    #[test]
    fn knots_conversion_roundtrip() {
        let v = 12.5;
        assert!(close(mps_to_knots(knots_to_mps(v)), v, 1e-12));
        // 1 knot ≈ 0.514 m/s ≈ 1.852 km/h, as cited in the paper's Table 3.
        assert!(close(knots_to_mps(1.0), 1.852 / 3.6, 1e-9));
    }
}
