//! Uniform spatial grid index over areas.
//!
//! The `close/3` predicate is evaluated for every critical movement event
//! against 35 areas in the paper's experiments (§5.2). A linear scan is
//! acceptable at that scale, but the index makes the lookup O(areas in
//! cell) and is the substrate for the "precomputed spatial facts" variant
//! of Figure 11(b), where proximity is resolved in bulk before recognition.

use std::collections::HashMap;

use maritime_obs::{names, LazyCounter};

use crate::areas::{Area, AreaId};
use crate::bbox::BoundingBox;
use crate::point::GeoPoint;

/// Candidate lookups served, across every [`GridIndex`] in the process.
/// The increment is one relaxed atomic add — the lookup path stays
/// allocation-free (pinned by `tests/no_alloc.rs`).
static OBS_LOOKUPS: LazyCounter = LazyCounter::new(names::GEO_GRID_LOOKUPS);

/// A uniform grid over a bounding box, bucketing areas by the cells their
/// (threshold-inflated) bounding boxes overlap.
#[derive(Debug, Clone)]
pub struct GridIndex {
    extent: BoundingBox,
    cell_deg: f64,
    cols: usize,
    rows: usize,
    /// Cell -> candidate area indices (into `areas`).
    cells: HashMap<(usize, usize), Vec<usize>>,
    areas: Vec<Area>,
    /// Proximity threshold baked into the index, in meters.
    threshold_m: f64,
}

impl GridIndex {
    /// Builds an index over `areas` with the given cell size (degrees) and
    /// `close` threshold (meters). The extent is derived from the areas.
    #[must_use]
    pub fn build(areas: Vec<Area>, cell_deg: f64, threshold_m: f64) -> Self {
        assert!(cell_deg > 0.0, "cell size must be positive");
        let mut extent = BoundingBox::empty();
        for a in &areas {
            let b = a.polygon.bbox();
            extent.expand_to(GeoPoint { lon: b.min_lon, lat: b.min_lat });
            extent.expand_to(GeoPoint { lon: b.max_lon, lat: b.max_lat });
        }
        // Margin so that points just outside all areas still map to a cell.
        let margin = threshold_m / 111_000.0 * 1.5 + cell_deg;
        let extent = if areas.is_empty() {
            BoundingBox { min_lon: -1.0, min_lat: -1.0, max_lon: 1.0, max_lat: 1.0 }
        } else {
            extent.inflated(margin)
        };
        let cols = (extent.width_deg() / cell_deg).ceil().max(1.0) as usize;
        let rows = (extent.height_deg() / cell_deg).ceil().max(1.0) as usize;

        let mut cells: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
        let inflate_deg = threshold_m / 111_000.0 * 1.5;
        for (idx, area) in areas.iter().enumerate() {
            let b = area.polygon.bbox().inflated(inflate_deg);
            let (c0, r0) = clamp_cell(&extent, cell_deg, cols, rows, b.min_lon, b.min_lat);
            let (c1, r1) = clamp_cell(&extent, cell_deg, cols, rows, b.max_lon, b.max_lat);
            for c in c0..=c1 {
                for r in r0..=r1 {
                    cells.entry((c, r)).or_default().push(idx);
                }
            }
        }
        Self { extent, cell_deg, cols, rows, cells, areas, threshold_m }
    }

    /// All indexed areas, in insertion order.
    #[must_use]
    pub fn areas(&self) -> &[Area] {
        &self.areas
    }

    /// The proximity threshold the index was built with.
    #[must_use]
    pub fn threshold_m(&self) -> f64 {
        self.threshold_m
    }

    /// Areas whose `close` predicate holds for `p` (distance < threshold).
    pub fn close_areas(&self, p: GeoPoint) -> impl Iterator<Item = &Area> + '_ {
        self.candidates(p)
            .iter()
            .map(move |&i| &self.areas[i])
            .filter(move |a| a.is_close(p, self.threshold_m))
    }

    /// Ids of areas close to `p` — the bulk "spatial fact" form.
    #[must_use]
    pub fn close_area_ids(&self, p: GeoPoint) -> Vec<AreaId> {
        self.close_areas(p).map(|a| a.id).collect()
    }

    /// [`GridIndex::close_area_ids`] into a caller-owned buffer: `out` is
    /// cleared and refilled, so a warm buffer makes the lookup
    /// allocation-free.
    pub fn close_area_ids_into(&self, p: GeoPoint, out: &mut Vec<AreaId>) {
        out.clear();
        out.extend(self.close_areas(p).map(|a| a.id));
    }

    /// Areas that *contain* `p` (strict containment, not proximity).
    pub fn containing_areas(&self, p: GeoPoint) -> impl Iterator<Item = &Area> + '_ {
        self.candidates(p)
            .iter()
            .map(move |&i| &self.areas[i])
            .filter(move |a| a.contains(p))
    }

    /// Candidate area indices from the cell containing `p`. Borrowed from
    /// the index: the per-lookup path allocates nothing.
    #[must_use]
    pub fn candidates(&self, p: GeoPoint) -> &[usize] {
        OBS_LOOKUPS.inc();
        if !self.extent.contains(p) {
            return &[];
        }
        let (c, r) = clamp_cell(&self.extent, self.cell_deg, self.cols, self.rows, p.lon, p.lat);
        self.cells.get(&(c, r)).map_or(&[], Vec::as_slice)
    }

    /// Linear-scan reference implementation, used for correctness checks and
    /// the index-vs-scan ablation bench.
    #[must_use]
    pub fn close_area_ids_linear(&self, p: GeoPoint) -> Vec<AreaId> {
        let mut out = Vec::new();
        self.close_area_ids_linear_into(p, &mut out);
        out
    }

    /// [`GridIndex::close_area_ids_linear`] into a caller-owned buffer
    /// (cleared and refilled).
    pub fn close_area_ids_linear_into(&self, p: GeoPoint, out: &mut Vec<AreaId>) {
        out.clear();
        out.extend(
            self.areas
                .iter()
                .filter(|a| a.is_close(p, self.threshold_m))
                .map(|a| a.id),
        );
    }
}

fn clamp_cell(
    extent: &BoundingBox,
    cell_deg: f64,
    cols: usize,
    rows: usize,
    lon: f64,
    lat: f64,
) -> (usize, usize) {
    let c = ((lon - extent.min_lon) / cell_deg).floor().max(0.0) as usize;
    let r = ((lat - extent.min_lat) / cell_deg).floor().max(0.0) as usize;
    (c.min(cols - 1), r.min(rows - 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::areas::AreaKind;
    use crate::polygon::Polygon;

    fn sample_areas() -> Vec<Area> {
        vec![
            Area::new(
                AreaId(0),
                "west",
                AreaKind::Protected,
                Polygon::rectangle(GeoPoint::new(23.0, 37.0), GeoPoint::new(23.5, 37.5)),
            ),
            Area::new(
                AreaId(1),
                "east",
                AreaKind::ForbiddenFishing,
                Polygon::rectangle(GeoPoint::new(25.0, 38.0), GeoPoint::new(25.5, 38.5)),
            ),
        ]
    }

    #[test]
    fn finds_containing_area() {
        let idx = GridIndex::build(sample_areas(), 0.25, 5_000.0);
        let inside = GeoPoint::new(23.2, 37.2);
        let ids = idx.close_area_ids(inside);
        assert_eq!(ids, vec![AreaId(0)]);
        let containing: Vec<_> = idx.containing_areas(inside).map(|a| a.id).collect();
        assert_eq!(containing, vec![AreaId(0)]);
    }

    #[test]
    fn proximity_respects_threshold() {
        let idx = GridIndex::build(sample_areas(), 0.25, 5_000.0);
        // ~3.3 km east of the west rectangle at its mid-latitude.
        let near = GeoPoint::new(23.5 + 0.0375, 37.25);
        assert_eq!(idx.close_area_ids(near), vec![AreaId(0)]);
        // ~40 km away: not close to anything.
        let far = GeoPoint::new(24.0, 37.25);
        assert!(idx.close_area_ids(far).is_empty());
    }

    #[test]
    fn grid_matches_linear_scan() {
        let idx = GridIndex::build(sample_areas(), 0.1, 10_000.0);
        for lon in [22.9, 23.1, 23.4, 23.6, 24.2, 25.1, 25.6] {
            for lat in [36.9, 37.2, 37.6, 38.1, 38.6] {
                let p = GeoPoint::new(lon, lat);
                let mut a = idx.close_area_ids(p);
                let mut b = idx.close_area_ids_linear(p);
                a.sort();
                b.sort();
                assert_eq!(a, b, "mismatch at ({lon}, {lat})");
            }
        }
    }

    #[test]
    fn point_outside_extent_matches_nothing() {
        let idx = GridIndex::build(sample_areas(), 0.25, 5_000.0);
        assert!(idx.close_area_ids(GeoPoint::new(0.0, 0.0)).is_empty());
    }

    #[test]
    fn empty_index_is_safe() {
        let idx = GridIndex::build(Vec::new(), 0.25, 5_000.0);
        assert!(idx.close_area_ids(GeoPoint::new(23.0, 37.0)).is_empty());
        assert!(idx.areas().is_empty());
    }
}
