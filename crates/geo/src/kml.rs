//! Trajectory Exporter (Figure 1): KML polylines and placemarks.
//!
//! Once new trajectory events are detected per vessel upon each window
//! slide, "the annotated critical points can be readily emitted and
//! visualized on maps ... e.g., as KML polylines (for trajectories) and
//! placemarks (for vessel locations)" (§2).

use std::fmt::Write as _;

use crate::areas::Area;
use crate::point::GeoPoint;

/// Incremental KML document builder.
#[derive(Debug, Default)]
pub struct KmlWriter {
    body: String,
}

impl KmlWriter {
    /// Creates an empty document.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a polyline (`LineString`) for a vessel trajectory.
    pub fn add_polyline(&mut self, name: &str, points: &[GeoPoint]) {
        let _ = write!(
            self.body,
            "  <Placemark><name>{}</name><LineString><coordinates>",
            escape(name)
        );
        for p in points {
            let _ = write!(self.body, "{:.6},{:.6},0 ", p.lon, p.lat);
        }
        self.body.push_str("</coordinates></LineString></Placemark>\n");
    }

    /// Adds a point placemark, e.g. an annotated critical point.
    pub fn add_placemark(&mut self, name: &str, description: &str, p: GeoPoint) {
        let _ = writeln!(
            self.body,
            "  <Placemark><name>{}</name><description>{}</description>\
             <Point><coordinates>{:.6},{:.6},0</coordinates></Point></Placemark>",
            escape(name),
            escape(description),
            p.lon,
            p.lat
        );
    }

    /// Adds an area polygon with its kind as description.
    pub fn add_area(&mut self, area: &Area) {
        let _ = write!(
            self.body,
            "  <Placemark><name>{}</name><description>{}</description>\
             <Polygon><outerBoundaryIs><LinearRing><coordinates>",
            escape(&area.name),
            area.kind.label()
        );
        for p in area.polygon.vertices() {
            let _ = write!(self.body, "{:.6},{:.6},0 ", p.lon, p.lat);
        }
        // Close the ring.
        if let Some(first) = area.polygon.vertices().first() {
            let _ = write!(self.body, "{:.6},{:.6},0 ", first.lon, first.lat);
        }
        self.body
            .push_str("</coordinates></LinearRing></outerBoundaryIs></Polygon></Placemark>\n");
    }

    /// Finalizes the document into a complete KML string.
    #[must_use]
    pub fn finish(self) -> String {
        format!(
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n\
             <kml xmlns=\"http://www.opengis.net/kml/2.2\">\n<Document>\n{}</Document>\n</kml>\n",
            self.body
        )
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::areas::{AreaId, AreaKind};
    use crate::polygon::Polygon;

    #[test]
    fn empty_document_is_well_formed() {
        let doc = KmlWriter::new().finish();
        assert!(doc.starts_with("<?xml"));
        assert!(doc.contains("<Document>"));
        assert!(doc.trim_end().ends_with("</kml>"));
    }

    #[test]
    fn polyline_contains_all_coordinates() {
        let mut w = KmlWriter::new();
        w.add_polyline("v1", &[GeoPoint::new(23.5, 37.5), GeoPoint::new(23.6, 37.6)]);
        let doc = w.finish();
        assert!(doc.contains("23.500000,37.500000,0"));
        assert!(doc.contains("23.600000,37.600000,0"));
        assert!(doc.contains("<LineString>"));
    }

    #[test]
    fn placemark_escapes_special_characters() {
        let mut w = KmlWriter::new();
        w.add_placemark("stop & turn", "<speed>", GeoPoint::new(23.5, 37.5));
        let doc = w.finish();
        assert!(doc.contains("stop &amp; turn"));
        assert!(doc.contains("&lt;speed&gt;"));
        assert!(!doc.contains("<speed>"));
    }

    #[test]
    fn area_ring_is_closed() {
        let mut w = KmlWriter::new();
        let area = Area::new(
            AreaId(0),
            "zone",
            AreaKind::Protected,
            Polygon::rectangle(GeoPoint::new(23.0, 37.0), GeoPoint::new(23.1, 37.1)),
        );
        w.add_area(&area);
        let doc = w.finish();
        // First vertex appears twice: once opening, once closing the ring.
        assert_eq!(doc.matches("23.000000,37.000000,0").count(), 2);
        assert!(doc.contains("protected"));
    }
}
