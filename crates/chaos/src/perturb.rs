//! The perturbation layer: applying a [`ChaosPlan`] to a sentence stream.
//!
//! A stream is a list of `(arrival_secs, sentence)` pairs — the same
//! shape `surveil` replays log files in. Applying a plan is a pure
//! function of `(plan, stream)`: every random decision comes from an RNG
//! derived from the plan seed, the op's position, and the op's variant,
//! so replaying a plan (or any shrunk sub-plan) is bit-exact.
//!
//! Op semantics worth spelling out:
//!
//! * [`ChaosOp::Reorder`] permutes *arrival order* only. Each sentence
//!   gets a sort key `t + u` with `u` uniform in `[0, skew]`; a stable
//!   sort by that key displaces arrivals by at most `skew` seconds. Any
//!   two sentences more than `skew` apart keep their relative order, so
//!   with skew ≤ the admission window the admission buffer provably
//!   restores the canonical stream — the bounded-reorder oracle.
//! * [`ChaosOp::Duplicate`] re-sends a copy immediately after the
//!   original at the same arrival time. Duplicates survive admission (a
//!   multiplicity buffer) and die in the tracker, which ignores stale
//!   per-vessel fixes — the duplicate-idempotence oracle.
//! * [`ChaosOp::Truncate`] / [`ChaosOp::Corrupt`] damage the sentence
//!   text but leave the checksum stale, so the scanner *must* reject the
//!   line; a damaged sentence is equivalent to a dropped one, which is
//!   why these ops are not CE-preserving.

use std::collections::BTreeSet;

use maritime_ais::nmea;
use maritime_obs::{names, LazyCounter};
use maritime_stream::Timestamp;

use crate::plan::{ChaosOp, ChaosPlan};
use crate::rng::{mix64, ChaosRng};

static OBS_OPS: LazyCounter = LazyCounter::new(names::CHAOS_OPS_APPLIED);
static OBS_DROPPED: LazyCounter = LazyCounter::new(names::CHAOS_SENTENCES_DROPPED);
static OBS_DUPLICATED: LazyCounter = LazyCounter::new(names::CHAOS_SENTENCES_DUPLICATED);
static OBS_CORRUPTED: LazyCounter = LazyCounter::new(names::CHAOS_SENTENCES_CORRUPTED);
static OBS_DELAYED: LazyCounter = LazyCounter::new(names::CHAOS_SENTENCES_DELAYED);

/// One `(arrival_secs, sentence)` stream element.
pub type StreamLine = (i64, String);

/// What a plan application did to the stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PerturbStats {
    /// Ops applied (the plan length).
    pub ops_applied: usize,
    /// Sentences removed (drop, vessel drop, gap burst).
    pub dropped: u64,
    /// Duplicate sentences inserted.
    pub duplicated: u64,
    /// Sentences truncated or payload-corrupted.
    pub corrupted: u64,
    /// Sentences displaced in arrival time (reorder, jitter, late).
    pub delayed: u64,
    /// MMSIs silenced by [`ChaosOp::DropVessels`] — the gap-monotonicity
    /// oracle needs to know exactly whose evidence was removed.
    pub dropped_vessels: BTreeSet<u32>,
}

/// A compiled perturbation: a plan ready to apply to streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Perturbation {
    plan: ChaosPlan,
}

impl Perturbation {
    /// Wraps a plan.
    #[must_use]
    pub fn new(plan: ChaosPlan) -> Self {
        Self { plan }
    }

    /// A single-op bounded-reorder perturbation — the standalone
    /// metamorphic property of the proptest suite.
    #[must_use]
    pub fn reorder(seed: u64, skew_secs: i64) -> Self {
        Self::new(ChaosPlan::new(seed, vec![ChaosOp::Reorder { skew_secs }]))
    }

    /// The underlying plan.
    #[must_use]
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    /// Applies every op in order, returning the perturbed stream and what
    /// was done to it.
    #[must_use]
    pub fn apply(&self, lines: &[StreamLine]) -> (Vec<StreamLine>, PerturbStats) {
        let mut out: Vec<StreamLine> = lines.to_vec();
        let mut stats = PerturbStats::default();
        for (index, op) in self.plan.ops.iter().enumerate() {
            let rng = self.plan.op_rng(index, op);
            out = apply_op(op, rng, out, &mut stats);
            stats.ops_applied += 1;
            OBS_OPS.inc();
        }
        (out, stats)
    }
}

impl ChaosPlan {
    /// Applies this plan to a stream — shorthand for
    /// [`Perturbation::apply`].
    #[must_use]
    pub fn apply(&self, lines: &[StreamLine]) -> (Vec<StreamLine>, PerturbStats) {
        Perturbation::new(self.clone()).apply(lines)
    }
}

fn apply_op(
    op: &ChaosOp,
    mut rng: ChaosRng,
    lines: Vec<StreamLine>,
    stats: &mut PerturbStats,
) -> Vec<StreamLine> {
    match *op {
        ChaosOp::Reorder { skew_secs } => {
            let mut keyed: Vec<(i64, usize, StreamLine)> = lines
                .into_iter()
                .enumerate()
                .map(|(i, (t, line))| {
                    let u = rng.range_i64(0, skew_secs.max(0));
                    (t + u, i, (t, line))
                })
                .collect();
            keyed.sort_by_key(|&(key, i, _)| (key, i));
            let moved = keyed
                .iter()
                .enumerate()
                .filter(|(pos, &(_, i, _))| *pos != i)
                .count() as u64;
            stats.delayed += moved;
            OBS_DELAYED.add(moved);
            keyed.into_iter().map(|(_, _, item)| item).collect()
        }
        ChaosOp::Duplicate { per_mille } => {
            let mut out = Vec::with_capacity(lines.len());
            for (t, line) in lines {
                let dup = rng.chance(per_mille);
                if dup {
                    out.push((t, line.clone()));
                    stats.duplicated += 1;
                    OBS_DUPLICATED.inc();
                }
                out.push((t, line));
            }
            out
        }
        ChaosOp::Drop { per_mille } => {
            let mut out = Vec::with_capacity(lines.len());
            for item in lines {
                if rng.chance(per_mille) {
                    stats.dropped += 1;
                    OBS_DROPPED.inc();
                } else {
                    out.push(item);
                }
            }
            out
        }
        ChaosOp::DropVessels { per_mille } => {
            let salt = rng.next_u64();
            let mut out = Vec::with_capacity(lines.len());
            for (t, line) in lines {
                let silenced = line_mmsi(&line).is_some_and(|mmsi| {
                    if mix64(salt ^ u64::from(mmsi)) % 1000 < u64::from(per_mille) {
                        stats.dropped_vessels.insert(mmsi);
                        true
                    } else {
                        false
                    }
                });
                if silenced {
                    stats.dropped += 1;
                    OBS_DROPPED.inc();
                } else {
                    out.push((t, line));
                }
            }
            out
        }
        ChaosOp::GapBurst {
            start_secs,
            duration_secs,
        } => {
            let gap = start_secs..start_secs + duration_secs.max(0);
            let mut out = Vec::with_capacity(lines.len());
            for (t, line) in lines {
                if gap.contains(&t) {
                    stats.dropped += 1;
                    OBS_DROPPED.inc();
                } else {
                    out.push((t, line));
                }
            }
            out
        }
        ChaosOp::Jitter { max_secs } => lines
            .into_iter()
            .map(|(t, line)| {
                let r = rng.range_i64(-max_secs.max(0), max_secs.max(0));
                if r != 0 {
                    stats.delayed += 1;
                    OBS_DELAYED.inc();
                }
                ((t + r).max(0), line)
            })
            .collect(),
        ChaosOp::Truncate { per_mille } => lines
            .into_iter()
            .map(|(t, line)| {
                if line.len() > 1 && rng.chance(per_mille) {
                    let cut = 1 + rng.below(line.len() as u64 - 1) as usize;
                    stats.corrupted += 1;
                    OBS_CORRUPTED.inc();
                    (t, line[..cut].to_string())
                } else {
                    (t, line)
                }
            })
            .collect(),
        ChaosOp::Corrupt { per_mille } => lines
            .into_iter()
            .map(|(t, line)| {
                if rng.chance(per_mille) {
                    if let Some(damaged) = corrupt_payload(&line, &mut rng) {
                        stats.corrupted += 1;
                        OBS_CORRUPTED.inc();
                        return (t, damaged);
                    }
                }
                (t, line)
            })
            .collect(),
        ChaosOp::LateArrival {
            per_mille,
            delay_secs,
        } => {
            // Selected sentences leave the stream and come back once
            // arrivals reach `t + delay` — report timestamps untouched.
            let mut out = Vec::with_capacity(lines.len());
            let mut held: Vec<(i64, StreamLine)> = Vec::new();
            for (t, line) in lines {
                if rng.chance(per_mille) {
                    held.push((t + delay_secs.max(0), (t, line)));
                    stats.delayed += 1;
                    OBS_DELAYED.inc();
                    continue;
                }
                let mut i = 0;
                while i < held.len() {
                    if held[i].0 <= t {
                        out.push(held.remove(i).1);
                    } else {
                        i += 1;
                    }
                }
                out.push((t, line));
            }
            out.extend(held.into_iter().map(|(_, item)| item));
            out
        }
        // A process-level fault: the harness interprets the kill schedule;
        // the stream itself is untouched.
        ChaosOp::KillPartition { .. } => lines,
    }
}

/// The MMSI of a single-fragment position-report sentence; `None` for
/// fragments, voyage declarations, and anything undecodable. Used to
/// silence vessels by identity rather than stream position.
#[must_use]
pub fn line_mmsi(line: &str) -> Option<u32> {
    let sentence = nmea::parse_sentence(line).ok()?;
    if sentence.total > 1 {
        return None;
    }
    let report = nmea::decode_payload(&sentence.payload, sentence.fill_bits, Timestamp(0)).ok()?;
    Some(report.mmsi.0)
}

/// Flips one payload byte, leaving the checksum stale (the same damage
/// model as the replay corruptor in `crates/ais`): the field layout
/// survives but verification must fail. Returns `None` when the line has
/// no corruptible payload span.
fn corrupt_payload(line: &str, rng: &mut ChaosRng) -> Option<String> {
    let bytes = line.as_bytes();
    let commas: Vec<usize> = bytes
        .iter()
        .enumerate()
        .filter_map(|(i, b)| (*b == b',').then_some(i))
        .collect();
    let star = line.rfind('*')?;
    if commas.len() < 5 || star <= commas[4] + 2 {
        return None;
    }
    let idx = commas[4] + 1 + rng.below((star - 1 - commas[4] - 1) as u64) as usize;
    let mut out = bytes.to_vec();
    out[idx] = if out[idx] == b'0' { b'1' } else { b'0' };
    Some(String::from_utf8(out).expect("ASCII in, ASCII out"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(n: i64) -> Vec<StreamLine> {
        (0..n).map(|i| (i * 10, format!("line-{i}"))).collect()
    }

    fn plan(op: ChaosOp) -> ChaosPlan {
        ChaosPlan::new(99, vec![op])
    }

    #[test]
    fn apply_is_deterministic() {
        let p = ChaosPlan::hostile(7);
        let input = stream(200);
        let (a, sa) = p.apply(&input);
        let (b, sb) = p.apply(&input);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn reorder_bounds_displacement() {
        let skew = 60;
        let input = stream(500);
        let (out, stats) = plan(ChaosOp::Reorder { skew_secs: skew }).apply(&input);
        assert_eq!(out.len(), input.len());
        assert!(stats.delayed > 0, "500 items, some must move");
        // Multiset preserved.
        let mut a = out.clone();
        let mut b = input.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // No sentence overtakes one more than `skew` older than it.
        for (pos, (t, _)) in out.iter().enumerate() {
            for (t_later, _) in &out[pos + 1..] {
                assert!(t_later + skew >= *t, "{t_later} then {t} exceeds skew");
            }
        }
    }

    #[test]
    fn duplicate_inserts_adjacent_same_time_copies() {
        let input = stream(300);
        let (out, stats) = plan(ChaosOp::Duplicate { per_mille: 200 }).apply(&input);
        assert_eq!(out.len(), input.len() + stats.duplicated as usize);
        assert!(stats.duplicated > 20, "~60 expected, got {}", stats.duplicated);
        // Every duplicate is adjacent to its original.
        for w in out.windows(2) {
            if w[0] == w[1] {
                assert_eq!(w[0].0, w[1].0);
            }
        }
    }

    #[test]
    fn drop_and_gap_remove_sentences() {
        let input = stream(300);
        let (out, stats) = plan(ChaosOp::Drop { per_mille: 100 }).apply(&input);
        assert_eq!(out.len() + stats.dropped as usize, input.len());
        assert!(stats.dropped > 0);

        let (out, stats) = plan(ChaosOp::GapBurst {
            start_secs: 1_000,
            duration_secs: 500,
        })
        .apply(&input);
        assert_eq!(stats.dropped, 50, "timestamps 1000..1500 step 10");
        assert!(out.iter().all(|(t, _)| !(1_000..1_500).contains(t)));
    }

    #[test]
    fn jitter_moves_timestamps_not_order() {
        let input = stream(100);
        let (out, stats) = plan(ChaosOp::Jitter { max_secs: 15 }).apply(&input);
        assert_eq!(out.len(), input.len());
        assert!(stats.delayed > 0);
        for ((t_out, l_out), (t_in, l_in)) in out.iter().zip(&input) {
            assert_eq!(l_out, l_in, "order unchanged");
            assert!((t_out - t_in).abs() <= 15);
            assert!(*t_out >= 0);
        }
    }

    #[test]
    fn late_arrival_displaces_forward_keeping_timestamp() {
        let input = stream(200);
        let (out, stats) = plan(ChaosOp::LateArrival {
            per_mille: 100,
            delay_secs: 300,
        })
        .apply(&input);
        assert_eq!(out.len(), input.len());
        assert!(stats.delayed > 0);
        let mut a = out.clone();
        let mut b = input.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b, "multiset preserved, timestamps untouched");
        assert_ne!(out, input, "but arrival order changed");
    }

    #[test]
    fn truncate_and_corrupt_damage_real_sentences() {
        use maritime_ais::types::{AisMessageType, PositionReport};
        use maritime_ais::Mmsi;
        use maritime_geo::GeoPoint;
        let lines: Vec<StreamLine> = (0..200)
            .map(|i| {
                let report = PositionReport {
                    mmsi: Mmsi(237_000_001 + i),
                    msg_type: AisMessageType::PositionReportClassA,
                    position: GeoPoint::new(24.0 + f64::from(i) * 0.001, 37.5),
                    sog_knots: Some(8.0),
                    cog_deg: Some(45.0),
                    timestamp: Timestamp(i64::from(i) * 10),
                };
                (i64::from(i) * 10, nmea::encode_report(&report))
            })
            .collect();

        let (out, stats) = plan(ChaosOp::Truncate { per_mille: 300 }).apply(&lines);
        assert!(stats.corrupted > 20);
        let shorter = out
            .iter()
            .zip(&lines)
            .filter(|((_, a), (_, b))| a.len() < b.len())
            .count();
        assert_eq!(shorter as u64, stats.corrupted);

        let (out, stats) = plan(ChaosOp::Corrupt { per_mille: 300 }).apply(&lines);
        assert!(stats.corrupted > 20);
        // Every corrupted sentence must be rejected by the parser (stale
        // checksum), never silently accepted as different data.
        let mut rejected = 0;
        for ((_, damaged), (_, original)) in out.iter().zip(&lines) {
            if damaged != original {
                assert!(nmea::parse_sentence(damaged).is_err(), "{damaged}");
                rejected += 1;
            }
        }
        assert_eq!(rejected, stats.corrupted);
    }

    #[test]
    fn drop_vessels_silences_by_identity() {
        use maritime_ais::types::{AisMessageType, PositionReport};
        use maritime_ais::Mmsi;
        use maritime_geo::GeoPoint;
        let lines: Vec<StreamLine> = (0..300)
            .map(|i| {
                let report = PositionReport {
                    mmsi: Mmsi(237_000_001 + (i % 10)),
                    msg_type: AisMessageType::PositionReportClassA,
                    position: GeoPoint::new(24.5, 37.5),
                    sog_knots: Some(8.0),
                    cog_deg: Some(45.0),
                    timestamp: Timestamp(i64::from(i) * 10),
                };
                (i64::from(i) * 10, nmea::encode_report(&report))
            })
            .collect();
        let (out, stats) = plan(ChaosOp::DropVessels { per_mille: 400 }).apply(&lines);
        assert!(!stats.dropped_vessels.is_empty(), "~4 of 10 vessels");
        assert!(stats.dropped_vessels.len() < 10, "not everyone");
        assert_eq!(
            stats.dropped as usize,
            stats.dropped_vessels.len() * 30,
            "30 reports per silenced vessel"
        );
        for (_, line) in &out {
            let mmsi = line_mmsi(line).expect("all lines are position reports");
            assert!(!stats.dropped_vessels.contains(&mmsi));
        }
    }

    #[test]
    fn ops_compose_in_order() {
        let p = ChaosPlan::new(
            5,
            vec![
                ChaosOp::Duplicate { per_mille: 100 },
                ChaosOp::Drop { per_mille: 100 },
                ChaosOp::Reorder { skew_secs: 40 },
            ],
        );
        let input = stream(200);
        let (out, stats) = p.apply(&input);
        assert_eq!(stats.ops_applied, 3);
        assert_eq!(
            out.len(),
            input.len() + stats.duplicated as usize - stats.dropped as usize
        );
    }
}
