//! Socket-level fault injection: the transport hostilities a resident
//! `surveil serve` ingests through, modelled deterministically.
//!
//! The stream perturbations in [`crate::perturb`] damage *sentences*; the
//! ops here damage *connections*. A sourced stream is a list of
//! `(connection_id, arrival_secs, sentence)` triples — the shape the
//! server's listener layer hands to admission — and every op is a pure
//! function of its parameters plus the plan seed, so a socket fault
//! schedule replays bit-exact just like a [`crate::ChaosPlan`].
//!
//! The op semantics mirror what the real listener does (see `SERVING.md`):
//!
//! * a **mid-sentence cut** leaves a partial line in the read buffer; the
//!   server discards it, so the model removes that line and re-tags the
//!   source's later lines with a fresh connection id (defragmenter state
//!   does not survive a reconnect);
//! * a **half-open** source goes silent without closing — its remaining
//!   lines are simply lost;
//! * a **reconnect storm** cuts on clean line boundaries and retransmits
//!   the last few lines after each reconnect, producing exactly the
//!   cross-connection duplicates the per-source dedup layer must absorb;
//! * a **bounded reorder** models per-connection receive scheduling: the
//!   kernel may interleave concurrent sources' deliveries within the
//!   admission skew.

use serde::{Deserialize, Serialize};

use crate::rng::{mix64, ChaosRng};

/// One `(connection_id, arrival_secs, sentence)` element of a sourced
/// stream. Connection ids encode their physical source: source `s`'s
/// first connection is `s * SOURCE_STRIDE`, and each reconnect bumps the
/// id by one, so `id / SOURCE_STRIDE` always recovers the source.
pub type SourcedLine = (u32, i64, String);

/// Connection-id stride per physical source (room for reconnects).
pub const SOURCE_STRIDE: u32 = 1000;

/// The physical source behind a connection id.
#[must_use]
pub fn source_of(connection: u32) -> u32 {
    connection / SOURCE_STRIDE
}

/// One socket-level fault.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SocketOp {
    /// Cut source `source`'s connection mid-sentence at the given stream
    /// fraction: the in-flight line loses its tail (the server discards
    /// the partial), and the source reconnects as a fresh connection.
    CutMidSentence {
        /// The physical source to cut.
        source: u32,
        /// Cut position as a per-mille fraction of the source's lines.
        at_per_mille: u32,
    },
    /// The source goes silent at the given fraction without ever closing
    /// the socket; everything it would have sent afterwards is lost.
    /// `at_per_mille: 0` silences the source entirely — the socket
    /// analogue of [`crate::ChaosOp::DropVessels`] when sources are
    /// distributed by vessel.
    HalfOpen {
        /// The physical source that goes half-open.
        source: u32,
        /// Silence position as a per-mille fraction of the source's lines.
        at_per_mille: u32,
    },
    /// `times` evenly spaced clean disconnects; after each, the source
    /// reconnects (fresh connection id) and retransmits its last `resend`
    /// lines. Loses nothing, duplicates plenty — CE-preserving.
    ReconnectStorm {
        /// The physical source that flaps.
        source: u32,
        /// Number of disconnect/reconnect cycles.
        times: u32,
        /// Lines retransmitted after each reconnect.
        resend: u32,
    },
    /// Permute arrival order across all sources with displacement at most
    /// `skew_secs` (the sourced analogue of [`crate::ChaosOp::Reorder`]):
    /// within the admission skew this must be invisible.
    Reorder {
        /// Maximum arrival displacement, seconds.
        skew_secs: i64,
    },
}

impl SocketOp {
    /// Short stable name, used in logs and stats.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            SocketOp::CutMidSentence { .. } => "cut_mid_sentence",
            SocketOp::HalfOpen { .. } => "half_open",
            SocketOp::ReconnectStorm { .. } => "reconnect_storm",
            SocketOp::Reorder { .. } => "reorder",
        }
    }

    fn tag(&self) -> u64 {
        match self {
            SocketOp::CutMidSentence { .. } => 0x11,
            SocketOp::HalfOpen { .. } => 0x12,
            SocketOp::ReconnectStorm { .. } => 0x13,
            SocketOp::Reorder { .. } => 0x14,
        }
    }

    /// Whether this op is CE-preserving: it loses no sentence and keeps
    /// arrival displacement within the admission skew. Only clean-boundary
    /// reconnect storms (pure duplication) and bounded reorders qualify.
    #[must_use]
    pub fn preserves_ces(&self, admission_skew_secs: i64) -> bool {
        match self {
            SocketOp::ReconnectStorm { .. } => true,
            SocketOp::Reorder { skew_secs } => *skew_secs <= admission_skew_secs,
            _ => false,
        }
    }

    /// When this op silences a source from the very first line, returns
    /// that source — the case where the vessel-projection oracle applies
    /// (everything the source carried is gone, nothing else is touched).
    #[must_use]
    pub fn silences_source(&self) -> Option<u32> {
        match self {
            SocketOp::HalfOpen {
                source,
                at_per_mille: 0,
            } => Some(*source),
            _ => None,
        }
    }
}

/// A replayable socket fault schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SocketPlan {
    /// Master seed; each op derives its own RNG stream from it.
    pub seed: u64,
    /// Faults, applied in order.
    pub ops: Vec<SocketOp>,
}

/// What applying a [`SocketPlan`] did to a sourced stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SocketStats {
    /// Ops applied (the plan length).
    pub ops_applied: usize,
    /// Connection cuts (mid-sentence + storm cycles + half-opens).
    pub cuts: u64,
    /// Lines lost to a mid-sentence truncation.
    pub truncated: u64,
    /// Lines lost to a half-open tail.
    pub lost: u64,
    /// Duplicate lines retransmitted after reconnects.
    pub resent: u64,
    /// Lines displaced in arrival order by reorders.
    pub displaced: u64,
}

impl SocketPlan {
    /// A plan from parts.
    #[must_use]
    pub fn new(seed: u64, ops: Vec<SocketOp>) -> Self {
        Self { seed, ops }
    }

    /// Serializes to JSON (CI artifacts).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("plan serializes")
    }

    /// Parses a plan from JSON.
    ///
    /// # Errors
    /// If the JSON is not a valid socket plan.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Whether every op is CE-preserving under the given admission skew.
    #[must_use]
    pub fn preserves_ces(&self, admission_skew_secs: i64) -> bool {
        self.ops
            .iter()
            .all(|op| op.preserves_ces(admission_skew_secs))
    }

    /// Sources silenced from their first line by this plan (see
    /// [`SocketOp::silences_source`]).
    #[must_use]
    pub fn silenced_sources(&self) -> Vec<u32> {
        self.ops.iter().filter_map(SocketOp::silences_source).collect()
    }

    /// Generates a CE-preserving plan: 1–2 reconnect storms plus possibly
    /// a bounded reorder — the socket analogue of
    /// [`crate::ChaosPlan::equivalence`].
    #[must_use]
    pub fn storm(seed: u64, n_sources: u32, admission_skew_secs: i64) -> Self {
        let mut rng = ChaosRng::new(mix64(seed ^ 0x50C4));
        let mut ops: Vec<SocketOp> = (0..=rng.below(2))
            .map(|_| SocketOp::ReconnectStorm {
                source: 1 + rng.below(u64::from(n_sources.max(1))) as u32,
                times: 1 + rng.below(3) as u32,
                resend: 1 + rng.below(4) as u32,
            })
            .collect();
        if rng.chance(500) {
            ops.push(SocketOp::Reorder {
                skew_secs: rng.range_i64(1, admission_skew_secs.max(1)),
            });
        }
        Self::new(seed, ops)
    }

    /// Generates a hostile plan: 2–3 ops of any kind. The input to the
    /// cross-engine agreement oracle.
    #[must_use]
    pub fn hostile(seed: u64, n_sources: u32) -> Self {
        let mut rng = ChaosRng::new(mix64(seed ^ 0x50C5));
        let n = 2 + rng.below(2) as usize;
        let ops = (0..n)
            .map(|_| {
                let source = 1 + rng.below(u64::from(n_sources.max(1))) as u32;
                match rng.below(4) {
                    0 => SocketOp::CutMidSentence {
                        source,
                        at_per_mille: 100 + rng.below(800) as u32,
                    },
                    1 => SocketOp::HalfOpen {
                        source,
                        at_per_mille: 200 + rng.below(700) as u32,
                    },
                    2 => SocketOp::ReconnectStorm {
                        source,
                        times: 1 + rng.below(4) as u32,
                        resend: rng.below(5) as u32,
                    },
                    _ => SocketOp::Reorder {
                        skew_secs: rng.range_i64(30, 600),
                    },
                }
            })
            .collect();
        Self::new(seed, ops)
    }

    /// The RNG for op number `index` — position- and variant-seeded like
    /// [`crate::ChaosPlan::op_rng`], so shrinking never re-randomizes
    /// surviving ops.
    #[must_use]
    pub fn op_rng(&self, index: usize, op: &SocketOp) -> ChaosRng {
        ChaosRng::new(mix64(self.seed ^ (index as u64).wrapping_mul(0x9E37) ^ op.tag()))
    }

    /// Applies every op in order. Pure: same plan + same stream → same
    /// perturbed stream, forever.
    #[must_use]
    pub fn apply(&self, lines: &[SourcedLine]) -> (Vec<SourcedLine>, SocketStats) {
        let mut out: Vec<SourcedLine> = lines.to_vec();
        let mut stats = SocketStats::default();
        for (index, op) in self.ops.iter().enumerate() {
            let rng = self.op_rng(index, op);
            out = apply_op(op, rng, out, &mut stats);
            stats.ops_applied += 1;
        }
        (out, stats)
    }
}

/// Positions (indices into `lines`) carried by physical source `source`.
fn positions_of(lines: &[SourcedLine], source: u32) -> Vec<usize> {
    lines
        .iter()
        .enumerate()
        .filter(|(_, (conn, _, _))| source_of(*conn) == source)
        .map(|(i, _)| i)
        .collect()
}

/// Reconnect: bump the connection generation of every line of `source`
/// at stream position ≥ `from`.
fn reconnect_after(lines: &mut [SourcedLine], source: u32, from: usize) {
    for (conn, _, _) in lines[from..]
        .iter_mut()
        .filter(|(conn, _, _)| source_of(*conn) == source)
    {
        *conn += 1;
    }
}

fn apply_op(
    op: &SocketOp,
    mut rng: ChaosRng,
    mut lines: Vec<SourcedLine>,
    stats: &mut SocketStats,
) -> Vec<SourcedLine> {
    match *op {
        SocketOp::CutMidSentence { source, at_per_mille } => {
            let pos = positions_of(&lines, source);
            if pos.is_empty() {
                return lines;
            }
            let cut = pos[(pos.len() - 1).min(pos.len() * at_per_mille.min(999) as usize / 1000)];
            // The in-flight line's tail never arrives; the server discards
            // the partial and the source comes back as a new connection.
            lines.remove(cut);
            reconnect_after(&mut lines, source, cut);
            stats.cuts += 1;
            stats.truncated += 1;
            lines
        }
        SocketOp::HalfOpen { source, at_per_mille } => {
            let pos = positions_of(&lines, source);
            if pos.is_empty() {
                return lines;
            }
            let from = pos.len() * at_per_mille.min(999) as usize / 1000;
            let dead: std::collections::BTreeSet<usize> = pos[from..].iter().copied().collect();
            stats.cuts += 1;
            stats.lost += dead.len() as u64;
            lines
                .into_iter()
                .enumerate()
                .filter(|(i, _)| !dead.contains(i))
                .map(|(_, l)| l)
                .collect()
        }
        SocketOp::ReconnectStorm { source, times, resend } => {
            for k in 1..=u64::from(times) {
                let pos = positions_of(&lines, source);
                if pos.len() < 2 {
                    break;
                }
                // Cut on a clean line boundary at the k-th evenly spaced
                // position, then retransmit the last `resend` lines on the
                // fresh connection.
                let cut_at = pos[(pos.len() as u64 * k / (u64::from(times) + 1)) as usize];
                reconnect_after(&mut lines, source, cut_at);
                let replay: Vec<SourcedLine> = pos
                    .iter()
                    .rev()
                    .skip_while(|&&i| i >= cut_at)
                    .take(resend as usize)
                    .map(|&i| lines[i].clone())
                    .collect();
                let new_conn = lines[cut_at].0;
                for (offset, (_, t, line)) in replay.into_iter().rev().enumerate() {
                    lines.insert(cut_at + offset, (new_conn, t, line));
                    stats.resent += 1;
                }
                stats.cuts += 1;
            }
            lines
        }
        SocketOp::Reorder { skew_secs } => {
            let mut keyed: Vec<(i64, SourcedLine)> = lines
                .into_iter()
                .map(|l| {
                    let u = rng.range_i64(0, skew_secs.max(0));
                    if u != 0 {
                        stats.displaced += 1;
                    }
                    (l.1 + u, l)
                })
                .collect();
            keyed.sort_by_key(|(k, _)| *k); // stable: ties keep order
            keyed.into_iter().map(|(_, l)| l).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(n_per_source: usize, sources: u32) -> Vec<SourcedLine> {
        let mut lines = Vec::new();
        for i in 0..n_per_source {
            for s in 1..=sources {
                lines.push((s * SOURCE_STRIDE, (i * 10) as i64, format!("s{s}-line{i}")));
            }
        }
        lines
    }

    #[test]
    fn json_roundtrip_every_variant() {
        let plan = SocketPlan::new(
            7,
            vec![
                SocketOp::CutMidSentence { source: 1, at_per_mille: 500 },
                SocketOp::HalfOpen { source: 2, at_per_mille: 0 },
                SocketOp::ReconnectStorm { source: 1, times: 3, resend: 2 },
                SocketOp::Reorder { skew_secs: 60 },
            ],
        );
        assert_eq!(SocketPlan::from_json(&plan.to_json()).unwrap(), plan);
        assert!(!plan.preserves_ces(120));
        assert_eq!(plan.silenced_sources(), vec![2]);
    }

    #[test]
    fn cut_mid_sentence_loses_exactly_one_line_and_reconnects() {
        let lines = stream(10, 2);
        let plan = SocketPlan::new(
            0,
            vec![SocketOp::CutMidSentence { source: 1, at_per_mille: 500 }],
        );
        let (out, stats) = plan.apply(&lines);
        assert_eq!(out.len(), lines.len() - 1);
        assert_eq!(stats.truncated, 1);
        // Source 1's later lines are on a fresh connection; source 2's
        // untouched.
        assert!(out.iter().any(|(c, _, _)| *c == SOURCE_STRIDE + 1));
        assert!(out.iter().all(|(c, _, _)| source_of(*c) != 2 || *c == 2 * SOURCE_STRIDE));
    }

    #[test]
    fn half_open_at_zero_silences_the_source() {
        let lines = stream(10, 2);
        let plan = SocketPlan::new(0, vec![SocketOp::HalfOpen { source: 2, at_per_mille: 0 }]);
        let (out, stats) = plan.apply(&lines);
        assert_eq!(stats.lost, 10);
        assert!(out.iter().all(|(c, _, _)| source_of(*c) == 1));
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn reconnect_storm_loses_nothing_and_duplicates_cleanly() {
        let lines = stream(12, 2);
        let plan = SocketPlan::new(
            3,
            vec![SocketOp::ReconnectStorm { source: 1, times: 2, resend: 3 }],
        );
        let (out, stats) = plan.apply(&lines);
        assert_eq!(stats.lost, 0);
        assert_eq!(stats.truncated, 0);
        assert_eq!(stats.resent, 6);
        assert_eq!(out.len(), lines.len() + 6);
        // Every original sentence survives, in per-source order.
        let survived: Vec<&str> = out
            .iter()
            .filter(|(c, _, _)| source_of(*c) == 1)
            .map(|(_, _, l)| l.as_str())
            .collect();
        for i in 0..12 {
            assert!(survived.contains(&format!("s1-line{i}").as_str()));
        }
        // Retransmits ride the post-reconnect connection id.
        assert!(out.iter().any(|(c, _, _)| *c > SOURCE_STRIDE && source_of(*c) == 1));
    }

    #[test]
    fn reorder_is_bounded_and_deterministic() {
        let lines = stream(30, 3);
        let plan = SocketPlan::new(11, vec![SocketOp::Reorder { skew_secs: 15 }]);
        let (a, _) = plan.apply(&lines);
        let (b, _) = plan.apply(&lines);
        assert_eq!(a, b);
        assert_eq!(a.len(), lines.len());
        // Same multiset of lines.
        let mut sa: Vec<_> = a.iter().map(|(_, _, l)| l.clone()).collect();
        let mut sb: Vec<_> = lines.iter().map(|(_, _, l)| l.clone()).collect();
        sa.sort();
        sb.sort();
        assert_eq!(sa, sb);
    }

    #[test]
    fn generators_are_deterministic() {
        for seed in 0..20 {
            assert_eq!(SocketPlan::storm(seed, 3, 120), SocketPlan::storm(seed, 3, 120));
            assert_eq!(SocketPlan::hostile(seed, 3), SocketPlan::hostile(seed, 3));
            assert!(SocketPlan::storm(seed, 3, 120).preserves_ces(120));
            let h = SocketPlan::hostile(seed, 3);
            assert!((2..=3).contains(&h.ops.len()));
        }
    }
}
