//! Deterministic demo sentence streams for chaos runs.
//!
//! The chaos harness needs a raw NMEA stream (the perturbations operate
//! on sentences, not decoded tuples) whose clean-run CE output is
//! nontrivial. This builds one from the synthetic Aegean fleet: each
//! vessel declares a type-5 static & voyage message, then streams its
//! position reports.
//!
//! Type-5 declarations get *distinct per-vessel arrival times* (vessel
//! `i` declares at `t = i`). AIS sequential message ids are only 0–9, so
//! with ≥ 10 vessels the ids recycle; at distinct timestamps the
//! canonical `(t, line)` ordering keeps each fragment pair adjacent, and
//! only injected faults (not the baseline) can interleave two messages
//! sharing an id — exactly the hostile condition the truncated-fragment
//! accounting exists for.

use maritime_ais::nmea::encode_report;
use maritime_ais::voyage::{encode_static_voyage, StaticVoyageData};
use maritime_ais::{FleetConfig, FleetSimulator};
use maritime_cer::VesselInfo;
use maritime_stream::Duration;

use crate::perturb::StreamLine;

/// Builds a deterministic `(arrival_secs, sentence)` stream plus the
/// fleet's vessel descriptions (the static knowledge recognition needs).
/// Same `(seed, vessels, hours)` → same stream, forever.
#[must_use]
pub fn demo_sentences(seed: u64, vessels: usize, hours: i64) -> (Vec<StreamLine>, Vec<VesselInfo>) {
    // The oracles are vacuous on a stream that recognizes nothing, so the
    // chaos fleet is deliberately badly behaved: everyone takes deliberate
    // communication gaps, and half the fleet is fishing.
    sentences_for(FleetConfig {
        vessels,
        duration: Duration::hours(hours),
        seed,
        rogue_fraction: 1.0,
        fishing_fraction: 0.5,
        ..FleetConfig::default()
    })
}

/// Like [`demo_sentences`], but a well-behaved fleet: no deliberate gaps,
/// so an incremental recognizer's delta path applies at almost every
/// query. The late-arrival fallback test needs this calm baseline — on
/// the rogue fleet, backdated gap events already force full recomputes
/// and would mask the effect of injected late arrivals.
#[must_use]
pub fn calm_sentences(seed: u64, vessels: usize, hours: i64) -> (Vec<StreamLine>, Vec<VesselInfo>) {
    sentences_for(FleetConfig {
        vessels,
        duration: Duration::hours(hours),
        seed,
        rogue_fraction: 0.0,
        ..FleetConfig::default()
    })
}

/// Builds the demo stream of [`demo_sentences`] *tagged by physical
/// source*: vessel `i`'s declaration and every one of its reports arrive
/// on source `1 + (i % n_sources)`, so each multi-fragment declaration
/// stays on one connection and silencing a source silences a known vessel
/// set. Returns the sourced stream (connection ids per
/// [`crate::socket::SOURCE_STRIDE`]), the fleet's static facts, and the
/// MMSIs carried by each source (index 0 = source 1).
///
/// Stripping the source tags yields exactly the [`demo_sentences`] stream
/// — the sourced world is the same world, observed through `n` sockets.
#[must_use]
pub fn sourced_demo_sentences(
    seed: u64,
    vessels: usize,
    hours: i64,
    n_sources: u32,
) -> (
    Vec<crate::socket::SourcedLine>,
    Vec<VesselInfo>,
    Vec<std::collections::BTreeSet<u32>>,
) {
    use crate::socket::SOURCE_STRIDE;
    let n = n_sources.max(1);
    // Rebuild the demo world line by line, tagging each at construction —
    // the streams stay identical because the sort key is the same.
    let sim = FleetSimulator::new(FleetConfig {
        vessels,
        duration: Duration::hours(hours),
        seed,
        rogue_fraction: 1.0,
        fishing_fraction: 0.5,
        ..FleetConfig::default()
    });
    let mut lines: Vec<crate::socket::SourcedLine> = Vec::new();
    let mut mmsi_by_source: Vec<std::collections::BTreeSet<u32>> =
        vec![std::collections::BTreeSet::new(); n as usize];
    let mut source_by_mmsi: std::collections::HashMap<u32, u32> =
        std::collections::HashMap::new();
    for (i, profile) in sim.profiles().iter().enumerate() {
        let source = 1 + (i as u32 % n);
        mmsi_by_source[(source - 1) as usize].insert(profile.mmsi.0);
        source_by_mmsi.insert(profile.mmsi.0, source);
        let data = StaticVoyageData {
            mmsi: profile.mmsi,
            imo: 9_000_000 + i as u32,
            callsign: format!("SV{i:04}"),
            name: format!("CHAOS VESSEL {i}"),
            ship_type: if profile.is_fishing { 30 } else { 70 },
            draught_m: profile.draft_m,
            destination: String::new(),
        };
        let [s1, s2] = encode_static_voyage(&data, (i % 10) as u8);
        lines.push((source * SOURCE_STRIDE, i as i64, s1));
        lines.push((source * SOURCE_STRIDE, i as i64, s2));
    }
    for report in sim.generate() {
        let source = source_by_mmsi[&report.mmsi.0];
        lines.push((
            source * SOURCE_STRIDE,
            report.timestamp.as_secs(),
            encode_report(&report),
        ));
    }
    lines.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.2.cmp(&b.2)));
    let infos = sim.profiles().iter().map(VesselInfo::from).collect();
    (lines, infos, mmsi_by_source)
}

fn sentences_for(config: FleetConfig) -> (Vec<StreamLine>, Vec<VesselInfo>) {
    let sim = FleetSimulator::new(config);
    let mut lines: Vec<StreamLine> = Vec::new();
    for (i, profile) in sim.profiles().iter().enumerate() {
        let data = StaticVoyageData {
            mmsi: profile.mmsi,
            imo: 9_000_000 + i as u32,
            callsign: format!("SV{i:04}"),
            name: format!("CHAOS VESSEL {i}"),
            ship_type: if profile.is_fishing { 30 } else { 70 },
            draught_m: profile.draft_m,
            destination: String::new(),
        };
        let [s1, s2] = encode_static_voyage(&data, (i % 10) as u8);
        lines.push((i as i64, s1));
        lines.push((i as i64, s2));
    }
    for report in sim.generate() {
        lines.push((report.timestamp.as_secs(), encode_report(&report)));
    }
    lines.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    let vessels = sim.profiles().iter().map(VesselInfo::from).collect();
    (lines, vessels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_sorted() {
        let (a, va) = demo_sentences(0xF1EE7, 8, 2);
        let (b, vb) = demo_sentences(0xF1EE7, 8, 2);
        assert_eq!(a, b);
        assert_eq!(va.len(), vb.len());
        assert_eq!(va.len(), 8);
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0));
        // 16 declaration fragments plus a healthy report volume.
        assert!(a.len() > 100, "{} lines", a.len());
    }

    #[test]
    fn sourced_stream_is_the_demo_stream_with_tags() {
        let (sourced, vessels, mmsis) = sourced_demo_sentences(0xF1EE7, 12, 2, 3);
        let (plain, _) = demo_sentences(0xF1EE7, 12, 2);
        let stripped: Vec<StreamLine> =
            sourced.iter().map(|(_, t, l)| (*t, l.clone())).collect();
        assert_eq!(stripped, plain, "same world, observed through sockets");
        assert_eq!(vessels.len(), 12);
        assert_eq!(mmsis.len(), 3);
        assert_eq!(mmsis.iter().map(std::collections::BTreeSet::len).sum::<usize>(), 12);
        // Every fragment pair rides one connection: scanning per source
        // must assemble all twelve declarations with nothing pending.
        let mut scanner = maritime_ais::DataScanner::new();
        for (conn, t, line) in &sourced {
            scanner.scan_from(*conn, line, maritime_stream::Timestamp(*t));
        }
        assert_eq!(scanner.stats().voyage_declarations, 12);
        // Nothing left half-assembled at end of stream.
        assert_eq!(scanner.finish(maritime_stream::Timestamp(i64::MAX)), 0);
    }

    #[test]
    fn declaration_pairs_stay_adjacent_in_canonical_order() {
        let (lines, _) = demo_sentences(1, 25, 1);
        // Vessel i's two fragments are the only sentences at t = i < 25
        // (position reports start later), so each pair is adjacent even
        // though sequential ids recycle after vessel 9.
        let mut scanner = maritime_ais::DataScanner::new();
        for (t, line) in &lines {
            scanner.scan(line, maritime_stream::Timestamp(*t));
        }
        assert_eq!(scanner.stats().voyage_declarations, 25);
        assert_eq!(scanner.finish(maritime_stream::Timestamp(i64::MAX)), 0);
    }
}
