//! SplitMix64: the chaos harness's deterministic random source.
//!
//! The harness deliberately does not use the workspace's `rand`
//! stand-in: a [`ChaosPlan`](crate::ChaosPlan) must replay bit-identically
//! forever, including from golden fixtures pinned in the repository, so
//! its randomness has to come from an algorithm simple enough to be part
//! of the plan format itself. SplitMix64 (Steele, Lea & Flood 2014) is
//! one `u64` of state, three shift-xor-multiply rounds, and has no knobs
//! to drift.

/// A SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct ChaosRng {
    state: u64,
}

/// The 64-bit golden-ratio increment SplitMix64 advances by.
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl ChaosRng {
    /// A generator seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value in `[0, n)`; `n = 0` is treated as 1. The modulo bias is
    /// irrelevant at fault-injection sample sizes and keeps replay exact.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// A value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    /// If `lo > hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi - lo) as u64 + 1;
        lo + self.below(span) as i64
    }

    /// Bernoulli draw: true with probability `per_mille / 1000`.
    pub fn chance(&mut self, per_mille: u32) -> bool {
        self.below(1000) < u64::from(per_mille)
    }
}

/// One stateless SplitMix64 mixing round — used to derive per-vessel
/// decisions (e.g. "is this MMSI in the dropped set?") that must not
/// depend on stream position.
#[must_use]
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(GOLDEN_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = ChaosRng::new(42);
        let mut b = ChaosRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = ChaosRng::new(1);
        let mut b = ChaosRng::new(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn pinned_first_outputs() {
        // Guards the algorithm itself: golden chaos fixtures depend on
        // these exact values never changing.
        let mut r = ChaosRng::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn range_and_chance_behave() {
        let mut r = ChaosRng::new(7);
        for _ in 0..200 {
            let v = r.range_i64(-30, 30);
            assert!((-30..=30).contains(&v));
        }
        assert!((0..100).all(|_| !r.chance(0)));
        assert!((0..100).all(|_| r.chance(1000)));
    }

    #[test]
    fn mix64_is_stateless_and_stable() {
        assert_eq!(mix64(5), mix64(5));
        assert_ne!(mix64(5), mix64(6));
    }
}
