//! Deterministic stream fault injection and metamorphic CE oracles.
//!
//! The paper's recognition pipeline is evaluated on a cleaned dataset
//! (§5: "when decoded and cleaned from corrupt messages"), but deployed
//! AIS feeds are noisy, delayed, duplicated, and out of order. This crate
//! makes that hostility *reproducible*: a [`ChaosPlan`] is a seed plus a
//! list of perturbation ops, and applying the same plan to the same
//! sentence stream always yields the same perturbed stream — so any
//! failure it provokes can be replayed from a JSON file.
//!
//! On top of the perturbations sit metamorphic oracles over recognized
//! complex events (the [`oracle`] module): known input transformations
//! with known output relations —
//!
//! * **duplicate-idempotence**: re-sent sentences change nothing;
//! * **bounded-reorder equivalence**: arrival permutations within the
//!   admission window are byte-identical;
//! * **gap-monotonicity**: dropping vessels' positions never *creates*
//!   CE evidence — surviving vessels' alerts are preserved exactly and
//!   every durative CE interval stays inside a baseline interval
//!   ([`maritime_rtec::IntervalList::covers`]);
//! * **cross-engine agreement**: serial, sharded, incremental, and traced
//!   engines must agree on perturbed streams, not just clean ones.
//!
//! When an oracle fails, [`shrink`] bisects the op list (delta debugging)
//! to a minimal reproducing plan. The `surveil chaos` subcommand drives
//! the whole loop; `TESTING.md` documents how to replay its artifacts.
//!
//! The [`socket`] module extends the same discipline to transport faults:
//! mid-sentence disconnects, half-open sources, and reconnect storms over
//! a multi-connection stream (`surveil serve`'s input shape), judged by
//! the same oracles via the core crate's sourced chaos runner.

#![warn(missing_docs)]

pub mod gen;
pub mod oracle;
pub mod perturb;
pub mod plan;
pub mod rng;
pub mod shrink;
pub mod socket;

pub use gen::{calm_sentences, demo_sentences, sourced_demo_sentences};
pub use oracle::{CeObservation, OracleViolation, QuerySnapshot};
pub use perturb::{Perturbation, PerturbStats, StreamLine};
pub use plan::{ChaosOp, ChaosPlan};
pub use rng::ChaosRng;
pub use shrink::shrink_plan;
pub use socket::{SocketOp, SocketPlan, SocketStats, SourcedLine};
