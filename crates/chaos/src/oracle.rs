//! Metamorphic oracles over recognized complex events.
//!
//! A metamorphic oracle does not know the *correct* CE set for a stream —
//! nobody does, that's why differential and metamorphic testing exist —
//! but it knows how the CE set must *relate* across a known input
//! transformation:
//!
//! | transformation | relation |
//! |---|---|
//! | duplicate sentences | identical output ([`check_identical`]) |
//! | reorder within admission skew | identical output ([`check_identical`]) |
//! | any perturbation, engine A vs B | identical output ([`check_agreement`]) |
//! | silence a vessel subset | projection ([`check_vessel_projection`]) |
//!
//! The unit of comparison is a [`CeObservation`]: everything recognition
//! produced over a run, canonically rendered. Equality of fingerprints is
//! byte-equality of every per-query canonical summary — the same standard
//! the differential harnesses hold engine pairs to on clean streams.

use std::collections::BTreeSet;
use std::fmt;

use maritime_cer::{AlertKind, RecognitionSummary};
use maritime_geo::AreaId;
use maritime_obs::{names, LazyCounter};
use maritime_rtec::IntervalList;

static OBS_CHECKS: LazyCounter = LazyCounter::new(names::CHAOS_ORACLE_CHECKS);
static OBS_FAILURES: LazyCounter = LazyCounter::new(names::CHAOS_ORACLE_FAILURES);

/// One recognition query's results, canonically rendered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySnapshot {
    /// Query time, stream seconds.
    pub query_secs: i64,
    /// `suspicious(Area)` maximal intervals at this query.
    pub suspicious: Vec<(AreaId, IntervalList)>,
    /// `illegalFishing(Area)` maximal intervals at this query.
    pub illegal_fishing: Vec<(AreaId, IntervalList)>,
    /// The full canonical JSON of the summary (intervals, alerts, counts).
    pub canon: String,
}

/// An instantaneous alert, keyed for set comparison:
/// `(at_secs, kind, mmsi, area)`.
pub type AlertKey = (i64, u8, u32, u32);

fn kind_code(kind: AlertKind) -> u8 {
    match kind {
        AlertKind::IllegalShipping => 0,
        AlertKind::DangerousShipping => 1,
    }
}

/// Everything recognition produced over one engine run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CeObservation {
    /// Per-query snapshots, in query order.
    pub queries: Vec<QuerySnapshot>,
    /// Distinct instantaneous alerts across the run. Summaries re-report
    /// an alert for every window that still contains it, so the set (not
    /// the sequence) is the meaningful object.
    pub alerts: BTreeSet<AlertKey>,
    /// Total CE count summed over queries.
    pub ce_total: usize,
}

impl CeObservation {
    /// An empty observation.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds in one query's summary.
    pub fn record_summary(&mut self, summary: &RecognitionSummary) {
        self.queries.push(QuerySnapshot {
            query_secs: summary.query_time.as_secs(),
            suspicious: summary.suspicious.clone(),
            illegal_fishing: summary.illegal_fishing.clone(),
            canon: summary.canonical_json(),
        });
        for (t, alert) in &summary.alerts {
            self.alerts
                .insert((t.as_secs(), kind_code(alert.kind), alert.vessel.0, alert.area.0));
        }
        self.ce_total += summary.ce_count;
    }

    /// The canonical rendering of the whole run: per-query canonical
    /// summaries plus the distinct alert set. Two runs recognized the
    /// same complex events iff their fingerprints are byte-equal.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        let mut out = String::new();
        for q in &self.queries {
            out.push_str(&q.canon);
            out.push('\n');
        }
        out.push_str("alerts:");
        for (t, kind, mmsi, area) in &self.alerts {
            out.push_str(&format!(" ({t},{kind},{mmsi},{area})"));
        }
        out.push_str(&format!("\nce_total:{}", self.ce_total));
        out
    }
}

/// A failed oracle check: which oracle, and what it saw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleViolation {
    /// The oracle that failed ("duplicate-idempotence", …).
    pub oracle: &'static str,
    /// Human-oriented description of the divergence.
    pub detail: String,
}

impl fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "oracle {} violated: {}", self.oracle, self.detail)
    }
}

impl std::error::Error for OracleViolation {}

fn checked(result: Result<(), OracleViolation>) -> Result<(), OracleViolation> {
    OBS_CHECKS.inc();
    if result.is_err() {
        OBS_FAILURES.inc();
    }
    result
}

/// The first point where two observations diverge, rendered tersely.
fn first_divergence(base: &CeObservation, other: &CeObservation) -> String {
    if base.queries.len() != other.queries.len() {
        return format!(
            "query counts differ: {} vs {}",
            base.queries.len(),
            other.queries.len()
        );
    }
    for (b, o) in base.queries.iter().zip(&other.queries) {
        if b != o {
            return format!(
                "first divergent query at t={}: {} vs {}",
                b.query_secs, b.canon, o.canon
            );
        }
    }
    if base.alerts != other.alerts {
        let extra: Vec<_> = other.alerts.difference(&base.alerts).collect();
        let missing: Vec<_> = base.alerts.difference(&other.alerts).collect();
        return format!("alerts differ: extra {extra:?}, missing {missing:?}");
    }
    format!("ce_total {} vs {}", base.ce_total, other.ce_total)
}

/// Byte-identity oracle: used for duplicate-idempotence and
/// bounded-reorder equivalence, where the transformation must be
/// invisible to recognition.
///
/// # Errors
/// When the observations differ anywhere.
pub fn check_identical(
    oracle: &'static str,
    base: &CeObservation,
    other: &CeObservation,
) -> Result<(), OracleViolation> {
    checked(if base.fingerprint() == other.fingerprint() {
        Ok(())
    } else {
        Err(OracleViolation {
            oracle,
            detail: first_divergence(base, other),
        })
    })
}

/// Cross-engine agreement oracle: every labelled observation must be
/// byte-identical to the first. Engines may all be wrong about a hostile
/// stream, but they must be wrong *identically* — divergence means the
/// parallel/incremental/traced machinery, not the event description,
/// changed behaviour.
///
/// # Errors
/// Naming the first engine that disagrees with the first label.
pub fn check_agreement(runs: &[(&'static str, &CeObservation)]) -> Result<(), OracleViolation> {
    let Some(((first_label, first), rest)) = runs.split_first() else {
        return Ok(());
    };
    for (label, obs) in rest {
        let result = checked(if first.fingerprint() == obs.fingerprint() {
            Ok(())
        } else {
            Err(OracleViolation {
                oracle: "cross-engine-agreement",
                detail: format!(
                    "{first_label} vs {label}: {}",
                    first_divergence(first, obs)
                ),
            })
        });
        result?;
    }
    Ok(())
}

/// Gap-monotonicity (projection) oracle for vessel silencing.
///
/// Removing every position report of a vessel subset removes evidence and
/// nothing else, so on the thinned stream:
///
/// * no instantaneous alert may name a silenced vessel, and surviving
///   vessels' alerts must match the baseline's exactly (per-vessel
///   tracking and pointwise alert rules make them independent of the
///   silenced vessels);
/// * every durative CE interval (`suspicious`, `illegalFishing` — both
///   derived from vessel-count/evidence thresholds that can only drop)
///   must lie *within* a baseline interval for the same area at the same
///   query: intervals may shrink, split, or vanish, never grow or appear
///   ([`IntervalList::covers`]).
///
/// Queries are aligned by query time; the perturbed run may end earlier
/// (if the globally last report belonged to a silenced vessel), so only
/// the common prefix of query times is compared, and baseline alerts are
/// restricted to that horizon.
///
/// # Errors
/// On any created alert, created/grown interval, or missing surviving
/// alert.
pub fn check_vessel_projection(
    base: &CeObservation,
    thinned: &CeObservation,
    silenced: &BTreeSet<u32>,
) -> Result<(), OracleViolation> {
    checked(vessel_projection_inner(base, thinned, silenced))
}

fn vessel_projection_inner(
    base: &CeObservation,
    thinned: &CeObservation,
    silenced: &BTreeSet<u32>,
) -> Result<(), OracleViolation> {
    let oracle = "gap-monotonicity";
    let fail = |detail: String| Err(OracleViolation { oracle, detail });

    // Align queries by time: each thinned query must exist in the base.
    for tq in &thinned.queries {
        let Some(bq) = base.queries.iter().find(|q| q.query_secs == tq.query_secs) else {
            return fail(format!(
                "thinned run queried at t={} but baseline never did",
                tq.query_secs
            ));
        };
        for (label, thinned_areas, base_areas) in [
            ("suspicious", &tq.suspicious, &bq.suspicious),
            ("illegalFishing", &tq.illegal_fishing, &bq.illegal_fishing),
        ] {
            for (area, list) in thinned_areas {
                let baseline = base_areas
                    .iter()
                    .find(|(a, _)| a == area)
                    .map(|(_, l)| l.clone())
                    .unwrap_or_default();
                for interval in list.intervals() {
                    if !baseline.covers(interval) {
                        return fail(format!(
                            "q={} {label}(area {}) interval {interval:?} not covered by \
                             baseline {baseline:?} — dropping vessels created CE evidence",
                            tq.query_secs, area.0
                        ));
                    }
                }
            }
        }
    }

    // Alert projection on the common horizon.
    let horizon = thinned.queries.last().map_or(i64::MIN, |q| q.query_secs);
    for key in &thinned.alerts {
        if silenced.contains(&key.2) {
            return fail(format!(
                "alert {key:?} names silenced vessel {}",
                key.2
            ));
        }
    }
    let expected: BTreeSet<AlertKey> = base
        .alerts
        .iter()
        .filter(|(t, _, mmsi, _)| *t <= horizon && !silenced.contains(mmsi))
        .copied()
        .collect();
    if thinned.alerts != expected {
        let extra: Vec<_> = thinned.alerts.difference(&expected).collect();
        let missing: Vec<_> = expected.difference(&thinned.alerts).collect();
        return fail(format!(
            "surviving-vessel alerts diverge: extra {extra:?}, missing {missing:?}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use maritime_rtec::{Interval, Timestamp};

    fn snapshot(q: i64, canon: &str) -> QuerySnapshot {
        QuerySnapshot {
            query_secs: q,
            suspicious: Vec::new(),
            illegal_fishing: Vec::new(),
            canon: canon.to_string(),
        }
    }

    #[test]
    fn identical_passes_and_divergence_is_located() {
        let mut a = CeObservation::new();
        a.queries.push(snapshot(3_600, "x"));
        a.ce_total = 1;
        let b = a.clone();
        assert!(check_identical("test", &a, &b).is_ok());

        let mut c = a.clone();
        c.queries[0].canon = "y".into();
        let err = check_identical("test", &a, &c).unwrap_err();
        assert_eq!(err.oracle, "test");
        assert!(err.detail.contains("t=3600"), "{}", err.detail);
    }

    #[test]
    fn agreement_names_the_divergent_engine() {
        let mut a = CeObservation::new();
        a.queries.push(snapshot(100, "same"));
        let b = a.clone();
        let mut c = a.clone();
        c.ce_total = 9;
        assert!(check_agreement(&[("serial", &a), ("sharded", &b)]).is_ok());
        let err =
            check_agreement(&[("serial", &a), ("sharded", &b), ("traced", &c)]).unwrap_err();
        assert!(err.detail.contains("traced"), "{}", err.detail);
    }

    #[test]
    fn projection_accepts_shrunk_intervals_rejects_created_ones() {
        let area = AreaId(3);
        let baseline_list = IntervalList::from_intervals(vec![Interval::closed(
            Timestamp(1_000),
            Timestamp(5_000),
        )]);
        let mut base = CeObservation::new();
        base.queries.push(QuerySnapshot {
            query_secs: 7_200,
            suspicious: vec![(area, baseline_list)],
            illegal_fishing: Vec::new(),
            canon: "b".into(),
        });

        let shrunk = IntervalList::from_intervals(vec![Interval::closed(
            Timestamp(2_000),
            Timestamp(4_000),
        )]);
        let mut thin = CeObservation::new();
        thin.queries.push(QuerySnapshot {
            query_secs: 7_200,
            suspicious: vec![(area, shrunk)],
            illegal_fishing: Vec::new(),
            canon: "t".into(),
        });
        assert!(check_vessel_projection(&base, &thin, &BTreeSet::new()).is_ok());

        let grown = IntervalList::from_intervals(vec![Interval::closed(
            Timestamp(500),
            Timestamp(4_000),
        )]);
        thin.queries[0].suspicious = vec![(area, grown)];
        let err = check_vessel_projection(&base, &thin, &BTreeSet::new()).unwrap_err();
        assert!(err.detail.contains("not covered"), "{}", err.detail);
    }

    #[test]
    fn projection_checks_alert_sets_on_common_horizon() {
        let silenced: BTreeSet<u32> = [7].into();
        let mut base = CeObservation::new();
        base.queries.push(snapshot(3_600, "a"));
        base.queries.push(snapshot(7_200, "b"));
        base.alerts.insert((1_000, 0, 5, 1)); // survivor, early
        base.alerts.insert((5_000, 0, 5, 1)); // survivor, after horizon
        base.alerts.insert((1_200, 1, 7, 2)); // silenced vessel

        // Thinned run ends at the first query; only the early survivor
        // alert must remain.
        let mut thin = CeObservation::new();
        thin.queries.push(snapshot(3_600, "a"));
        thin.alerts.insert((1_000, 0, 5, 1));
        assert!(check_vessel_projection(&base, &thin, &silenced).is_ok());

        // A silenced vessel's alert appearing is a violation.
        thin.alerts.insert((1_200, 1, 7, 2));
        assert!(check_vessel_projection(&base, &thin, &silenced).is_err());
        thin.alerts.remove(&(1_200, 1, 7, 2));

        // Losing a survivor's alert is a violation too.
        thin.alerts.clear();
        let err = check_vessel_projection(&base, &thin, &silenced).unwrap_err();
        assert!(err.detail.contains("missing"), "{}", err.detail);
    }
}
