//! Chaos plans: a seed plus a list of perturbation ops.
//!
//! A [`ChaosPlan`] is the unit of fault injection, of failure
//! reproduction, and of shrinking: everything the perturbation layer does
//! is a pure function of `(plan, input stream)`, and the plan serializes
//! to JSON so a CI failure can ship its exact fault schedule as an
//! artifact. Rates are expressed in integer per-mille (`per_mille`)
//! rather than floats so plans are `Eq`, hashable in spirit, and
//! round-trip JSON exactly.

use serde::{Deserialize, Serialize};

use crate::rng::{mix64, ChaosRng};

/// One stream perturbation. Ops apply in plan order, each with its own
/// deterministic RNG stream, so removing an op (shrinking) never changes
/// what the remaining ops do.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChaosOp {
    /// Permute arrival order with timestamp displacement ≤ `skew_secs`
    /// (report timestamps are untouched — only *when* sentences show up
    /// changes). With skew within the admission window this is the
    /// bounded-reorder metamorphic transformation: CE output must be
    /// byte-identical.
    Reorder {
        /// Maximum arrival displacement, seconds.
        skew_secs: i64,
    },
    /// Re-send ~`per_mille`/1000 of sentences immediately after the
    /// original, at the same arrival time. The duplicate-idempotence
    /// transformation: CE output must be byte-identical.
    Duplicate {
        /// Duplication rate, per mille.
        per_mille: u32,
    },
    /// Discard ~`per_mille`/1000 of sentences uniformly.
    Drop {
        /// Drop rate, per mille.
        per_mille: u32,
    },
    /// Discard every position report of ~`per_mille`/1000 of vessels
    /// (selected by MMSI hash, not stream position). The
    /// gap-monotonicity transformation: surviving vessels' CEs must be
    /// preserved, and nothing new may appear.
    DropVessels {
        /// Fraction of vessels silenced, per mille.
        per_mille: u32,
    },
    /// A burst communication gap: every sentence arriving in
    /// `[start_secs, start_secs + duration_secs)` is lost, as when a
    /// base station goes down.
    GapBurst {
        /// Gap start, stream seconds.
        start_secs: i64,
        /// Gap length, seconds.
        duration_secs: i64,
    },
    /// Shift each sentence's *arrival* time by a uniform offset in
    /// `[-max_secs, max_secs]` without re-sorting — modelling receiver
    /// clock wobble. Displacements beyond the admission skew surface as
    /// late admissions.
    Jitter {
        /// Maximum absolute displacement, seconds.
        max_secs: i64,
    },
    /// Cut ~`per_mille`/1000 of sentences short mid-transmission.
    Truncate {
        /// Truncation rate, per mille.
        per_mille: u32,
    },
    /// Flip a payload byte in ~`per_mille`/1000 of sentences (the
    /// checksum is left stale, so the scanner must reject them).
    Corrupt {
        /// Corruption rate, per mille.
        per_mille: u32,
    },
    /// Delay ~`per_mille`/1000 of sentences by `delay_secs` of *arrival*
    /// time, keeping their report timestamps — genuine late arrivals,
    /// the trigger for the incremental engine's full-recompute fallback.
    LateArrival {
        /// Fraction of sentences delayed, per mille.
        per_mille: u32,
        /// Arrival delay, seconds.
        delay_secs: i64,
    },
    /// Crash one recognition partition at stream time `at_secs`: the
    /// band's engine is checkpointed, dropped, and restored from the
    /// checkpoint before the next query. A process-level fault, not a
    /// stream perturbation — the stream passes through untouched, and the
    /// harness interprets the schedule. Kill/restore must be transparent
    /// (checkpoints are exact), so this op is CE-preserving; the oracles
    /// prove it.
    KillPartition {
        /// Crash time, stream seconds.
        at_secs: i64,
        /// The band to kill (modulo the engine's band count).
        band: u32,
    },
}

impl ChaosOp {
    /// Short stable name, used in logs and stats.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ChaosOp::Reorder { .. } => "reorder",
            ChaosOp::Duplicate { .. } => "duplicate",
            ChaosOp::Drop { .. } => "drop",
            ChaosOp::DropVessels { .. } => "drop_vessels",
            ChaosOp::GapBurst { .. } => "gap_burst",
            ChaosOp::Jitter { .. } => "jitter",
            ChaosOp::Truncate { .. } => "truncate",
            ChaosOp::Corrupt { .. } => "corrupt",
            ChaosOp::LateArrival { .. } => "late_arrival",
            ChaosOp::KillPartition { .. } => "kill_partition",
        }
    }

    /// A per-variant constant folded into the op's RNG seed so two
    /// different ops at the same plan position draw unrelated streams.
    #[must_use]
    pub(crate) fn tag(&self) -> u64 {
        match self {
            ChaosOp::Reorder { .. } => 0x01,
            ChaosOp::Duplicate { .. } => 0x02,
            ChaosOp::Drop { .. } => 0x03,
            ChaosOp::DropVessels { .. } => 0x04,
            ChaosOp::GapBurst { .. } => 0x05,
            ChaosOp::Jitter { .. } => 0x06,
            ChaosOp::Truncate { .. } => 0x07,
            ChaosOp::Corrupt { .. } => 0x08,
            ChaosOp::LateArrival { .. } => 0x09,
            ChaosOp::KillPartition { .. } => 0x0A,
        }
    }

    /// Whether this op is CE-preserving by construction — safe to use in
    /// equivalence (byte-identical) plans. Only adjacent same-time
    /// duplication and admission-window reordering qualify: every other
    /// op removes, damages, or re-times information the recognizer sees.
    #[must_use]
    pub fn preserves_ces(&self, admission_skew_secs: i64) -> bool {
        match self {
            ChaosOp::Duplicate { .. } | ChaosOp::KillPartition { .. } => true,
            ChaosOp::Reorder { skew_secs } => *skew_secs <= admission_skew_secs,
            _ => false,
        }
    }
}

/// A replayable fault schedule: `seed` drives every op's randomness, and
/// `ops` apply in order. Serializes to JSON for CI artifacts and golden
/// fixtures.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosPlan {
    /// Master seed; each op derives its own stream from it.
    pub seed: u64,
    /// Perturbations, applied in order.
    pub ops: Vec<ChaosOp>,
}

impl ChaosPlan {
    /// A plan from parts.
    #[must_use]
    pub fn new(seed: u64, ops: Vec<ChaosOp>) -> Self {
        Self { seed, ops }
    }

    /// Serializes to JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("plan serializes")
    }

    /// Parses a plan from JSON (e.g. a CI failure artifact).
    ///
    /// # Errors
    /// If the JSON is not a valid plan.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// The RNG for op number `index` of this plan. Seeded independently
    /// per position *and* per variant, so shrinking the op list never
    /// changes how surviving ops behave relative to their own position.
    #[must_use]
    pub fn op_rng(&self, index: usize, op: &ChaosOp) -> ChaosRng {
        ChaosRng::new(mix64(self.seed ^ (index as u64).wrapping_mul(0x9E37) ^ op.tag()))
    }

    /// Generates a CE-preserving plan (1–3 ops drawn from duplication and
    /// admission-window reordering): the input to the
    /// duplicate-idempotence and bounded-reorder equivalence oracles.
    #[must_use]
    pub fn equivalence(seed: u64, admission_skew_secs: i64) -> Self {
        let mut rng = ChaosRng::new(mix64(seed ^ 0xE9));
        let n = 1 + rng.below(3) as usize;
        let ops = (0..n)
            .map(|_| {
                if rng.chance(500) {
                    ChaosOp::Duplicate {
                        per_mille: 10 + rng.below(90) as u32,
                    }
                } else {
                    ChaosOp::Reorder {
                        skew_secs: rng.range_i64(1, admission_skew_secs.max(1)),
                    }
                }
            })
            .collect();
        Self::new(seed, ops)
    }

    /// Generates a hostile plan (2–4 ops of any kind): the input to the
    /// cross-engine agreement oracle, which demands that all engines
    /// degrade *identically*, whatever the damage.
    #[must_use]
    pub fn hostile(seed: u64) -> Self {
        let mut rng = ChaosRng::new(mix64(seed ^ 0xA0));
        let n = 2 + rng.below(3) as usize;
        let ops = (0..n)
            .map(|_| match rng.below(8) {
                0 => ChaosOp::Reorder {
                    skew_secs: rng.range_i64(30, 600),
                },
                1 => ChaosOp::Duplicate {
                    per_mille: 10 + rng.below(150) as u32,
                },
                2 => ChaosOp::Drop {
                    per_mille: 10 + rng.below(150) as u32,
                },
                3 => ChaosOp::GapBurst {
                    start_secs: rng.range_i64(600, 10_000),
                    duration_secs: rng.range_i64(300, 3_600),
                },
                4 => ChaosOp::Jitter {
                    max_secs: rng.range_i64(5, 300),
                },
                5 => ChaosOp::Truncate {
                    per_mille: 5 + rng.below(60) as u32,
                },
                6 => ChaosOp::Corrupt {
                    per_mille: 5 + rng.below(60) as u32,
                },
                _ => ChaosOp::LateArrival {
                    per_mille: 5 + rng.below(50) as u32,
                    delay_secs: rng.range_i64(300, 3_600),
                },
            })
            .collect();
        Self::new(seed, ops)
    }

    /// Generates a crash/restore plan: one to three [`ChaosOp::KillPartition`]
    /// faults at random points inside `horizon_secs` of stream time,
    /// sometimes mixed with a CE-preserving duplicate op so restore is
    /// also exercised under concurrent stream-level chaos. Every op is
    /// CE-preserving, so the plan feeds the equivalence oracle: a run
    /// that crashes and restores at arbitrary points must match the
    /// uninterrupted baseline byte for byte.
    #[must_use]
    pub fn kill_restore(seed: u64, horizon_secs: i64) -> Self {
        let mut rng = ChaosRng::new(mix64(seed ^ 0x1C));
        let horizon = horizon_secs.max(1_200);
        let n = 1 + rng.below(3) as usize;
        let mut ops: Vec<ChaosOp> = (0..n)
            .map(|_| ChaosOp::KillPartition {
                at_secs: rng.range_i64(600, horizon),
                band: rng.below(4) as u32,
            })
            .collect();
        if rng.chance(400) {
            ops.push(ChaosOp::Duplicate {
                per_mille: 10 + rng.below(90) as u32,
            });
        }
        Self::new(seed, ops)
    }

    /// Generates a vessel-silencing plan: the input to the
    /// gap-monotonicity oracle.
    #[must_use]
    pub fn vessel_drop(seed: u64) -> Self {
        let mut rng = ChaosRng::new(mix64(seed ^ 0xD0));
        Self::new(
            seed,
            vec![ChaosOp::DropVessels {
                per_mille: 100 + rng.below(250) as u32,
            }],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_every_variant() {
        let plan = ChaosPlan::new(
            0xDEAD_BEEF,
            vec![
                ChaosOp::Reorder { skew_secs: 60 },
                ChaosOp::Duplicate { per_mille: 50 },
                ChaosOp::Drop { per_mille: 20 },
                ChaosOp::DropVessels { per_mille: 200 },
                ChaosOp::GapBurst {
                    start_secs: 3_600,
                    duration_secs: 900,
                },
                ChaosOp::Jitter { max_secs: 30 },
                ChaosOp::Truncate { per_mille: 10 },
                ChaosOp::Corrupt { per_mille: 10 },
                ChaosOp::LateArrival {
                    per_mille: 15,
                    delay_secs: 1_800,
                },
                ChaosOp::KillPartition {
                    at_secs: 7_200,
                    band: 1,
                },
            ],
        );
        let json = plan.to_json();
        let back = ChaosPlan::from_json(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn generators_are_deterministic_and_bounded() {
        for seed in 0..50u64 {
            let a = ChaosPlan::equivalence(seed, 120);
            let b = ChaosPlan::equivalence(seed, 120);
            assert_eq!(a, b);
            assert!((1..=3).contains(&a.ops.len()));
            assert!(a.ops.iter().all(|op| op.preserves_ces(120)), "{a:?}");

            let h = ChaosPlan::hostile(seed);
            assert_eq!(h, ChaosPlan::hostile(seed));
            assert!((2..=4).contains(&h.ops.len()));

            let v = ChaosPlan::vessel_drop(seed);
            assert_eq!(v.ops.len(), 1);
            assert!(matches!(v.ops[0], ChaosOp::DropVessels { .. }));
        }
    }

    #[test]
    fn op_rng_is_position_and_variant_specific() {
        let plan = ChaosPlan::new(1, vec![]);
        let a = ChaosPlan::op_rng(&plan, 0, &ChaosOp::Drop { per_mille: 10 }).next_u64();
        let b = ChaosPlan::op_rng(&plan, 1, &ChaosOp::Drop { per_mille: 10 }).next_u64();
        let c = ChaosPlan::op_rng(&plan, 0, &ChaosOp::Truncate { per_mille: 10 }).next_u64();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn preserves_ces_is_strict() {
        assert!(ChaosOp::Duplicate { per_mille: 999 }.preserves_ces(60));
        assert!(ChaosOp::Reorder { skew_secs: 60 }.preserves_ces(60));
        assert!(!ChaosOp::Reorder { skew_secs: 61 }.preserves_ces(60));
        assert!(!ChaosOp::Drop { per_mille: 1 }.preserves_ces(60));
        assert!(!ChaosOp::Corrupt { per_mille: 1 }.preserves_ces(60));
    }
}
