//! Delta-debugging shrinker for failing chaos plans.
//!
//! A hostile plan that provokes an oracle violation usually carries ops
//! that have nothing to do with the failure. [`shrink_plan`] runs classic
//! ddmin over the op list: try removing chunks (halves, then quarters, …)
//! and keep any removal that still reproduces the violation, until no
//! single op can be removed. Op RNGs ([`crate::ChaosPlan::op_rng`]) are
//! keyed on the op's *current* index, so removing an op can shift the
//! behaviour of the ops after it. That is fine: the shrinker's contract
//! is only that the *returned* plan fails the predicate, which it
//! re-checks at every step.

use crate::plan::ChaosPlan;

/// Minimizes `plan.ops` while `fails` keeps returning `true`.
///
/// `fails` must be deterministic for a given plan (chaos runs are). The
/// returned plan is 1-minimal: removing any single remaining op makes the
/// predicate pass. If the input plan does not fail, it is returned
/// unchanged.
pub fn shrink_plan(plan: &ChaosPlan, mut fails: impl FnMut(&ChaosPlan) -> bool) -> ChaosPlan {
    if !fails(plan) || plan.ops.len() <= 1 {
        return plan.clone();
    }
    let mut ops = plan.ops.clone();
    let mut granularity = 2usize;
    while ops.len() >= 2 {
        let chunk = ops.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0;
        while start < ops.len() && ops.len() >= 2 {
            let end = (start + chunk).min(ops.len());
            let mut candidate_ops = ops.clone();
            candidate_ops.drain(start..end);
            if candidate_ops.is_empty() {
                start = end;
                continue;
            }
            let candidate = ChaosPlan {
                seed: plan.seed,
                ops: candidate_ops,
            };
            if fails(&candidate) {
                ops = candidate.ops;
                reduced = true;
                // Re-test from the same offset: the chunk now holds
                // different ops.
            } else {
                start = end;
            }
        }
        if ops.len() < 2 {
            break;
        }
        if reduced {
            granularity = granularity.max(2).min(ops.len());
        } else if granularity >= ops.len() {
            break; // 1-minimal: no single op can be removed.
        } else {
            granularity = (granularity * 2).min(ops.len());
        }
    }
    ChaosPlan {
        seed: plan.seed,
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ChaosOp;

    fn benign() -> ChaosOp {
        ChaosOp::Duplicate { per_mille: 50 }
    }

    #[test]
    fn shrinks_to_the_single_guilty_op() {
        let mut ops: Vec<ChaosOp> = (0..11).map(|_| benign()).collect();
        ops.insert(6, ChaosOp::GapBurst { start_secs: 100, duration_secs: 200 });
        let plan = ChaosPlan { seed: 7, ops };
        let shrunk = shrink_plan(&plan, |p| {
            p.ops.iter().any(|op| matches!(op, ChaosOp::GapBurst { .. }))
        });
        assert_eq!(shrunk.ops.len(), 1);
        assert!(matches!(shrunk.ops[0], ChaosOp::GapBurst { .. }));
        assert_eq!(shrunk.seed, 7);
    }

    #[test]
    fn shrinks_conjunction_to_the_minimal_pair() {
        let mut ops: Vec<ChaosOp> = (0..10).map(|_| benign()).collect();
        ops.insert(2, ChaosOp::Jitter { max_secs: 30 });
        ops.insert(9, ChaosOp::Corrupt { per_mille: 10 });
        let plan = ChaosPlan { seed: 1, ops };
        // Fails only when BOTH the jitter and the corruption survive.
        let shrunk = shrink_plan(&plan, |p| {
            p.ops.iter().any(|op| matches!(op, ChaosOp::Jitter { .. }))
                && p.ops.iter().any(|op| matches!(op, ChaosOp::Corrupt { .. }))
        });
        assert_eq!(shrunk.ops.len(), 2);
    }

    #[test]
    fn passing_plan_is_returned_unchanged() {
        let plan = ChaosPlan { seed: 3, ops: vec![benign(), benign()] };
        let shrunk = shrink_plan(&plan, |_| false);
        assert_eq!(shrunk, plan);
    }

    #[test]
    fn result_is_one_minimal() {
        // Predicate: fails while at least 3 ops remain. ddmin must land on
        // exactly 3 (removing any one more passes).
        let ops: Vec<ChaosOp> = (0..12).map(|_| benign()).collect();
        let plan = ChaosPlan { seed: 9, ops };
        let shrunk = shrink_plan(&plan, |p| p.ops.len() >= 3);
        assert_eq!(shrunk.ops.len(), 3);
    }
}
