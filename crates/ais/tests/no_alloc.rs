//! Proof that the steady-state decode path allocates nothing.
//!
//! The batch scanner slices each sentence out of the input buffer,
//! parses it into a borrowed fragment, and decodes bit fields straight
//! off the armored bytes through the `UNARMOR` table — no per-sentence
//! `String`, no intermediate `Vec`. This test pins that down with a
//! counting global allocator (the `crates/geo/tests/no_alloc.rs` idiom)
//! so a per-message allocation cannot sneak back into the hot path.
//!
//! This lives in its own integration-test binary because it installs a
//! `#[global_allocator]`, which must not leak into other test binaries.

use std::alloc::{GlobalAlloc, Layout, System};

use maritime_ais::nmea::encode_report;
use maritime_ais::{AisMessageType, DataScanner, Mmsi, PositionReport, PositionTuple};
use maritime_geo::GeoPoint;
use maritime_stream::Timestamp;

struct CountingAlloc;

// Per-thread counter: the libtest harness thread allocates concurrently
// with the test thread, so a process-global count would be flaky. A
// const-initialized `Cell<usize>` has no destructor and no lazy init, so
// touching it from inside the allocator cannot recurse.
std::thread_local! {
    static THREAD_ALLOCATIONS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let before = THREAD_ALLOCATIONS.with(std::cell::Cell::get);
    let result = f();
    (THREAD_ALLOCATIONS.with(std::cell::Cell::get) - before, result)
}

/// A batch of clean single-fragment position sentences across message
/// types and vessels.
fn sample_sentences() -> Vec<String> {
    let types = [
        AisMessageType::PositionReportClassA,
        AisMessageType::StandardClassB,
        AisMessageType::ExtendedClassB,
    ];
    (0..60)
        .map(|i| {
            encode_report(&PositionReport {
                mmsi: Mmsi(237_000_001 + (i % 7)),
                msg_type: types[i as usize % types.len()],
                position: GeoPoint::new(23.6 + f64::from(i) * 0.001, 37.9),
                sog_knots: Some(12.0),
                cog_deg: Some(90.0),
                timestamp: Timestamp(i64::from(i) * 10),
            })
        })
        .collect()
}

// One #[test] for both scenarios: the harness runs tests in the same
// binary concurrently, and a second thread's allocations would bleed
// into the counted window.
#[test]
fn steady_state_scan_allocates_nothing() {
    per_sentence_scan();
    buffer_scan();
}

fn per_sentence_scan() {
    let sentences = sample_sentences();
    let mut scanner = DataScanner::new();

    // Warm up: registers the lazy metric counters and exercises every
    // branch of the clean path once before counting.
    for (i, s) in sentences.iter().enumerate() {
        let tuple = scanner.scan(s, Timestamp(i as i64 * 10));
        assert!(tuple.is_some(), "fixture sentence must decode cleanly");
    }

    let (allocs, accepted) = allocations(|| {
        let mut accepted = 0usize;
        for round in 0..20i64 {
            for (i, s) in sentences.iter().enumerate() {
                if scanner.scan(s, Timestamp((round * 600) + i as i64 * 10)).is_some() {
                    accepted += 1;
                }
            }
        }
        accepted
    });
    assert_eq!(accepted, 20 * sentences.len());
    assert_eq!(allocs, 0, "per-sentence scan path must not touch the heap");
}

fn buffer_scan() {
    let sentences = sample_sentences();
    let mut buf = String::new();
    for s in &sentences {
        buf.push_str(s);
        buf.push('\n');
    }
    let mut scanner = DataScanner::new();
    let mut out: Vec<PositionTuple> = Vec::new();

    // Warm up: grows `out` to the batch high-water mark and registers
    // the lazy metric counters.
    scanner.scan_buffer(&buf, |i| Timestamp(i as i64 * 10), &mut out);
    assert_eq!(out.len(), sentences.len());

    let (allocs, scanned) = allocations(|| {
        let mut scanned = 0usize;
        for round in 0..20i64 {
            out.clear();
            scanned +=
                scanner.scan_buffer(&buf, |i| Timestamp(round * 600 + i as i64 * 10), &mut out);
        }
        scanned
    });
    assert_eq!(scanned, 20 * sentences.len());
    assert_eq!(out.len(), sentences.len());
    assert_eq!(allocs, 0, "batch scan into a grown arena must not allocate");
}
