//! Differential suite: table-driven decoder vs the reference decoder.
//!
//! The hot path reads bit fields straight off the armored payload bytes
//! through [`BitCursor`] and the precomputed `UNARMOR` table; the original
//! per-character [`BitReader`] stays in the crate as the reference oracle.
//! Every test here runs both over the same input and demands *identical*
//! results — construction success, remaining bit counts, every read, and
//! full decoded reports bit for bit — across golden fixtures and arbitrary
//! armored payloads including the fill-bit padding edge cases.

use maritime_ais::nmea::{self, decode_payload, encode_report, NmeaError};
use maritime_ais::sixbit::{BitCursor, BitReader};
use maritime_ais::{AisMessageType, Mmsi, PositionReport};
use maritime_geo::GeoPoint;
use maritime_stream::Timestamp;
use proptest::prelude::*;

/// Reference decode: the same ITU-R M.1371 layout walk as
/// `nmea::decode_payload`, but through the per-character [`BitReader`].
/// Kept in the test crate so the differential holds even if the library's
/// internal twin drifts.
fn decode_payload_reference(
    payload: &str,
    fill_bits: u8,
    received_at: Timestamp,
) -> Result<PositionReport, NmeaError> {
    const COORD_SCALE: f64 = 600_000.0;
    const LON_NA: i32 = 0x679_1AC0;
    const LAT_NA: i32 = 0x341_2140;
    const SOG_NA: u32 = 1023;
    const COG_NA: u32 = 3600;

    let mut r = BitReader::from_payload(payload, fill_bits).ok_or(NmeaError::BadPayload)?;
    let type_raw = r.get_u32(6).ok_or(NmeaError::BadPayload)? as u8;
    let msg_type =
        AisMessageType::from_u8(type_raw).ok_or(NmeaError::UnsupportedType(type_raw))?;
    r.skip(2).ok_or(NmeaError::BadPayload)?;
    let mmsi_raw = r.get_u32(30).ok_or(NmeaError::BadPayload)?;
    let mmsi = Mmsi::try_new(mmsi_raw).map_err(|e| NmeaError::BadMmsi(e.0))?;

    let (sog_raw, lon_raw, lat_raw, cog_raw) = match msg_type {
        AisMessageType::PositionReportClassA
        | AisMessageType::PositionReportClassAAssigned
        | AisMessageType::PositionReportClassAResponse => {
            r.skip(4 + 8).ok_or(NmeaError::BadPayload)?;
            let sog = r.get_u32(10).ok_or(NmeaError::BadPayload)?;
            r.skip(1).ok_or(NmeaError::BadPayload)?;
            let lon = r.get_i32(28).ok_or(NmeaError::BadPayload)?;
            let lat = r.get_i32(27).ok_or(NmeaError::BadPayload)?;
            let cog = r.get_u32(12).ok_or(NmeaError::BadPayload)?;
            (sog, lon, lat, cog)
        }
        AisMessageType::StandardClassB | AisMessageType::ExtendedClassB => {
            r.skip(8).ok_or(NmeaError::BadPayload)?;
            let sog = r.get_u32(10).ok_or(NmeaError::BadPayload)?;
            r.skip(1).ok_or(NmeaError::BadPayload)?;
            let lon = r.get_i32(28).ok_or(NmeaError::BadPayload)?;
            let lat = r.get_i32(27).ok_or(NmeaError::BadPayload)?;
            let cog = r.get_u32(12).ok_or(NmeaError::BadPayload)?;
            (sog, lon, lat, cog)
        }
    };

    if lon_raw == LON_NA || lat_raw == LAT_NA {
        return Err(NmeaError::PositionUnavailable);
    }
    let position = GeoPoint::try_new(lon_raw as f64 / COORD_SCALE, lat_raw as f64 / COORD_SCALE)
        .map_err(|_| NmeaError::PositionUnavailable)?;

    Ok(PositionReport {
        mmsi,
        msg_type,
        position,
        sog_knots: (sog_raw != SOG_NA).then(|| f64::from(sog_raw) / 10.0),
        cog_deg: (cog_raw != COG_NA).then(|| f64::from(cog_raw) / 10.0),
        timestamp: received_at,
    })
}

/// Asserts the fast and reference decoders agree exactly on one payload,
/// including bit-level equality of the floating-point fields.
fn assert_identical_decode(payload: &str, fill_bits: u8) {
    let fast = decode_payload(payload, fill_bits, Timestamp(42));
    let slow = decode_payload_reference(payload, fill_bits, Timestamp(42));
    assert_eq!(fast, slow, "payload {payload:?} fill {fill_bits}");
    if let (Ok(f), Ok(s)) = (&fast, &slow) {
        assert_eq!(f.position.lon.to_bits(), s.position.lon.to_bits());
        assert_eq!(f.position.lat.to_bits(), s.position.lat.to_bits());
        assert_eq!(
            f.sog_knots.map(f64::to_bits),
            s.sog_knots.map(f64::to_bits)
        );
        assert_eq!(f.cog_deg.map(f64::to_bits), s.cog_deg.map(f64::to_bits));
    }
}

fn golden_reports() -> Vec<PositionReport> {
    let types = [
        AisMessageType::PositionReportClassA,
        AisMessageType::PositionReportClassAAssigned,
        AisMessageType::PositionReportClassAResponse,
        AisMessageType::StandardClassB,
        AisMessageType::ExtendedClassB,
    ];
    types
        .iter()
        .enumerate()
        .map(|(i, &msg_type)| PositionReport {
            mmsi: Mmsi(237_000_001 + i as u32),
            msg_type,
            position: GeoPoint::new(23.6 + i as f64 * 0.1, 37.9 - i as f64 * 0.05),
            sog_knots: Some(11.5 + i as f64),
            cog_deg: Some(183.2),
            timestamp: Timestamp(1_000 + i as i64),
        })
        .collect()
}

#[test]
fn golden_fixtures_decode_identically() {
    for report in golden_reports() {
        let sentence = encode_report(&report);
        let parsed = nmea::parse_sentence(&sentence).unwrap();
        assert_identical_decode(&parsed.payload, parsed.fill_bits);
        // And the fast path actually round-trips the fixture.
        let decoded = decode_payload(&parsed.payload, parsed.fill_bits, report.timestamp).unwrap();
        assert_eq!(decoded.mmsi, report.mmsi);
        assert_eq!(decoded.msg_type, report.msg_type);
    }
}

#[test]
fn malformed_payloads_rejected_identically() {
    // Truncated, empty, whitespace, chars outside the armoring alphabet,
    // and over-padded payloads must fail (or succeed) the same way.
    let cases: &[(&str, u8)] = &[
        ("", 0),
        ("", 5),
        ("1", 0),
        ("1", 7),
        ("1 3", 0),
        ("13~b", 0), // `~` (0x7E) is outside the armoring alphabet
        ("13\u{e9}b", 0),
        ("177KQ", 2),
        ("55555555555555555555", 0),
    ];
    for &(payload, fill) in cases {
        assert_identical_decode(payload, fill);
        assert_eq!(
            BitCursor::new(payload.as_bytes(), fill).is_some(),
            BitReader::from_payload(payload, fill).is_some(),
            "constructibility differs on {payload:?} fill {fill}"
        );
    }
}

/// One armored character: the 64-symbol alphabet is `0..=39 -> +48`,
/// `40..=63 -> +56`.
fn arb_armored_char() -> impl Strategy<Value = char> {
    (0u8..64).prop_map(|v| {
        let c = if v < 40 { v + 48 } else { v + 56 };
        c as char
    })
}

/// A read script: each op is (kind, width). Widths beyond the remaining
/// bit budget exercise the out-of-bits paths.
fn arb_script() -> impl Strategy<Value = Vec<(u8, usize)>> {
    prop::collection::vec((0u8..3, 1usize..33), 0..12)
}

proptest! {
    /// Over arbitrary armored payloads and fill bits (including the
    /// padding edge cases fill 6/7 and fill > total bits), the cursor and
    /// the reference reader must agree on construction, remaining bits,
    /// and the result of every scripted read.
    #[test]
    fn cursor_and_reader_agree_on_arbitrary_payloads(
        chars in prop::collection::vec(arb_armored_char(), 0..30),
        fill in 0u8..8,
        script in arb_script(),
    ) {
        let payload: String = chars.into_iter().collect();
        let cursor = BitCursor::new(payload.as_bytes(), fill);
        let reader = BitReader::from_payload(&payload, fill);
        prop_assert_eq!(cursor.is_some(), reader.is_some());
        let (Some(mut cursor), Some(mut reader)) = (cursor, reader) else { return Ok(()); };
        prop_assert_eq!(cursor.remaining(), reader.remaining());
        for (kind, width) in script {
            match kind {
                0 => prop_assert_eq!(cursor.get_u32(width), reader.get_u32(width)),
                1 => prop_assert_eq!(cursor.get_i32(width), reader.get_i32(width)),
                _ => prop_assert_eq!(cursor.skip(width), reader.skip(width)),
            }
            prop_assert_eq!(cursor.remaining(), reader.remaining());
        }
    }

    /// Corrupting one byte of a valid payload never makes the two decoders
    /// disagree — the fast path rejects exactly what the reference rejects.
    #[test]
    fn corrupted_payload_bytes_decode_identically(
        fixture in 0usize..5,
        pos_frac in 0.0f64..1.0,
        byte in 0u8..128,
    ) {
        let report = golden_reports()[fixture];
        let sentence = encode_report(&report);
        let parsed = nmea::parse_sentence(&sentence).unwrap();
        let mut bytes = parsed.payload.into_bytes();
        prop_assert!(!bytes.is_empty());
        let idx = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[idx] = byte;
        let Ok(payload) = String::from_utf8(bytes) else { return Ok(()); };
        assert_identical_decode(&payload, parsed.fill_bits);
    }
}
