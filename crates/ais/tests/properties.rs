//! Property-based tests for the AIS codec and scanner.

use maritime_ais::nmea::{decode_payload, encode_report, parse_sentence};
use maritime_ais::sixbit::{BitReader, BitWriter};
use maritime_ais::{AisMessageType, DataScanner, Mmsi, PositionReport};
use maritime_geo::GeoPoint;
use maritime_stream::Timestamp;
use proptest::prelude::*;

fn arb_msg_type() -> impl Strategy<Value = AisMessageType> {
    prop_oneof![
        Just(AisMessageType::PositionReportClassA),
        Just(AisMessageType::PositionReportClassAAssigned),
        Just(AisMessageType::PositionReportClassAResponse),
        Just(AisMessageType::StandardClassB),
        Just(AisMessageType::ExtendedClassB),
    ]
}

fn arb_report() -> impl Strategy<Value = PositionReport> {
    (
        0u32..=Mmsi::MAX,
        arb_msg_type(),
        -179.9f64..179.9,
        -89.9f64..89.9,
        prop::option::of(0.0f64..102.0),
        prop::option::of(0.0f64..359.9),
        0i64..100_000,
    )
        .prop_map(|(mmsi, ty, lon, lat, sog, cog, t)| PositionReport {
            mmsi: Mmsi(mmsi),
            msg_type: ty,
            position: GeoPoint::new(lon, lat),
            sog_knots: sog,
            cog_deg: cog,
            timestamp: Timestamp(t),
        })
}

proptest! {
    #[test]
    fn nmea_roundtrip_preserves_semantics(report in arb_report()) {
        let sentence = encode_report(&report);
        let parsed = parse_sentence(&sentence).unwrap();
        let decoded = decode_payload(&parsed.payload, parsed.fill_bits, report.timestamp).unwrap();
        prop_assert_eq!(decoded.mmsi, report.mmsi);
        prop_assert_eq!(decoded.msg_type, report.msg_type);
        // Wire resolution: 1/10000 arc-minute for coordinates, 0.1 kn /
        // 0.1 deg for SOG/COG.
        prop_assert!((decoded.position.lon - report.position.lon).abs() < 2e-6 + 1e-9);
        prop_assert!((decoded.position.lat - report.position.lat).abs() < 2e-6 + 1e-9);
        match (decoded.sog_knots, report.sog_knots) {
            (Some(d), Some(o)) => prop_assert!((d - o.min(102.2)).abs() <= 0.051),
            (None, None) => {}
            other => prop_assert!(false, "sog mismatch {other:?}"),
        }
        match (decoded.cog_deg, report.cog_deg) {
            (Some(d), Some(o)) => prop_assert!((d - o).abs() <= 0.051),
            (None, None) => {}
            other => prop_assert!(false, "cog mismatch {other:?}"),
        }
    }

    #[test]
    fn scanner_never_accepts_single_char_corruption(
        report in arb_report(), pos_seed in any::<usize>(), new_char in any::<u8>()
    ) {
        // Flip exactly one character of the sentence (anywhere before the
        // checksum): the scanner must either reject it, or — if the flip
        // hit a comma-separated field boundary producing another valid
        // framing — still never produce a *wrong* position silently. We
        // assert rejection, which holds because the XOR checksum detects
        // every single-character change unless the replacement equals the
        // original.
        let sentence = encode_report(&report);
        let star = sentence.rfind('*').unwrap();
        let idx = 1 + pos_seed % (star - 1); // skip the leading '!'
        let mut bytes = sentence.clone().into_bytes();
        let replacement = if new_char == bytes[idx] { new_char ^ 1 } else { new_char };
        bytes[idx] = replacement;
        let Ok(corrupted) = String::from_utf8(bytes) else {
            return Ok(()); // non-UTF8 corruption: parse_sentence can't even see it
        };
        let mut scanner = DataScanner::new();
        let out = scanner.scan(&corrupted, Timestamp(0));
        prop_assert!(out.is_none(), "accepted corrupted sentence {corrupted:?}");
    }

    #[test]
    fn bitfields_roundtrip(fields in prop::collection::vec((any::<u32>(), 1usize..=32), 1..20)) {
        let mut w = BitWriter::new();
        for (value, width) in &fields {
            let masked = if *width == 32 { *value } else { value & ((1 << width) - 1) };
            w.put_u32(masked, *width);
        }
        let (payload, fill) = w.finish();
        let mut r = BitReader::from_payload(&payload, fill).unwrap();
        for (value, width) in &fields {
            let masked = if *width == 32 { *value } else { value & ((1 << width) - 1) };
            prop_assert_eq!(r.get_u32(*width), Some(masked));
        }
    }

    #[test]
    fn signed_bitfields_roundtrip(
        fields in prop::collection::vec((any::<i32>(), 2usize..=32), 1..20)
    ) {
        let mut w = BitWriter::new();
        let clamped: Vec<(i32, usize)> = fields
            .iter()
            .map(|(v, width)| {
                let lo = -(1i64 << (width - 1));
                let hi = (1i64 << (width - 1)) - 1;
                (((*v as i64).clamp(lo, hi)) as i32, *width)
            })
            .collect();
        for (v, width) in &clamped {
            w.put_i32(*v, *width);
        }
        let (payload, fill) = w.finish();
        let mut r = BitReader::from_payload(&payload, fill).unwrap();
        for (v, width) in &clamped {
            prop_assert_eq!(r.get_i32(*width), Some(*v));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn fleet_simulation_is_seed_deterministic(seed in any::<u64>()) {
        use maritime_ais::{FleetConfig, FleetSimulator};
        let cfg = FleetConfig { vessels: 4, ..FleetConfig::tiny(seed) };
        let a = FleetSimulator::new(cfg.clone()).generate();
        let b = FleetSimulator::new(cfg).generate();
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.timestamp, y.timestamp);
            prop_assert_eq!(x.mmsi, y.mmsi);
            prop_assert_eq!(x.position, y.position);
        }
    }
}
