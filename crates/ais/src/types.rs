//! AIS position-report data model.

use maritime_geo::GeoPoint;
use maritime_stream::Timestamp;
use serde::{Deserialize, Serialize};

use crate::mmsi::Mmsi;

/// AIS message types carrying position reports that the system consumes:
/// "As input, we consider AIS messages of certain types (1, 2, 3, 18, 19)
/// and extract position reports" (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AisMessageType {
    /// Class A position report, scheduled.
    PositionReportClassA = 1,
    /// Class A position report, assigned schedule.
    PositionReportClassAAssigned = 2,
    /// Class A position report, in response to interrogation.
    PositionReportClassAResponse = 3,
    /// Class B standard position report.
    StandardClassB = 18,
    /// Class B extended position report.
    ExtendedClassB = 19,
}

impl AisMessageType {
    /// Parses the numeric message-type field.
    #[must_use]
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(Self::PositionReportClassA),
            2 => Some(Self::PositionReportClassAAssigned),
            3 => Some(Self::PositionReportClassAResponse),
            18 => Some(Self::StandardClassB),
            19 => Some(Self::ExtendedClassB),
            _ => None,
        }
    }

    /// The numeric wire value.
    #[must_use]
    pub fn as_u8(self) -> u8 {
        self as u8
    }
}

/// A decoded AIS position report, before reduction to the positional tuple.
///
/// Speed and course are optional because AIS uses sentinel values
/// (SOG = 1023, COG = 3600) for "not available"; the surveillance pipeline
/// recomputes both from consecutive positions anyway (§3.1), which also
/// protects against the unreliability of crew-maintained fields.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PositionReport {
    /// Reporting vessel.
    pub mmsi: Mmsi,
    /// Message type the report was extracted from.
    pub msg_type: AisMessageType,
    /// Reported position.
    pub position: GeoPoint,
    /// Speed over ground in knots, when available.
    pub sog_knots: Option<f64>,
    /// Course over ground in degrees, when available.
    pub cog_deg: Option<f64>,
    /// Receive timestamp τ, seconds granularity.
    pub timestamp: Timestamp,
}

/// The reduced positional tuple `⟨MMSI, Lon, Lat, τ⟩` that constitutes the
/// system's append-only input stream (§2): "A Data Scanner decodes each AIS
/// message, identifies those four attributes (the rest are ignored in our
/// analysis)".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PositionTuple {
    /// Reporting vessel.
    pub mmsi: Mmsi,
    /// Position.
    pub position: GeoPoint,
    /// Timestamp τ.
    pub timestamp: Timestamp,
}

impl From<PositionReport> for PositionTuple {
    fn from(r: PositionReport) -> Self {
        Self {
            mmsi: r.mmsi,
            position: r.position,
            timestamp: r.timestamp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_type_roundtrip() {
        for v in [1u8, 2, 3, 18, 19] {
            let t = AisMessageType::from_u8(v).unwrap();
            assert_eq!(t.as_u8(), v);
        }
    }

    #[test]
    fn non_position_types_rejected() {
        for v in [0u8, 4, 5, 17, 20, 24, 27, 255] {
            assert!(AisMessageType::from_u8(v).is_none(), "type {v}");
        }
    }

    #[test]
    fn tuple_from_report_keeps_four_attributes() {
        let r = PositionReport {
            mmsi: Mmsi(237_000_001),
            msg_type: AisMessageType::PositionReportClassA,
            position: GeoPoint::new(23.6, 37.9),
            sog_knots: Some(12.0),
            cog_deg: Some(270.0),
            timestamp: Timestamp(42),
        };
        let t = PositionTuple::from(r);
        assert_eq!(t.mmsi, r.mmsi);
        assert_eq!(t.position, r.position);
        assert_eq!(t.timestamp, r.timestamp);
    }
}
