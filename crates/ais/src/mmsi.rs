//! Maritime Mobile Service Identity.

use serde::{Deserialize, Serialize};

/// A Maritime Mobile Service Identity: the nine-digit identifier every AIS
/// message carries ("Each message specifies the MMSI of the reporting
/// vessel", §2).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct Mmsi(pub u32);

impl Mmsi {
    /// Maximum representable MMSI (nine decimal digits).
    pub const MAX: u32 = 999_999_999;

    /// Creates an MMSI, validating the nine-digit bound. AIS payloads carry
    /// the field in 30 bits, which can encode invalid values above
    /// 999,999,999; those are rejected by the data scanner.
    pub fn try_new(raw: u32) -> Result<Self, InvalidMmsi> {
        if raw > Self::MAX {
            Err(InvalidMmsi(raw))
        } else {
            Ok(Self(raw))
        }
    }

    /// The Maritime Identification Digits (first three digits of a
    /// full-length MMSI), identifying the flag state. Greece is 237–241.
    #[must_use]
    pub fn mid(self) -> u32 {
        self.0 / 1_000_000
    }
}

impl std::fmt::Display for Mmsi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:09}", self.0)
    }
}

/// Error for MMSI values exceeding nine digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidMmsi(pub u32);

impl std::fmt::Display for InvalidMmsi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MMSI {} exceeds nine digits", self.0)
    }
}

impl std::error::Error for InvalidMmsi {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_mmsi_roundtrips() {
        let m = Mmsi::try_new(237_001_234).unwrap();
        assert_eq!(m.0, 237_001_234);
        assert_eq!(m.mid(), 237);
    }

    #[test]
    fn overlong_mmsi_rejected() {
        assert_eq!(Mmsi::try_new(1_000_000_000), Err(InvalidMmsi(1_000_000_000)));
        assert!(Mmsi::try_new(Mmsi::MAX).is_ok());
    }

    #[test]
    fn display_pads_to_nine_digits() {
        assert_eq!(Mmsi(1_234).to_string(), "000001234");
        assert_eq!(Mmsi(237_001_234).to_string(), "237001234");
    }

    #[test]
    fn ordering_follows_numeric_value() {
        assert!(Mmsi(5) < Mmsi(10));
    }
}
