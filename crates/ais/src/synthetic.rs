//! Deterministic synthetic AIS fleet simulator.
//!
//! Stands in for the proprietary IMIS Hellas dataset used in §5 (23 GB of
//! raw AIS from 6,425 vessels in the Aegean, summer 2009). The simulator
//! reproduces the *phenomena* the paper's pipeline is built around:
//!
//! * voyages between real Greek ports along multi-waypoint routes (smooth
//!   and sharp turns, Figures 2(c)/3(b));
//! * port calls with deceleration on approach (speed change, Figure 2(b))
//!   and anchored periods whose GPS jitter produces instantaneous pauses
//!   and long-term stops (Figures 2(a)/3(c));
//! * fishing vessels loitering at trawling speed over fishing grounds
//!   (slow motion, Figure 3(d));
//! * communication gaps — some deliberate, by "rogue" vessels
//!   (Figure 3(a), scenario 3 of §4.1);
//! * off-course outliers from corrupted fixes (Figure 2(d));
//! * speed-dependent reporting rates ("Vessels anchored or slowly moving
//!   transmit less frequently than those cruising fast", §1).
//!
//! Everything is driven by a single seed: the same [`FleetConfig`] always
//! produces the same stream.

use maritime_geo::aegean::{ports, Port};
use maritime_geo::{destination, haversine_distance_m, initial_bearing_deg, GeoPoint};
use maritime_stream::{Duration, Timestamp};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::mmsi::Mmsi;
use crate::types::{AisMessageType, PositionReport};

/// Broad vessel categories with distinct motion and reporting behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VesselClass {
    /// Cargo ship: long legs, moderate speed, long port calls.
    Cargo,
    /// Tanker: slow, deep draft.
    Tanker,
    /// Passenger ferry: fast, frequent short hops, brief port calls.
    Ferry,
    /// Fishing vessel: loiters at sea at trawling speed.
    Fishing,
    /// High-speed craft.
    HighSpeed,
}

impl VesselClass {
    /// Cruise speed range in knots.
    fn speed_range(self) -> (f64, f64) {
        match self {
            Self::Cargo => (10.0, 16.0),
            Self::Tanker => (8.0, 13.0),
            Self::Ferry => (16.0, 26.0),
            Self::Fishing => (7.0, 11.0),
            Self::HighSpeed => (25.0, 38.0),
        }
    }

    /// Draft range in meters (used by the `shallow` predicate of §4.1).
    fn draft_range(self) -> (f64, f64) {
        match self {
            Self::Cargo => (7.0, 13.0),
            Self::Tanker => (9.0, 18.0),
            Self::Ferry => (4.0, 7.0),
            Self::Fishing => (2.5, 5.0),
            Self::HighSpeed => (2.0, 4.5),
        }
    }

    /// AIS transponder class: big ships are class A, small craft class B.
    fn message_type(self) -> AisMessageType {
        match self {
            Self::Cargo | Self::Tanker | Self::Ferry => AisMessageType::PositionReportClassA,
            Self::Fishing => AisMessageType::StandardClassB,
            Self::HighSpeed => AisMessageType::ExtendedClassB,
        }
    }
}

/// Static description of a simulated vessel — the per-vessel facts the CER
/// knowledge base consumes (§5.2: "For each vessel we added information
/// about its draft, while a number of vessels were designated as fishing
/// vessels").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VesselProfile {
    /// The vessel's identity.
    pub mmsi: Mmsi,
    /// Category.
    pub class: VesselClass,
    /// Draft in meters.
    pub draft_m: f64,
    /// Whether the vessel is designated a fishing vessel.
    pub is_fishing: bool,
    /// Cruise speed in knots.
    pub cruise_knots: f64,
    /// Whether the vessel deliberately switches its transmitter off mid-leg
    /// (scenario 3, "illegal shipping").
    pub rogue: bool,
}

/// Simulator configuration. All randomness flows from `seed`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetConfig {
    /// RNG seed.
    pub seed: u64,
    /// Fleet size N.
    pub vessels: usize,
    /// Simulated period length.
    pub duration: Duration,
    /// Fraction of the fleet that are fishing vessels.
    pub fishing_fraction: f64,
    /// Fraction of vessels that behave "rogue" (deliberate gaps).
    pub rogue_fraction: f64,
    /// Mean reporting interval while cruising, seconds.
    pub cruise_report_secs: f64,
    /// Mean reporting interval while anchored, seconds.
    pub anchored_report_secs: f64,
    /// Probability that any single report is an off-course outlier.
    pub outlier_probability: f64,
    /// Standard deviation of per-report GPS jitter, meters.
    pub gps_jitter_m: f64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            seed: 0xEDB7_2015,
            vessels: 200,
            duration: Duration::hours(48),
            fishing_fraction: 0.18,
            rogue_fraction: 0.05,
            cruise_report_secs: 30.0,
            anchored_report_secs: 180.0,
            outlier_probability: 0.002,
            gps_jitter_m: 12.0,
        }
    }
}

impl FleetConfig {
    /// A small configuration for unit tests: 12 vessels, 6 hours.
    #[must_use]
    pub fn tiny(seed: u64) -> Self {
        Self {
            seed,
            vessels: 12,
            duration: Duration::hours(6),
            ..Self::default()
        }
    }
}

/// What a vessel is currently doing.
#[derive(Debug, Clone)]
enum Phase {
    /// Anchored in a port basin until the given time.
    Docked { at: GeoPoint, until: Timestamp },
    /// Under way along a route of waypoints. `dest_port` indexes the port
    /// catalogue; `usize::MAX` marks a route to a fishing ground.
    Sailing {
        waypoints: Vec<GeoPoint>,
        next: usize,
        dest_port: usize,
    },
    /// Loitering (trawling) around an anchor point until the given time,
    /// towing along a drift bearing (reversed at the ends of the tow line).
    Loitering {
        around: GeoPoint,
        until: Timestamp,
        drift_bearing: f64,
    },
}

/// Per-vessel dynamic state.
struct VesselState {
    profile: VesselProfile,
    position: GeoPoint,
    phase: Phase,
    /// Deliberate transmitter-off window `[start, end)`, if scheduled.
    gap: Option<(Timestamp, Timestamp)>,
    rng: SmallRng,
}

/// The fleet simulator: generates the complete, time-sorted position stream
/// for a fleet. See the module docs for the phenomena covered.
pub struct FleetSimulator {
    config: FleetConfig,
    ports: Vec<Port>,
    profiles: Vec<VesselProfile>,
}

impl FleetSimulator {
    /// Prepares a simulator for `config`.
    #[must_use]
    pub fn new(config: FleetConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let port_list = ports();
        let profiles = (0..config.vessels)
            .map(|i| Self::make_profile(&mut rng, &config, i))
            .collect();
        Self {
            config,
            ports: port_list,
            profiles,
        }
    }

    fn make_profile(rng: &mut SmallRng, config: &FleetConfig, index: usize) -> VesselProfile {
        let class = if (index as f64) < config.fishing_fraction * config.vessels as f64 {
            VesselClass::Fishing
        } else {
            match rng.gen_range(0..4) {
                0 => VesselClass::Cargo,
                1 => VesselClass::Tanker,
                2 => VesselClass::Ferry,
                _ => VesselClass::HighSpeed,
            }
        };
        let (smin, smax) = class.speed_range();
        let (dmin, dmax) = class.draft_range();
        VesselProfile {
            mmsi: Mmsi(237_000_000 + index as u32),
            class,
            draft_m: rng.gen_range(dmin..dmax),
            is_fishing: class == VesselClass::Fishing,
            cruise_knots: rng.gen_range(smin..smax),
            rogue: rng.gen::<f64>() < config.rogue_fraction,
        }
    }

    /// Static vessel facts, for the CER knowledge base.
    #[must_use]
    pub fn profiles(&self) -> &[VesselProfile] {
        &self.profiles
    }

    /// The simulation's port catalogue (voyage endpoints).
    #[must_use]
    pub fn ports(&self) -> &[Port] {
        &self.ports
    }

    /// Runs the simulation, returning the fleet's position reports sorted
    /// by timestamp — the equivalent of the decoded, cleaned dataset.
    #[must_use]
    pub fn generate(&self) -> Vec<PositionReport> {
        let mut reports = Vec::new();
        for profile in &self.profiles {
            self.simulate_vessel(*profile, &mut reports);
        }
        reports.sort_by_key(|r| (r.timestamp, r.mmsi));
        reports
    }

    /// Simulates one vessel for the whole period, appending its reports.
    fn simulate_vessel(&self, profile: VesselProfile, out: &mut Vec<PositionReport>) {
        let mut rng = SmallRng::seed_from_u64(self.config.seed ^ u64::from(profile.mmsi.0));
        let home = rng.gen_range(0..self.ports.len());
        let start_pos = self.scatter(&mut rng, self.ports[home].location, 300.0);
        let initial_dock = Duration::secs(rng.gen_range(600..7_200));
        let mut state = VesselState {
            profile,
            position: start_pos,
            phase: Phase::Docked {
                at: start_pos,
                until: Timestamp::ZERO + initial_dock,
            },
            gap: None,
            rng,
        };
        let end = Timestamp::ZERO + self.config.duration;

        // March from report to report; between reports the vessel moves
        // deterministically according to its phase.
        let mut prev = Timestamp::ZERO;
        let mut now = Timestamp(state.rng.gen_range(0..120));
        while now <= end {
            let dt = (now - prev).as_secs().max(1) as f64;
            self.advance(&mut state, now, dt);
            let in_gap = state.gap.is_some_and(|(s, e)| now >= s && now < e);
            if !in_gap {
                if state.gap.is_some_and(|(_, e)| now >= e) {
                    state.gap = None;
                }
                out.push(self.emit(&mut state, now));
            }
            prev = now;
            now = now + Duration::secs(self.report_interval(&mut state));
        }
    }

    /// Moves the vessel `dt` seconds forward and handles phase transitions.
    fn advance(&self, state: &mut VesselState, now: Timestamp, dt: f64) {
        match &mut state.phase {
            Phase::Docked { at, until } => {
                // Anchored: position wobbles within the basin (sea drift).
                let anchor = *at;
                let done = now >= *until;
                state.position = self.scatter(&mut state.rng, anchor, 20.0);
                if done {
                    self.depart(state, now);
                }
            }
            Phase::Loitering { around, until, drift_bearing } => {
                let ground = *around;
                let done = now >= *until;
                // Trawling: tow at 1.5-3 knots along the drift bearing,
                // coming about when the tow line strays ~1.5 km from the
                // ground (a realistic back-and-forth sweep pattern).
                let speed = maritime_geo::knots_to_mps(state.rng.gen_range(1.5..3.0));
                let wobble = state.rng.gen_range(-3.0..3.0);
                let moved = destination(state.position, *drift_bearing + wobble, speed * dt);
                if haversine_distance_m(moved, ground) < 1_500.0 {
                    state.position = moved;
                } else {
                    *drift_bearing = (*drift_bearing + 180.0) % 360.0;
                    state.position =
                        destination(state.position, *drift_bearing + wobble, speed * dt);
                }
                if done {
                    let dest = state.rng.gen_range(0..self.ports.len());
                    let waypoints =
                        self.route(&mut state.rng, state.position, self.ports[dest].location);
                    state.phase = Phase::Sailing {
                        waypoints,
                        next: 0,
                        dest_port: dest,
                    };
                }
            }
            Phase::Sailing {
                waypoints,
                next,
                dest_port,
            } => {
                let dest_port = *dest_port;
                let cruise = maritime_geo::knots_to_mps(state.profile.cruise_knots);
                let is_last = *next == waypoints.len() - 1;
                let dist_to_target = haversine_distance_m(state.position, waypoints[*next]);
                // Decelerate on final approach, keeping steerage way.
                let speed = if is_last && dist_to_target < 3_000.0 {
                    (cruise * dist_to_target / 3_000.0).max(maritime_geo::knots_to_mps(3.0))
                } else {
                    cruise * state.rng.gen_range(0.95..1.05)
                };
                let mut travel = speed * dt;
                loop {
                    let target = waypoints[*next];
                    let d = haversine_distance_m(state.position, target);
                    if travel < d {
                        let bearing = initial_bearing_deg(state.position, target)
                            + state.rng.gen_range(-0.4..0.4);
                        state.position = destination(state.position, bearing, travel);
                        break;
                    }
                    state.position = target;
                    travel -= d;
                    if *next + 1 < waypoints.len() {
                        *next += 1;
                    } else {
                        self.arrive(state, now, dest_port);
                        break;
                    }
                }
            }
        }
    }

    /// Transition: leave the dock for a new destination.
    fn depart(&self, state: &mut VesselState, now: Timestamp) {
        let rng = &mut state.rng;
        if state.profile.is_fishing && rng.gen::<f64>() < 0.6 {
            // Head to a fishing ground: an offshore point 10-60 km away.
            let ground = destination(
                state.position,
                rng.gen_range(0.0..360.0),
                rng.gen_range(10_000.0..60_000.0),
            );
            let waypoints = self.route(rng, state.position, ground);
            state.phase = Phase::Sailing {
                waypoints,
                next: 0,
                dest_port: usize::MAX,
            };
        } else {
            let dest = rng.gen_range(0..self.ports.len());
            let waypoints = self.route(rng, state.position, self.ports[dest].location);
            state.phase = Phase::Sailing {
                waypoints,
                next: 0,
                dest_port: dest,
            };
        }
        // Rogue vessels may switch off the transmitter for part of the leg.
        if state.profile.rogue && state.rng.gen::<f64>() < 0.5 {
            let start = now + Duration::secs(state.rng.gen_range(600..3_600));
            let len = Duration::secs(state.rng.gen_range(700..2_400));
            state.gap = Some((start, start + len));
        }
    }

    /// Transition: reach the destination (port call or fishing ground).
    fn arrive(&self, state: &mut VesselState, now: Timestamp, dest_port: usize) {
        let rng = &mut state.rng;
        if dest_port == usize::MAX {
            // Fishing ground reached: loiter at trawling speed.
            let until = now + Duration::secs(rng.gen_range(1_800..7_200));
            state.phase = Phase::Loitering {
                around: state.position,
                until,
                drift_bearing: rng.gen_range(0.0..360.0),
            };
        } else {
            let basin = self.ports[dest_port].location;
            let spot = self.scatter(rng, basin, 400.0);
            let until = now + Duration::secs(rng.gen_range(1_800..14_400));
            state.position = spot;
            state.phase = Phase::Docked { at: spot, until };
        }
    }

    /// A multi-waypoint route between two points: 1–3 intermediate
    /// waypoints offset laterally so the track includes genuine turns.
    fn route(&self, rng: &mut SmallRng, from: GeoPoint, to: GeoPoint) -> Vec<GeoPoint> {
        let n_mid = rng.gen_range(1..=3);
        let leg = haversine_distance_m(from, to);
        let mut waypoints = Vec::with_capacity(n_mid + 1);
        for i in 1..=n_mid {
            let t = i as f64 / (n_mid + 1) as f64;
            let on_line = from.lerp(to, t);
            // Lateral offset proportional to the leg so waypoint turns are
            // pronounced (10°-30°) regardless of voyage length — vessels
            // dog-leg around headlands and islands, they don't drift.
            let frac = rng.gen_range(0.08..0.25);
            let side = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            let lateral = (leg * frac * side).clamp(-40_000.0, 40_000.0);
            let bearing = initial_bearing_deg(from, to) + 90.0;
            waypoints.push(destination(on_line, bearing, lateral));
        }
        waypoints.push(to);
        waypoints
    }

    /// Report interval for the current phase, with jitter.
    fn report_interval(&self, state: &mut VesselState) -> i64 {
        let mean = match state.phase {
            Phase::Docked { .. } => self.config.anchored_report_secs,
            Phase::Loitering { .. } => self.config.cruise_report_secs * 2.0,
            Phase::Sailing { .. } => self.config.cruise_report_secs,
        };
        let jittered = mean * state.rng.gen_range(0.6..1.6);
        jittered.round().max(2.0) as i64
    }

    /// Builds the report at the current position (plus measurement noise).
    fn emit(&self, state: &mut VesselState, now: Timestamp) -> PositionReport {
        let noisy = if state.rng.gen::<f64>() < self.config.outlier_probability {
            // Off-course outlier: a corrupted fix hundreds of meters away.
            let dist = state.rng.gen_range(600.0..2_500.0);
            let bearing = state.rng.gen_range(0.0..360.0);
            destination(state.position, bearing, dist)
        } else {
            self.scatter(&mut state.rng, state.position, self.config.gps_jitter_m)
        };
        let speed = match state.phase {
            Phase::Docked { .. } => 0.1,
            Phase::Loitering { .. } => 2.0,
            Phase::Sailing { .. } => state.profile.cruise_knots,
        };
        PositionReport {
            mmsi: state.profile.mmsi,
            msg_type: state.profile.class.message_type(),
            position: noisy,
            sog_knots: Some(speed),
            cog_deg: None,
            timestamp: now,
        }
    }

    /// Random displacement with typical magnitude ~`sigma_m` meters
    /// (sum-of-uniforms approximation to a half-normal radius).
    fn scatter(&self, rng: &mut SmallRng, p: GeoPoint, sigma_m: f64) -> GeoPoint {
        let r = (rng.gen::<f64>() + rng.gen::<f64>() + rng.gen::<f64>() - 1.5) * sigma_m;
        let bearing = rng.gen_range(0.0..360.0);
        destination(p, bearing, r.abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maritime_geo::aegean::aegean_extent;

    #[test]
    fn generation_is_deterministic() {
        let sim = FleetSimulator::new(FleetConfig::tiny(7));
        let a = sim.generate();
        let b = FleetSimulator::new(FleetConfig::tiny(7)).generate();
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.mmsi, y.mmsi);
            assert_eq!(x.timestamp, y.timestamp);
            assert_eq!(x.position, y.position);
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let a = FleetSimulator::new(FleetConfig::tiny(1)).generate();
        let b = FleetSimulator::new(FleetConfig::tiny(2)).generate();
        assert_ne!(
            a.iter().map(|r| r.timestamp).collect::<Vec<_>>(),
            b.iter().map(|r| r.timestamp).collect::<Vec<_>>()
        );
    }

    #[test]
    fn stream_is_time_sorted() {
        let reports = FleetSimulator::new(FleetConfig::tiny(3)).generate();
        for w in reports.windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
    }

    #[test]
    fn every_vessel_reports() {
        let sim = FleetSimulator::new(FleetConfig::tiny(4));
        let reports = sim.generate();
        for profile in sim.profiles() {
            assert!(
                reports.iter().any(|r| r.mmsi == profile.mmsi),
                "vessel {} never reported",
                profile.mmsi
            );
        }
    }

    #[test]
    fn positions_stay_in_extended_aegean() {
        let reports = FleetSimulator::new(FleetConfig::tiny(5)).generate();
        let extent = aegean_extent().inflated(1.5);
        for r in &reports {
            assert!(extent.contains(r.position), "position {:?}", r.position);
        }
    }

    #[test]
    fn timestamps_within_duration() {
        let cfg = FleetConfig::tiny(6);
        let end = Timestamp::ZERO + cfg.duration;
        let reports = FleetSimulator::new(cfg).generate();
        for r in &reports {
            assert!(r.timestamp >= Timestamp::ZERO && r.timestamp <= end);
        }
    }

    #[test]
    fn fishing_fraction_is_respected() {
        let cfg = FleetConfig {
            vessels: 100,
            ..FleetConfig::tiny(8)
        };
        let sim = FleetSimulator::new(cfg);
        let fishing = sim.profiles().iter().filter(|p| p.is_fishing).count();
        assert_eq!(fishing, 18);
    }

    #[test]
    fn vessels_actually_move() {
        let sim = FleetSimulator::new(FleetConfig::tiny(9));
        let reports = sim.generate();
        // At least one vessel covers > 5 km between its extreme positions.
        let moved = sim.profiles().iter().any(|p| {
            let own: Vec<_> = reports.iter().filter(|r| r.mmsi == p.mmsi).collect();
            own.iter().any(|a| {
                own.iter()
                    .any(|b| haversine_distance_m(a.position, b.position) > 5_000.0)
            })
        });
        assert!(moved);
    }

    #[test]
    fn some_vessels_pause_reporting_for_gaps() {
        // With rogue vessels forced on, at least one inter-report interval
        // should exceed the gap threshold of 10 minutes.
        let cfg = FleetConfig {
            rogue_fraction: 1.0,
            vessels: 20,
            ..FleetConfig::tiny(10)
        };
        let sim = FleetSimulator::new(cfg);
        let reports = sim.generate();
        let mut found_gap = false;
        for p in sim.profiles() {
            let mut last: Option<Timestamp> = None;
            for r in reports.iter().filter(|r| r.mmsi == p.mmsi) {
                if let Some(prev) = last {
                    if (r.timestamp - prev).as_secs() > 600 {
                        found_gap = true;
                    }
                }
                last = Some(r.timestamp);
            }
        }
        assert!(found_gap, "no communication gap produced");
    }

    #[test]
    fn mean_reporting_interval_is_order_of_minutes() {
        let sim = FleetSimulator::new(FleetConfig::tiny(11));
        let reports = sim.generate();
        let span = (reports.last().unwrap().timestamp - reports[0].timestamp).as_secs() as f64;
        let per_vessel_rate = reports.len() as f64 / 12.0 / span;
        // Between one report per 10 s and one per 5 min on average.
        assert!(
            (1.0 / 300.0..=1.0 / 10.0).contains(&per_vessel_rate),
            "rate {per_vessel_rate}"
        );
    }
}
