//! Stream replay helpers.
//!
//! §5: "We simulated a streaming behavior by consuming this positional data
//! little by little ... we replay this stream and the window keeps in pace
//! with the reported timestamps and not the actual time of each simulation."
//!
//! Also provides NMEA round-tripping — rendering a generated fleet stream
//! as `!AIVDM` sentences and feeding them through the [`DataScanner`] — so
//! end-to-end runs exercise the real decode path, and fault injection that
//! corrupts a fraction of sentences to exercise the cleaning path.

use maritime_stream::{rate, Timestamp};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::nmea::encode_report;
use crate::scanner::DataScanner;
use crate::types::{PositionReport, PositionTuple};

/// Converts decoded reports into the positional-tuple stream keyed by
/// timestamp, ready for [`maritime_stream::SlideBatches`].
#[must_use]
pub fn to_tuple_stream(reports: &[PositionReport]) -> Vec<(Timestamp, PositionTuple)> {
    reports
        .iter()
        .map(|r| (r.timestamp, PositionTuple::from(*r)))
        .collect()
}

/// Rescales a tuple stream to a target mean arrival rate (positions/sec) —
/// the stress-test input of Figure 7.
#[must_use]
pub fn at_rate(
    stream: &[(Timestamp, PositionTuple)],
    positions_per_sec: f64,
) -> Vec<(Timestamp, PositionTuple)> {
    rate::rescale_to_rate(stream, positions_per_sec)
}

/// Renders reports as NMEA sentences, optionally corrupting a fraction of
/// them (bit errors in transit), and scans them back. Returns the clean
/// tuples and the scanner with its discard statistics.
#[must_use]
pub fn roundtrip_nmea(
    reports: &[PositionReport],
    corrupt_fraction: f64,
    seed: u64,
) -> (Vec<PositionTuple>, DataScanner) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut scanner = DataScanner::new();
    let mut tuples = Vec::with_capacity(reports.len());
    for report in reports {
        let mut sentence = encode_report(report);
        if rng.gen::<f64>() < corrupt_fraction {
            corrupt(&mut sentence, &mut rng);
        }
        if let Some(t) = scanner.scan(&sentence, report.timestamp) {
            tuples.push(t);
        }
    }
    (tuples, scanner)
}

/// Flips one payload character to simulate a transmission error.
#[allow(clippy::ptr_arg)] // in-place mutation of an owned sentence buffer
fn corrupt(sentence: &mut String, rng: &mut SmallRng) {
    // SAFETY: we only swap ASCII bytes for ASCII bytes, preserving UTF-8.
    let bytes = unsafe { sentence.as_bytes_mut() };
    // Payload sits between the 5th comma and the final '*'; corrupt there.
    let commas: Vec<usize> = bytes
        .iter()
        .enumerate()
        .filter(|(_, b)| **b == b',')
        .map(|(i, _)| i)
        .collect();
    let star = bytes.iter().rposition(|b| *b == b'*').unwrap_or(0);
    if commas.len() >= 5 && star > commas[4] + 2 {
        let idx = rng.gen_range(commas[4] + 1..star - 1);
        bytes[idx] = if bytes[idx] == b'0' { b'1' } else { b'0' };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{FleetConfig, FleetSimulator};

    fn small_fleet() -> Vec<PositionReport> {
        FleetSimulator::new(FleetConfig::tiny(42)).generate()
    }

    #[test]
    fn tuple_stream_preserves_order_and_length() {
        let reports = small_fleet();
        let stream = to_tuple_stream(&reports);
        assert_eq!(stream.len(), reports.len());
        for w in stream.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn clean_roundtrip_loses_nothing() {
        let reports = small_fleet();
        let (tuples, scanner) = roundtrip_nmea(&reports, 0.0, 1);
        assert_eq!(tuples.len(), reports.len());
        assert_eq!(scanner.stats().accepted as usize, reports.len());
        assert_eq!(scanner.stats().bad_checksum, 0);
        // Positions survive the wire round-trip within wire resolution.
        for (t, r) in tuples.iter().zip(&reports) {
            assert_eq!(t.mmsi, r.mmsi);
            assert!((t.position.lon - r.position.lon).abs() < 1e-5);
            assert!((t.position.lat - r.position.lat).abs() < 1e-5);
        }
    }

    #[test]
    fn corrupted_sentences_are_discarded_not_decoded_wrong() {
        let reports = small_fleet();
        let (tuples, scanner) = roundtrip_nmea(&reports, 0.3, 2);
        let stats = scanner.stats();
        assert!(stats.bad_checksum > 0, "expected checksum rejections");
        assert_eq!(stats.accepted as usize, tuples.len());
        assert!(tuples.len() < reports.len());
        // Every accepted tuple matches its original exactly (no silent
        // corruption slipped through the checksum).
        let mut it = reports.iter();
        for t in &tuples {
            let orig = it
                .by_ref()
                .find(|r| r.timestamp == t.timestamp && r.mmsi == t.mmsi)
                .expect("accepted tuple must correspond to an original");
            assert!((t.position.lon - orig.position.lon).abs() < 1e-5);
        }
    }

    #[test]
    fn at_rate_rescales_stream() {
        let reports = small_fleet();
        let stream = to_tuple_stream(&reports);
        let fast = at_rate(&stream, 1_000.0);
        let r = maritime_stream::rate::mean_rate(&fast).unwrap();
        // Integer-second timestamps quantize sub-second spacings, so allow
        // a generous tolerance at high target rates.
        assert!((r - 1_000.0).abs() / 1_000.0 < 0.2, "rate {r}");
    }
}
