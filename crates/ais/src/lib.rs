//! AIS (Automatic Identification System) substrate.
//!
//! The paper's input is "a stream of AIS tracking messages from vessels"
//! (§2): ITU-R M.1371 position reports of types 1, 2, 3 (class A) and
//! 18, 19 (class B), delivered as NMEA 0183 `!AIVDM` sentences. This crate
//! implements:
//!
//! * the six-bit ASCII payload armouring and bit-field extraction
//!   ([`sixbit`], [`nmea`]) with NMEA checksum validation;
//! * the position-report data model ([`types`], [`mmsi`]);
//! * the *Data Scanner* of Figure 1 ([`scanner`]): decode each sentence,
//!   keep only `⟨MMSI, Lon, Lat, τ⟩`, and discard corrupt messages;
//! * a deterministic synthetic fleet simulator ([`synthetic`]) standing in
//!   for the proprietary IMIS Hellas dataset (see DESIGN.md §1);
//! * stream replay helpers ([`replay`]).

#![warn(missing_docs)]

pub mod mmsi;
pub mod nmea;
pub mod replay;
pub mod scanner;
pub mod sixbit;
pub mod synthetic;
pub mod trace;
pub mod types;
pub mod voyage;

pub use mmsi::Mmsi;
pub use scanner::{DataScanner, ScanStats};
pub use synthetic::{FleetConfig, FleetSimulator, VesselClass, VesselProfile};
pub use types::{AisMessageType, PositionReport, PositionTuple};
pub use voyage::{Defragged, Defragmenter, PendingFragments, StaticVoyageData, VoyageRegistry};
