//! Scripted single-vessel traces for scenarios, tests, and examples.
//!
//! The fleet simulator produces *organic* traffic; incident scripting needs
//! precise control ("sail here, drift for an hour, go dark, reappear").
//! [`TraceBuilder`] composes a vessel's trace from legs, drifts, pauses and
//! gaps, producing the raw positional tuples the pipeline consumes.

use maritime_geo::{destination, haversine_distance_m, initial_bearing_deg, knots_to_mps, GeoPoint};
use maritime_stream::{Duration, Timestamp};

use crate::mmsi::Mmsi;
use crate::types::PositionTuple;

/// Builds a scripted trace for one vessel.
///
/// ```
/// use maritime_ais::{trace::TraceBuilder, Mmsi};
/// use maritime_geo::GeoPoint;
/// use maritime_stream::{Duration, Timestamp};
///
/// let trace = TraceBuilder::new(Mmsi(7), GeoPoint::new(24.0, 38.0), Timestamp(0))
///     .report_every(Duration::secs(30))
///     .cruise_to(GeoPoint::new(24.3, 38.0), 12.0) // knots
///     .drift(Duration::minutes(45), 2.0)
///     .gap(Duration::minutes(20))
///     .cruise_to(GeoPoint::new(24.5, 38.2), 12.0)
///     .build();
/// assert!(trace.len() > 50);
/// assert!(trace.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    mmsi: Mmsi,
    position: GeoPoint,
    now: Timestamp,
    report_interval: Duration,
    out: Vec<PositionTuple>,
    drift_angle: f64,
}

impl TraceBuilder {
    /// Starts a trace at `start` / `t0`; the first report is emitted there.
    #[must_use]
    pub fn new(mmsi: Mmsi, start: GeoPoint, t0: Timestamp) -> Self {
        let mut b = Self {
            mmsi,
            position: start,
            now: t0,
            report_interval: Duration::secs(30),
            out: Vec::new(),
            drift_angle: 77.0,
        };
        b.emit();
        b
    }

    /// Sets the reporting interval for subsequent segments.
    #[must_use]
    pub fn report_every(mut self, interval: Duration) -> Self {
        assert!(interval.as_secs() > 0, "interval must be positive");
        self.report_interval = interval;
        self
    }

    /// Sails in a straight line to `target` at `knots`, reporting along
    /// the way; the final report is at the target.
    #[must_use]
    pub fn cruise_to(mut self, target: GeoPoint, knots: f64) -> Self {
        assert!(knots > 0.0, "cruise speed must be positive");
        let step = knots_to_mps(knots) * self.report_interval.as_secs() as f64;
        loop {
            let remaining = haversine_distance_m(self.position, target);
            self.now = self.now + self.report_interval;
            if remaining <= step {
                self.position = target;
                self.emit();
                break;
            }
            let bearing = initial_bearing_deg(self.position, target);
            self.position = destination(self.position, bearing, step);
            self.emit();
        }
        self
    }

    /// Holds position (within GPS-jitter distance) for `duration` —
    /// produces the pause run behind a long-term stop.
    #[must_use]
    pub fn hold(mut self, duration: Duration) -> Self {
        let anchor = self.position;
        let end = self.now + duration;
        while self.now + self.report_interval <= end {
            self.now = self.now + self.report_interval;
            self.drift_angle = (self.drift_angle * 7.3 + 31.0) % 360.0;
            self.position = destination(anchor, self.drift_angle, 12.0);
            self.emit();
        }
        self.position = anchor;
        self
    }

    /// Drifts slowly (`knots`, typically 1.5–3) for `duration` along a
    /// wandering tow-line — the slow-motion pattern of Figure 3(d).
    #[must_use]
    pub fn drift(mut self, duration: Duration, knots: f64) -> Self {
        let end = self.now + duration;
        let step = knots_to_mps(knots) * self.report_interval.as_secs() as f64;
        while self.now + self.report_interval <= end {
            self.now = self.now + self.report_interval;
            self.drift_angle = (self.drift_angle + 9.0) % 360.0;
            // Mostly forward, slight wander.
            self.position = destination(self.position, self.drift_angle / 8.0, step);
            self.emit();
        }
        self
    }

    /// Falls silent for `duration`: no reports, position unchanged. The
    /// next segment resumes reporting from here (typically after a
    /// [`TraceBuilder::jump`] to where the vessel reappears).
    #[must_use]
    pub fn gap(mut self, duration: Duration) -> Self {
        self.now = self.now + duration;
        self
    }

    /// Teleports the vessel (used with [`TraceBuilder::gap`]: the vessel
    /// kept sailing while dark). Emits a report at the new position.
    #[must_use]
    pub fn jump(mut self, to: GeoPoint) -> Self {
        self.position = to;
        self.now = self.now + self.report_interval;
        self.emit();
        self
    }

    /// Current position (end of the scripted segments so far).
    #[must_use]
    pub fn position(&self) -> GeoPoint {
        self.position
    }

    /// Current trace time.
    #[must_use]
    pub fn time(&self) -> Timestamp {
        self.now
    }

    /// Finishes the script, returning the time-ordered tuples.
    #[must_use]
    pub fn build(self) -> Vec<PositionTuple> {
        self.out
    }

    fn emit(&mut self) {
        self.out.push(PositionTuple {
            mmsi: self.mmsi,
            position: self.position,
            timestamp: self.now,
        });
    }
}

/// Merges several vessel traces into one time-sorted stream.
#[must_use]
pub fn merge_traces(traces: Vec<Vec<PositionTuple>>) -> Vec<PositionTuple> {
    let mut all: Vec<PositionTuple> = traces.into_iter().flatten().collect();
    all.sort_by_key(|t| (t.timestamp, t.mmsi));
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lon: f64, lat: f64) -> GeoPoint {
        GeoPoint::new(lon, lat)
    }

    #[test]
    fn cruise_reaches_target_at_requested_speed() {
        let target = p(24.2, 38.0);
        let trace = TraceBuilder::new(Mmsi(1), p(24.0, 38.0), Timestamp(0))
            .report_every(Duration::secs(30))
            .cruise_to(target, 10.0)
            .build();
        let last = trace.last().unwrap();
        assert_eq!(last.position, target);
        // ~17.5 km at 10 kn ≈ 3400 s.
        let expected = haversine_distance_m(p(24.0, 38.0), target) / knots_to_mps(10.0);
        assert!(
            (last.timestamp.as_secs() as f64 - expected).abs() < 60.0,
            "took {} s, expected ~{expected:.0} s",
            last.timestamp.as_secs()
        );
        // Inter-report spacing is uniform.
        for w in trace.windows(2) {
            assert_eq!(w[1].timestamp - w[0].timestamp, Duration::secs(30));
        }
    }

    #[test]
    fn hold_stays_within_jitter_radius() {
        let anchor = p(24.0, 38.0);
        let trace = TraceBuilder::new(Mmsi(1), anchor, Timestamp(0))
            .report_every(Duration::secs(60))
            .hold(Duration::minutes(30))
            .build();
        assert!(trace.len() >= 30);
        for t in &trace {
            assert!(haversine_distance_m(t.position, anchor) < 50.0);
        }
    }

    #[test]
    fn gap_produces_silence() {
        let trace = TraceBuilder::new(Mmsi(1), p(24.0, 38.0), Timestamp(0))
            .report_every(Duration::secs(30))
            .cruise_to(p(24.05, 38.0), 10.0)
            .gap(Duration::minutes(30))
            .jump(p(24.15, 38.0))
            .cruise_to(p(24.2, 38.0), 10.0)
            .build();
        let max_silence = trace
            .windows(2)
            .map(|w| (w[1].timestamp - w[0].timestamp).as_secs())
            .max()
            .unwrap();
        assert!(max_silence >= 1_800, "max silence {max_silence}");
    }

    #[test]
    fn drift_moves_slowly() {
        let start = p(24.0, 38.0);
        let trace = TraceBuilder::new(Mmsi(1), start, Timestamp(0))
            .report_every(Duration::secs(60))
            .drift(Duration::hours(1), 2.0)
            .build();
        let end = trace.last().unwrap().position;
        let dist = haversine_distance_m(start, end);
        // 2 kn for an hour = ~3.7 km along a wandering path; net
        // displacement below that but clearly non-zero.
        assert!(dist > 500.0 && dist < 4_000.0, "net displacement {dist}");
    }

    #[test]
    fn merge_is_globally_sorted() {
        let a = TraceBuilder::new(Mmsi(1), p(24.0, 38.0), Timestamp(0))
            .cruise_to(p(24.05, 38.0), 10.0)
            .build();
        let b = TraceBuilder::new(Mmsi(2), p(25.0, 38.0), Timestamp(10))
            .cruise_to(p(25.05, 38.0), 10.0)
            .build();
        let merged = merge_traces(vec![a, b]);
        for w in merged.windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
        assert!(merged.iter().any(|t| t.mmsi == Mmsi(1)));
        assert!(merged.iter().any(|t| t.mmsi == Mmsi(2)));
    }
}
