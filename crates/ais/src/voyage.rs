//! AIS message type 5: static and voyage-related data.
//!
//! §3.2 of the paper: "AIS messages sometimes include information regarding
//! the destination of sailing vessels. Unfortunately ... this
//! voyage-related information is often missing or error-prone, mainly
//! because it is updated manually by the crew." The paper therefore derives
//! destinations from motion (trip reconstruction) instead of trusting the
//! field — but the field still has to be *parsed* to make that comparison.
//! This module implements the 424-bit type-5 payload (vessel name, call
//! sign, ship type, draught, declared destination, ETA), the two-fragment
//! `!AIVDM` transport it rides on, and a [`Defragmenter`] for reassembly.

use std::collections::HashMap;

use maritime_stream::Timestamp;
use serde::{Deserialize, Serialize};

use crate::mmsi::Mmsi;
use crate::nmea::{checksum, AivdmFragment, AivdmSentence, NmeaError};
use crate::sixbit::{BitCursor, BitWriter};

/// Decoded static & voyage data (message type 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StaticVoyageData {
    /// Reporting vessel.
    pub mmsi: Mmsi,
    /// IMO ship identification number (0 when unavailable).
    pub imo: u32,
    /// Radio call sign, trimmed.
    pub callsign: String,
    /// Vessel name, trimmed.
    pub name: String,
    /// AIS ship-type code.
    pub ship_type: u8,
    /// Maximum present static draught, meters (0.1 m resolution).
    pub draught_m: f64,
    /// Crew-entered destination, trimmed (frequently stale or empty).
    pub destination: String,
}

/// Encodes a six-bit-ASCII text field of exactly `chars` characters,
/// padding with `@`.
fn put_text(w: &mut BitWriter, text: &str, chars: usize) {
    let mut written = 0;
    for ch in text.chars().take(chars) {
        let v = char_to_sixbit(ch);
        w.put_u32(u32::from(v), 6);
        written += 1;
    }
    for _ in written..chars {
        w.put_u32(0, 6); // '@' padding
    }
}

/// Reads a six-bit-ASCII text field of `chars` characters, trimming the
/// `@` padding and trailing spaces.
fn get_text(r: &mut BitCursor<'_>, chars: usize) -> Option<String> {
    let mut out = String::with_capacity(chars);
    for _ in 0..chars {
        let v = r.get_u32(6)? as u8;
        out.push(sixbit_to_char(v));
    }
    Some(out.trim_end_matches(['@', ' ']).to_string())
}

/// The AIS six-bit text alphabet: 0–31 map to `@A–Z[\]^_`, 32–63 to
/// space through `?`.
fn sixbit_to_char(v: u8) -> char {
    if v < 32 {
        (v + 64) as char
    } else {
        v as char
    }
}

fn char_to_sixbit(ch: char) -> u8 {
    let up = ch.to_ascii_uppercase() as u8;
    match up {
        64..=95 => up - 64, // '@'..'_' -> 0..31
        32..=63 => up,      // ' '..'?' -> 32..63
        _ => 0,             // unrepresentable -> '@'
    }
}

/// Encodes a [`StaticVoyageData`] as the standard two-fragment `!AIVDM`
/// pair with sequential message id `seq_id`.
#[must_use]
pub fn encode_static_voyage(data: &StaticVoyageData, seq_id: u8) -> [String; 2] {
    let mut w = BitWriter::new();
    w.put_u32(5, 6); // message type
    w.put_u32(0, 2); // repeat
    w.put_u32(data.mmsi.0, 30);
    w.put_u32(0, 2); // AIS version
    w.put_u32(data.imo, 30);
    put_text(&mut w, &data.callsign, 7);
    put_text(&mut w, &data.name, 20);
    w.put_u32(u32::from(data.ship_type), 8);
    w.put_u32(0, 30); // dimensions
    w.put_u32(0, 4); // fix type
    w.put_u32(0, 20); // ETA (month/day/hour/minute; 0 = unavailable)
    w.put_u32(((data.draught_m * 10.0).round() as u32).min(255), 8);
    put_text(&mut w, &data.destination, 20);
    w.put_u32(0, 1); // DTE
    w.put_u32(0, 1); // spare
    let (payload, fill) = w.finish();

    // Split the armoured payload across two sentences (the standard split
    // for the 424-bit type 5 is 60 + 11 characters).
    let cut = payload.len().min(60);
    let (p1, p2) = payload.split_at(cut);
    let body1 = format!("AIVDM,2,1,{seq_id},A,{p1},0");
    let body2 = format!("AIVDM,2,2,{seq_id},A,{p2},{fill}");
    [
        format!("!{body1}*{:02X}", checksum(&body1)),
        format!("!{body2}*{:02X}", checksum(&body2)),
    ]
}

/// Decodes a reassembled type-5 payload.
pub fn decode_static_voyage(payload: &str, fill_bits: u8) -> Result<StaticVoyageData, NmeaError> {
    let mut r = BitCursor::new(payload.as_bytes(), fill_bits).ok_or(NmeaError::BadPayload)?;
    let msg_type = r.get_u32(6).ok_or(NmeaError::BadPayload)?;
    if msg_type != 5 {
        return Err(NmeaError::UnsupportedType(msg_type as u8));
    }
    r.skip(2).ok_or(NmeaError::BadPayload)?;
    let mmsi_raw = r.get_u32(30).ok_or(NmeaError::BadPayload)?;
    let mmsi = Mmsi::try_new(mmsi_raw).map_err(|e| NmeaError::BadMmsi(e.0))?;
    r.skip(2).ok_or(NmeaError::BadPayload)?;
    let imo = r.get_u32(30).ok_or(NmeaError::BadPayload)?;
    let callsign = get_text(&mut r, 7).ok_or(NmeaError::BadPayload)?;
    let name = get_text(&mut r, 20).ok_or(NmeaError::BadPayload)?;
    let ship_type = r.get_u32(8).ok_or(NmeaError::BadPayload)? as u8;
    r.skip(30 + 4 + 20).ok_or(NmeaError::BadPayload)?;
    let draught = r.get_u32(8).ok_or(NmeaError::BadPayload)?;
    let destination = get_text(&mut r, 20).ok_or(NmeaError::BadPayload)?;
    Ok(StaticVoyageData {
        mmsi,
        imo,
        callsign,
        name,
        ship_type,
        draught_m: f64::from(draught) / 10.0,
        destination,
    })
}

/// Reassembles multi-fragment AIVDM messages.
///
/// Fragments are keyed by `(source, sequence id, channel, total)`; a
/// message is released once all its fragments have arrived. The source
/// dimension matters whenever one scanner drains several physical feeds
/// (TCP connections, UDP peers): NMEA sequence ids are 1 digit and every
/// receiver counts from zero, so two sources interleaving type-5 pairs
/// collide on `(seq, channel, total)` alone and would cross-assemble into
/// a garbled payload. Single-feed callers use [`Defragmenter::push_fragment`],
/// which pins source 0. Stale partial messages are evicted after
/// `max_pending` distinct keys accumulate (radio loss means some fragments
/// never arrive).
#[derive(Debug)]
pub struct Defragmenter {
    pending: HashMap<(u32, u8, char, u8), PendingMessage>,
    /// Arrival counter for LRU-ish eviction.
    clock: u64,
    max_pending: usize,
    /// Partial messages abandoned with fragments missing — evicted under
    /// memory pressure or still incomplete at end of stream. These are
    /// truncated transmissions, and a radio that truncates messages is a
    /// link-quality signal the scanner must be able to report.
    evicted_incomplete: u64,
}

#[derive(Debug)]
struct PendingMessage {
    fragments: Vec<Option<(String, u8)>>,
    arrived: usize,
    last_touch: u64,
}

/// Plain-data snapshot of a [`Defragmenter`]'s in-flight partial messages,
/// produced by [`Defragmenter::export_pending`] for checkpointing.
///
/// Each entry is `(key, fragment slots, last_touch)` where the key is
/// `(source, sequence id, channel, total)` and the slots hold
/// `(payload, fill_bits)` for fragments that have arrived. Entries are
/// sorted by key so two checkpoints of the same state encode identically.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PendingFragments {
    /// The still-incomplete messages, sorted by key.
    pub messages: Vec<((u32, u8, char, u8), Vec<Option<(String, u8)>>, u64)>,
    /// The defragmenter's LRU arrival clock.
    pub clock: u64,
    /// Running count of partial messages abandoned so far.
    pub evicted_incomplete: u64,
}

/// Outcome of feeding one fragment to the [`Defragmenter`].
///
/// The common case — a single-fragment message — borrows its payload from
/// the input line, so the steady-state scanner path never copies it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Defragged<'a> {
    /// A complete single-fragment message: `(payload, fill_bits)`, the
    /// payload borrowed straight from the parsed line.
    Single(&'a str, u8),
    /// Fragment buffered (or dropped as malformed); message not complete.
    Pending,
    /// The final fragment of a multi-part message arrived: the reassembled
    /// `(payload, fill_bits of the last fragment)`.
    Complete(String, u8),
}

impl Default for Defragmenter {
    fn default() -> Self {
        Self::new(64)
    }
}

impl Defragmenter {
    /// Creates a defragmenter holding at most `max_pending` partial
    /// messages.
    #[must_use]
    pub fn new(max_pending: usize) -> Self {
        Self {
            pending: HashMap::new(),
            clock: 0,
            max_pending: max_pending.max(1),
            evicted_incomplete: 0,
        }
    }

    /// Feeds one parsed sentence. Single-fragment sentences pass through
    /// immediately; fragments of multi-part messages are buffered until
    /// complete, then the concatenated `(payload, fill_bits)` is returned.
    pub fn push(&mut self, sentence: &AivdmSentence) -> Option<(String, u8)> {
        match self.push_fragment(&sentence.as_fragment()) {
            Defragged::Single(payload, fill) => Some((payload.to_string(), fill)),
            Defragged::Pending => None,
            Defragged::Complete(payload, fill) => Some((payload, fill)),
        }
    }

    /// Feeds one parsed fragment — the zero-copy form of
    /// [`Defragmenter::push`]. A single-fragment message is handed back as
    /// [`Defragged::Single`] borrowing the input payload; only fragments
    /// of genuinely multi-part messages are copied into the pending
    /// buffer.
    pub fn push_fragment<'a>(&mut self, sentence: &AivdmFragment<'a>) -> Defragged<'a> {
        self.push_fragment_from(0, sentence)
    }

    /// Feeds one parsed fragment received from the physical feed `source`.
    /// Fragments only assemble with siblings from the *same* source:
    /// interleaved multi-part messages from two TCP connections that happen
    /// to share a sequence id and channel stay separate instead of
    /// cross-assembling.
    pub fn push_fragment_from<'a>(
        &mut self,
        source: u32,
        sentence: &AivdmFragment<'a>,
    ) -> Defragged<'a> {
        self.clock += 1;
        if sentence.total <= 1 {
            return Defragged::Single(sentence.payload, sentence.fill_bits);
        }
        if sentence.number == 0 || sentence.number > sentence.total {
            return Defragged::Pending; // malformed fragment index
        }
        let key = (
            source,
            sentence.seq_id.unwrap_or(0),
            sentence.channel,
            sentence.total,
        );
        let clock = self.clock;
        let total = usize::from(sentence.total);
        let entry = self.pending.entry(key).or_insert_with(|| PendingMessage {
            fragments: vec![None; total],
            arrived: 0,
            last_touch: clock,
        });
        let idx = usize::from(sentence.number) - 1;
        if entry.fragments[idx].is_none() {
            entry.arrived += 1;
        }
        entry.fragments[idx] = Some((sentence.payload.to_string(), sentence.fill_bits));
        entry.last_touch = clock;

        if entry.arrived == total {
            let entry = self.pending.remove(&key).expect("just touched");
            let mut payload = String::new();
            let mut fill = 0;
            for frag in entry.fragments.into_iter().flatten() {
                payload.push_str(&frag.0);
                fill = frag.1; // fill bits of the final fragment apply
            }
            return Defragged::Complete(payload, fill);
        }
        self.evict_if_needed();
        Defragged::Pending
    }

    /// Partial messages currently buffered.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Multi-fragment messages abandoned incomplete so far (evicted under
    /// pressure or drained at end of stream): truncated transmissions.
    #[must_use]
    pub fn evicted_incomplete(&self) -> u64 {
        self.evicted_incomplete
    }

    /// Abandons every still-pending partial message, counting each as an
    /// incomplete eviction, and returns how many were dropped. Call at end
    /// of stream: a fragment set that never completed *is* a truncated
    /// message, not a pending one.
    pub fn drain_pending(&mut self) -> u64 {
        let dropped = self.pending.len() as u64;
        self.pending.clear();
        self.evicted_incomplete += dropped;
        dropped
    }

    /// Snapshots the in-flight partial messages for checkpointing —
    /// unlike [`Defragmenter::drain_pending`], nothing is abandoned or
    /// counted as truncated, so a checkpoint taken mid-fragment can be
    /// restored and the reassembled sentence still completes exactly
    /// once. Messages are sorted by key for a deterministic encoding.
    #[must_use]
    pub fn export_pending(&self) -> PendingFragments {
        let mut messages: Vec<_> = self
            .pending
            .iter()
            .map(|(key, p)| (*key, p.fragments.clone(), p.last_touch))
            .collect();
        messages.sort_by_key(|(key, _, _)| *key);
        PendingFragments {
            messages,
            clock: self.clock,
            evicted_incomplete: self.evicted_incomplete,
        }
    }

    /// Restores the partial-message state captured by
    /// [`Defragmenter::export_pending`], replacing any current pending
    /// state. The per-message arrival counts are recomputed from the
    /// fragment slots.
    pub fn restore_pending(&mut self, state: PendingFragments) {
        self.pending = state
            .messages
            .into_iter()
            .map(|(key, fragments, last_touch)| {
                let arrived = fragments.iter().filter(|f| f.is_some()).count();
                (
                    key,
                    PendingMessage {
                        fragments,
                        arrived,
                        last_touch,
                    },
                )
            })
            .collect();
        self.clock = state.clock;
        self.evicted_incomplete = state.evicted_incomplete;
    }

    fn evict_if_needed(&mut self) {
        while self.pending.len() > self.max_pending {
            let oldest = self
                .pending
                .iter()
                .min_by_key(|(_, p)| p.last_touch)
                .map(|(k, _)| *k)
                .expect("non-empty");
            self.pending.remove(&oldest);
            self.evicted_incomplete += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nmea::parse_sentence;

    fn sample() -> StaticVoyageData {
        StaticVoyageData {
            mmsi: Mmsi(237_004_321),
            imo: 9_074_729,
            callsign: "SV2BZ".into(),
            name: "BLUE STAR PAROS".into(),
            ship_type: 60, // passenger
            draught_m: 5.6,
            destination: "PIRAEUS".into(),
        }
    }

    #[test]
    fn type5_roundtrip_via_two_fragments() {
        let data = sample();
        let [s1, s2] = encode_static_voyage(&data, 3);
        let f1 = parse_sentence(&s1).unwrap();
        let f2 = parse_sentence(&s2).unwrap();
        assert_eq!(f1.total, 2);
        assert_eq!(f1.number, 1);
        assert_eq!(f2.number, 2);
        assert_eq!(f1.seq_id, Some(3));

        let mut defrag = Defragmenter::default();
        assert!(defrag.push(&f1).is_none());
        let (payload, fill) = defrag.push(&f2).expect("complete after 2nd fragment");
        let decoded = decode_static_voyage(&payload, fill).unwrap();
        assert_eq!(decoded, data);
        assert_eq!(defrag.pending(), 0);
    }

    #[test]
    fn interleaved_sources_never_cross_assemble() {
        // Two feeds, both transmitting a type-5 pair with the SAME sequence
        // id and channel — exactly what two independent receivers produce,
        // since every receiver numbers its own sequences from zero. The
        // fragments interleave: a1, b1, a2, b2. Keyed per source, each pair
        // assembles with its own sibling; keyed only by (seq, channel,
        // total) the second first-fragment would overwrite the first and
        // source A's message would complete with source B's opening half.
        let a = sample();
        let b = StaticVoyageData {
            mmsi: Mmsi(239_111_222),
            imo: 9_999_999,
            callsign: "SW0XY".into(),
            name: "AEGEAN GHOST".into(),
            ship_type: 30, // fishing
            draught_m: 2.4,
            destination: "KALYMNOS".into(),
        };
        let [a1, a2] = encode_static_voyage(&a, 7);
        let [b1, b2] = encode_static_voyage(&b, 7);
        let sentences: Vec<_> = [&a1, &b1, &a2, &b2]
            .into_iter()
            .map(|s| parse_sentence(s).unwrap())
            .collect();
        let mut defrag = Defragmenter::default();
        assert_eq!(
            defrag.push_fragment_from(1, &sentences[0].as_fragment()),
            Defragged::Pending
        );
        assert_eq!(
            defrag.push_fragment_from(2, &sentences[1].as_fragment()),
            Defragged::Pending
        );
        let done_a = defrag.push_fragment_from(1, &sentences[2].as_fragment());
        let done_b = defrag.push_fragment_from(2, &sentences[3].as_fragment());
        let Defragged::Complete(pa, fa) = done_a else {
            panic!("source 1 pair must complete: {done_a:?}");
        };
        let Defragged::Complete(pb, fb) = done_b else {
            panic!("source 2 pair must complete: {done_b:?}");
        };
        assert_eq!(decode_static_voyage(&pa, fa).unwrap(), a);
        assert_eq!(decode_static_voyage(&pb, fb).unwrap(), b);
        assert_eq!(defrag.pending(), 0);
        assert_eq!(defrag.evicted_incomplete(), 0);
    }

    #[test]
    fn fragments_out_of_order_still_assemble() {
        let [s1, s2] = encode_static_voyage(&sample(), 1);
        let f1 = parse_sentence(&s1).unwrap();
        let f2 = parse_sentence(&s2).unwrap();
        let mut defrag = Defragmenter::default();
        assert!(defrag.push(&f2).is_none());
        let (payload, fill) = defrag.push(&f1).unwrap();
        let decoded = decode_static_voyage(&payload, fill).unwrap();
        assert_eq!(decoded.destination, "PIRAEUS");
    }

    #[test]
    fn duplicate_fragment_is_harmless() {
        let [s1, s2] = encode_static_voyage(&sample(), 1);
        let f1 = parse_sentence(&s1).unwrap();
        let f2 = parse_sentence(&s2).unwrap();
        let mut defrag = Defragmenter::default();
        assert!(defrag.push(&f1).is_none());
        assert!(defrag.push(&f1).is_none());
        assert!(defrag.push(&f2).is_some());
    }

    #[test]
    fn interleaved_messages_by_seq_id() {
        let a = sample();
        let b = StaticVoyageData {
            mmsi: Mmsi(237_009_999),
            destination: "HERAKLION".into(),
            ..sample()
        };
        let [a1, a2] = encode_static_voyage(&a, 1);
        let [b1, b2] = encode_static_voyage(&b, 2);
        let mut defrag = Defragmenter::default();
        assert!(defrag.push(&parse_sentence(&a1).unwrap()).is_none());
        assert!(defrag.push(&parse_sentence(&b1).unwrap()).is_none());
        assert_eq!(defrag.pending(), 2);
        let (pb, fb) = defrag.push(&parse_sentence(&b2).unwrap()).unwrap();
        assert_eq!(decode_static_voyage(&pb, fb).unwrap().destination, "HERAKLION");
        let (pa, fa) = defrag.push(&parse_sentence(&a2).unwrap()).unwrap();
        assert_eq!(decode_static_voyage(&pa, fa).unwrap().destination, "PIRAEUS");
    }

    #[test]
    fn eviction_bounds_memory() {
        let mut defrag = Defragmenter::new(4);
        for seq in 0..20u8 {
            let [s1, _] = encode_static_voyage(&sample(), seq % 10);
            // Vary the channel to create distinct keys beyond seq id reuse.
            let mut f = parse_sentence(&s1).unwrap();
            f.channel = if seq % 2 == 0 { 'A' } else { 'B' };
            f.seq_id = Some(seq);
            defrag.push(&f);
        }
        assert!(defrag.pending() <= 4);
        assert_eq!(defrag.evicted_incomplete(), 16, "20 keys, 4 retained");
    }

    #[test]
    fn drain_counts_leftover_fragments_as_truncated() {
        let [s1, _] = encode_static_voyage(&sample(), 7);
        let mut defrag = Defragmenter::default();
        assert!(defrag.push(&parse_sentence(&s1).unwrap()).is_none());
        assert_eq!(defrag.pending(), 1);
        assert_eq!(defrag.drain_pending(), 1);
        assert_eq!(defrag.pending(), 0);
        assert_eq!(defrag.evicted_incomplete(), 1);
        // Draining an empty defragmenter is a no-op.
        assert_eq!(defrag.drain_pending(), 0);
        assert_eq!(defrag.evicted_incomplete(), 1);
    }

    #[test]
    fn empty_fields_and_padding() {
        let data = StaticVoyageData {
            callsign: String::new(),
            name: String::new(),
            destination: String::new(),
            draught_m: 0.0,
            ..sample()
        };
        let [s1, s2] = encode_static_voyage(&data, 0);
        let mut defrag = Defragmenter::default();
        defrag.push(&parse_sentence(&s1).unwrap());
        let (p, f) = defrag.push(&parse_sentence(&s2).unwrap()).unwrap();
        let decoded = decode_static_voyage(&p, f).unwrap();
        assert_eq!(decoded.name, "");
        assert_eq!(decoded.destination, "");
        assert_eq!(decoded.draught_m, 0.0);
    }

    #[test]
    fn text_alphabet_covers_names() {
        for ch in "ABCXYZ 0123456789-./?".chars() {
            let v = char_to_sixbit(ch);
            assert_eq!(sixbit_to_char(v), ch, "char {ch}");
        }
        // Lowercase is uppercased; exotic characters degrade to '@'.
        assert_eq!(sixbit_to_char(char_to_sixbit('a')), 'A');
        assert_eq!(sixbit_to_char(char_to_sixbit('ß')), '@');
    }

    #[test]
    fn export_restore_pending_roundtrips_partial_state() {
        let [s1, s2] = encode_static_voyage(&sample(), 6);
        let mut defrag = Defragmenter::new(8);
        assert!(defrag.push(&parse_sentence(&s1).unwrap()).is_none());
        let snapshot = defrag.export_pending();
        assert_eq!(snapshot.messages.len(), 1);

        // A restored defragmenter completes the message from the snapshot
        // alone, and its re-export matches the original byte for byte.
        let mut restored = Defragmenter::new(8);
        restored.restore_pending(snapshot.clone());
        assert_eq!(restored.export_pending(), snapshot);
        assert_eq!(restored.pending(), 1);
        let (p, f) = restored.push(&parse_sentence(&s2).unwrap()).unwrap();
        let decoded = decode_static_voyage(&p, f).unwrap();
        assert_eq!(decoded.mmsi, sample().mmsi);
        assert_eq!(restored.pending(), 0);
        assert_eq!(restored.evicted_incomplete(), 0);

        // The eviction counter rides along so link-quality stats survive a
        // checkpoint too.
        let mut lossy = Defragmenter::new(8);
        lossy.push(&parse_sentence(&s1).unwrap());
        assert_eq!(lossy.drain_pending(), 1);
        let state = lossy.export_pending();
        assert_eq!(state.evicted_incomplete, 1);
        let mut carried = Defragmenter::new(8);
        carried.restore_pending(state);
        assert_eq!(carried.evicted_incomplete(), 1);
    }

    #[test]
    fn wrong_type_rejected() {
        let mut w = BitWriter::new();
        w.put_u32(1, 6);
        for _ in 0..19 {
            w.put_u32(0, 22); // 418 zero bits in word-sized chunks
        }
        let (p, f) = w.finish();
        assert!(matches!(
            decode_static_voyage(&p, f),
            Err(NmeaError::UnsupportedType(1))
        ));
    }
}

/// A small registry of the latest voyage declarations per vessel, with the
/// receive timestamp — consumed by the archive's declared-vs-derived
/// destination comparison.
#[derive(Debug, Default)]
pub struct VoyageRegistry {
    latest: HashMap<Mmsi, (Timestamp, StaticVoyageData)>,
}

impl VoyageRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a declaration (keeps the newest per vessel).
    pub fn record(&mut self, at: Timestamp, data: StaticVoyageData) {
        match self.latest.get(&data.mmsi) {
            Some((prev, _)) if *prev > at => {}
            _ => {
                self.latest.insert(data.mmsi, (at, data));
            }
        }
    }

    /// The latest declaration for a vessel.
    #[must_use]
    pub fn latest(&self, mmsi: Mmsi) -> Option<&StaticVoyageData> {
        self.latest.get(&mmsi).map(|(_, d)| d)
    }

    /// Number of vessels with declarations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.latest.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.latest.is_empty()
    }
}

#[cfg(test)]
mod registry_tests {
    use super::*;

    fn decl(mmsi: u32, dest: &str) -> StaticVoyageData {
        StaticVoyageData {
            mmsi: Mmsi(mmsi),
            imo: 0,
            callsign: String::new(),
            name: String::new(),
            ship_type: 70,
            draught_m: 4.0,
            destination: dest.into(),
        }
    }

    #[test]
    fn keeps_newest_declaration() {
        let mut reg = VoyageRegistry::new();
        reg.record(Timestamp(100), decl(1, "PIRAEUS"));
        reg.record(Timestamp(200), decl(1, "RHODES"));
        assert_eq!(reg.latest(Mmsi(1)).unwrap().destination, "RHODES");
        // An older declaration arriving late does not overwrite.
        reg.record(Timestamp(150), decl(1, "VOLOS"));
        assert_eq!(reg.latest(Mmsi(1)).unwrap().destination, "RHODES");
        assert_eq!(reg.len(), 1);
    }
}
