//! Six-bit ASCII payload armouring and bit-level field access.
//!
//! AIS payloads are bit strings packed six bits per character into a
//! printable subset of ASCII (ITU-R M.1371 / IEC 61162-1). The armouring
//! maps values 0–39 to `'0'..='W'` and 40–63 to `'`'..='w'`.

use bytes::{BufMut, BytesMut};

/// Encodes a six-bit value (0–63) into its ASCII armour character.
#[must_use]
pub fn armor(value: u8) -> u8 {
    debug_assert!(value < 64);
    if value < 40 {
        value + 48
    } else {
        value + 56
    }
}

/// Sentinel marking a byte outside the armour alphabet in [`UNARMOR`].
pub const INVALID_SIXBIT: u8 = 0xFF;

/// Armour-alphabet lookup table: `UNARMOR[b]` is the six-bit value of the
/// ASCII byte `b`, or [`INVALID_SIXBIT`] for bytes outside the alphabet.
/// One indexed load replaces the two range branches of the match-based
/// decoder on the hot path.
pub static UNARMOR: [u8; 256] = build_unarmor_table();

const fn build_unarmor_table() -> [u8; 256] {
    let mut table = [INVALID_SIXBIT; 256];
    let mut ch = 48usize; // '0'..='W' -> 0..=39
    while ch <= 87 {
        table[ch] = (ch - 48) as u8;
        ch += 1;
    }
    let mut ch = 96usize; // '`'..='w' -> 40..=63
    while ch <= 119 {
        table[ch] = (ch - 56) as u8;
        ch += 1;
    }
    table
}

/// Decodes an armour character back to its six-bit value.
#[must_use]
pub fn unarmor(ch: u8) -> Option<u8> {
    let v = UNARMOR[usize::from(ch)];
    (v != INVALID_SIXBIT).then_some(v)
}

/// Writes a bit string most-significant-bit first, producing an armoured
/// payload plus the number of fill bits appended to complete the final
/// six-bit group.
#[derive(Debug, Default)]
pub struct BitWriter {
    bits: Vec<bool>,
}

impl BitWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `width` bits of `value`, MSB first.
    pub fn put_u32(&mut self, value: u32, width: usize) {
        assert!(width <= 32);
        for i in (0..width).rev() {
            self.bits.push((value >> i) & 1 == 1);
        }
    }

    /// Appends a signed value in two's complement over `width` bits.
    pub fn put_i32(&mut self, value: i32, width: usize) {
        self.put_u32(value as u32 & mask(width), width);
    }

    /// Total bits written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether no bits have been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Finalizes into `(armoured payload, fill_bits)`.
    #[must_use]
    pub fn finish(mut self) -> (String, u8) {
        let rem = self.bits.len() % 6;
        let fill = if rem == 0 { 0 } else { 6 - rem };
        for _ in 0..fill {
            self.bits.push(false);
        }
        let mut out = BytesMut::with_capacity(self.bits.len() / 6);
        for chunk in self.bits.chunks(6) {
            let mut v = 0u8;
            for &b in chunk {
                v = (v << 1) | u8::from(b);
            }
            out.put_u8(armor(v));
        }
        (
            String::from_utf8(out.to_vec()).expect("armoured chars are ASCII"),
            fill as u8,
        )
    }
}

fn mask(width: usize) -> u32 {
    if width >= 32 {
        u32::MAX
    } else {
        (1u32 << width) - 1
    }
}

/// Zero-copy bit-field reader over an armoured payload.
///
/// The production decoder of the hot path: where [`BitReader`] unpacks the
/// payload into a `Vec<bool>` (one heap allocation plus a byte per bit),
/// the cursor validates the armour alphabet in one pass over [`UNARMOR`]
/// and then reads MSB-first bit fields straight off the borrowed payload
/// bytes. [`BitReader`] is retained as the reference decoder; the unit and
/// integration differential suites (`tests/decoder_differential.rs`) hold
/// the two byte-identical over arbitrary payloads, fill counts, and read
/// scripts.
#[derive(Debug)]
pub struct BitCursor<'a> {
    payload: &'a [u8],
    /// Readable bits: payload bits minus fill bits.
    bit_len: usize,
    pos: usize,
}

impl<'a> BitCursor<'a> {
    /// Positions a cursor over `payload`, discarding `fill_bits` trailing
    /// pad bits. Fails on characters outside the armour alphabet — the
    /// whole payload is validated eagerly so that a corrupt character
    /// anywhere fails the decode exactly as the reference decoder does,
    /// even if no read ever touches its bits.
    pub fn new(payload: &'a [u8], fill_bits: u8) -> Option<Self> {
        for &b in payload {
            if UNARMOR[usize::from(b)] == INVALID_SIXBIT {
                return None;
            }
        }
        let total = payload.len() * 6;
        let fill = usize::from(fill_bits.min(5));
        if fill > total {
            return None;
        }
        Some(Self {
            payload,
            bit_len: total - fill,
            pos: 0,
        })
    }

    /// Remaining unread bits.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bit_len - self.pos
    }

    /// The six-bit value whose `bit`-th payload bit (MSB-first) is queried.
    #[inline]
    fn bit(&self, bit: usize) -> u32 {
        let v = UNARMOR[usize::from(self.payload[bit / 6])];
        u32::from((v >> (5 - bit % 6)) & 1)
    }

    /// Reads `width` bits as an unsigned value, MSB first.
    pub fn get_u32(&mut self, width: usize) -> Option<u32> {
        assert!(width <= 32);
        if self.remaining() < width {
            return None;
        }
        let mut v = 0u32;
        for i in 0..width {
            v = (v << 1) | self.bit(self.pos + i);
        }
        self.pos += width;
        Some(v)
    }

    /// Reads `width` bits as a two's-complement signed value.
    pub fn get_i32(&mut self, width: usize) -> Option<i32> {
        let raw = self.get_u32(width)?;
        let sign_bit = 1u32 << (width - 1);
        Some(if raw & sign_bit != 0 {
            (raw | !mask(width)) as i32
        } else {
            raw as i32
        })
    }

    /// Skips `width` bits.
    pub fn skip(&mut self, width: usize) -> Option<()> {
        if self.remaining() < width {
            return None;
        }
        self.pos += width;
        Some(())
    }
}

/// Reads bit fields from an armoured payload.
///
/// This is the *reference* decoder: simple enough to audit against ITU-R
/// M.1371 by eye, and kept as the differential oracle for [`BitCursor`].
/// Production paths use the cursor; tests compare the two.
#[derive(Debug)]
pub struct BitReader {
    bits: Vec<bool>,
    pos: usize,
}

impl BitReader {
    /// Unarmours `payload`, discarding `fill_bits` trailing pad bits.
    /// Fails on characters outside the armour alphabet.
    pub fn from_payload(payload: &str, fill_bits: u8) -> Option<Self> {
        let mut bits = Vec::with_capacity(payload.len() * 6);
        for ch in payload.bytes() {
            let v = unarmor(ch)?;
            for i in (0..6).rev() {
                bits.push((v >> i) & 1 == 1);
            }
        }
        let fill = usize::from(fill_bits.min(5));
        if fill > bits.len() {
            return None;
        }
        bits.truncate(bits.len() - fill);
        Some(Self { bits, pos: 0 })
    }

    /// Remaining unread bits.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bits.len() - self.pos
    }

    /// Reads `width` bits as an unsigned value, MSB first.
    pub fn get_u32(&mut self, width: usize) -> Option<u32> {
        assert!(width <= 32);
        if self.remaining() < width {
            return None;
        }
        let mut v = 0u32;
        for _ in 0..width {
            v = (v << 1) | u32::from(self.bits[self.pos]);
            self.pos += 1;
        }
        Some(v)
    }

    /// Reads `width` bits as a two's-complement signed value.
    pub fn get_i32(&mut self, width: usize) -> Option<i32> {
        let raw = self.get_u32(width)?;
        let sign_bit = 1u32 << (width - 1);
        Some(if raw & sign_bit != 0 {
            (raw | !mask(width)) as i32
        } else {
            raw as i32
        })
    }

    /// Skips `width` bits.
    pub fn skip(&mut self, width: usize) -> Option<()> {
        if self.remaining() < width {
            return None;
        }
        self.pos += width;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn armor_alphabet_roundtrips() {
        for v in 0..64u8 {
            let ch = armor(v);
            assert_eq!(unarmor(ch), Some(v), "value {v}");
        }
    }

    #[test]
    fn invalid_armor_chars_rejected() {
        for ch in [b' ', b'*', b'!', b'X', b'_', b'x', b'~', 0u8, 200u8] {
            assert_eq!(unarmor(ch), None, "char {ch}");
        }
    }

    #[test]
    fn writer_reader_roundtrip_unsigned() {
        let mut w = BitWriter::new();
        w.put_u32(6, 6); // message type
        w.put_u32(237_001_234, 30);
        w.put_u32(1023, 10);
        let (payload, fill) = w.finish();
        let mut r = BitReader::from_payload(&payload, fill).unwrap();
        assert_eq!(r.get_u32(6), Some(6));
        assert_eq!(r.get_u32(30), Some(237_001_234));
        assert_eq!(r.get_u32(10), Some(1023));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn writer_reader_roundtrip_signed() {
        let mut w = BitWriter::new();
        w.put_i32(-123_456, 28);
        w.put_i32(123_456, 28);
        w.put_i32(-1, 27);
        let (payload, fill) = w.finish();
        let mut r = BitReader::from_payload(&payload, fill).unwrap();
        assert_eq!(r.get_i32(28), Some(-123_456));
        assert_eq!(r.get_i32(28), Some(123_456));
        assert_eq!(r.get_i32(27), Some(-1));
    }

    #[test]
    fn fill_bits_complete_final_group() {
        let mut w = BitWriter::new();
        w.put_u32(0b1010, 4); // 4 bits -> 2 fill bits
        let (payload, fill) = w.finish();
        assert_eq!(payload.len(), 1);
        assert_eq!(fill, 2);
        let mut r = BitReader::from_payload(&payload, fill).unwrap();
        assert_eq!(r.remaining(), 4);
        assert_eq!(r.get_u32(4), Some(0b1010));
    }

    #[test]
    fn reading_past_end_returns_none() {
        let mut w = BitWriter::new();
        w.put_u32(5, 6);
        let (payload, fill) = w.finish();
        let mut r = BitReader::from_payload(&payload, fill).unwrap();
        assert_eq!(r.get_u32(6), Some(5));
        assert_eq!(r.get_u32(1), None);
    }

    #[test]
    fn skip_advances_position() {
        let mut w = BitWriter::new();
        w.put_u32(0xFF, 8);
        w.put_u32(0b101, 3);
        w.put_u32(0, 1);
        let (payload, fill) = w.finish();
        let mut r = BitReader::from_payload(&payload, fill).unwrap();
        r.skip(8).unwrap();
        assert_eq!(r.get_u32(3), Some(0b101));
    }

    #[test]
    fn bad_payload_char_fails_decode() {
        assert!(BitReader::from_payload("1 2", 0).is_none());
    }

    #[test]
    fn unarmor_table_matches_match_decoder() {
        for b in 0..=255u8 {
            let expected = match b {
                48..=87 => Some(b - 48),
                96..=119 => Some(b - 56),
                _ => None,
            };
            assert_eq!(unarmor(b), expected, "byte {b}");
            assert_eq!(
                UNARMOR[usize::from(b)],
                expected.unwrap_or(INVALID_SIXBIT),
                "table byte {b}"
            );
        }
    }

    #[test]
    fn cursor_matches_reader_on_roundtrip_fields() {
        let mut w = BitWriter::new();
        w.put_u32(1, 6);
        w.put_u32(237_001_234, 30);
        w.put_i32(-123_456, 28);
        w.put_u32(0b1011, 4);
        let (payload, fill) = w.finish();
        let mut r = BitReader::from_payload(&payload, fill).unwrap();
        let mut c = BitCursor::new(payload.as_bytes(), fill).unwrap();
        assert_eq!(c.remaining(), r.remaining());
        for width in [6, 30] {
            assert_eq!(c.get_u32(width), r.get_u32(width));
        }
        assert_eq!(c.get_i32(28), r.get_i32(28));
        assert_eq!(c.get_u32(4), r.get_u32(4));
        assert_eq!(c.remaining(), 0);
        assert_eq!(c.get_u32(1), None);
        assert_eq!(r.get_u32(1), None);
    }

    #[test]
    fn cursor_rejects_invalid_chars_even_in_unread_tail() {
        // The bad byte sits past where any read will look; eager
        // validation must still fail construction, like the reference.
        let payload = b"11 ";
        assert!(BitCursor::new(payload, 0).is_none());
        assert!(BitReader::from_payload("11 ", 0).is_none());
    }

    #[test]
    fn cursor_fill_bit_semantics_match_reader() {
        // fill > 5 is clamped; fill exceeding total bits fails (only
        // reachable for an empty payload after clamping).
        for fill in 0..=7u8 {
            let c = BitCursor::new(b"5", fill);
            let r = BitReader::from_payload("5", fill);
            assert_eq!(c.is_some(), r.is_some(), "fill {fill}");
            if let (Some(c), Some(r)) = (c, r) {
                assert_eq!(c.remaining(), r.remaining(), "fill {fill}");
            }
            let c = BitCursor::new(b"", fill);
            let r = BitReader::from_payload("", fill);
            assert_eq!(c.is_some(), r.is_some(), "empty payload, fill {fill}");
        }
    }

    #[test]
    fn cursor_skip_advances_like_reader() {
        let mut w = BitWriter::new();
        w.put_u32(0xFF, 8);
        w.put_u32(0b101, 3);
        let (payload, fill) = w.finish();
        let mut c = BitCursor::new(payload.as_bytes(), fill).unwrap();
        c.skip(8).unwrap();
        assert_eq!(c.get_u32(3), Some(0b101));
        assert!(c.skip(64).is_none());
    }

    #[test]
    fn writer_len_counts_bits() {
        let mut w = BitWriter::new();
        assert!(w.is_empty());
        w.put_u32(0, 6);
        w.put_u32(0, 30);
        assert_eq!(w.len(), 36);
    }
}
