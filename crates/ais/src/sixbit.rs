//! Six-bit ASCII payload armouring and bit-level field access.
//!
//! AIS payloads are bit strings packed six bits per character into a
//! printable subset of ASCII (ITU-R M.1371 / IEC 61162-1). The armouring
//! maps values 0–39 to `'0'..='W'` and 40–63 to `'`'..='w'`.

use bytes::{BufMut, BytesMut};

/// Encodes a six-bit value (0–63) into its ASCII armour character.
#[must_use]
pub fn armor(value: u8) -> u8 {
    debug_assert!(value < 64);
    if value < 40 {
        value + 48
    } else {
        value + 56
    }
}

/// Decodes an armour character back to its six-bit value.
#[must_use]
pub fn unarmor(ch: u8) -> Option<u8> {
    match ch {
        48..=87 => Some(ch - 48),  // '0'..='W' -> 0..=39
        96..=119 => Some(ch - 56), // '`'..='w' -> 40..=63
        _ => None,
    }
}

/// Writes a bit string most-significant-bit first, producing an armoured
/// payload plus the number of fill bits appended to complete the final
/// six-bit group.
#[derive(Debug, Default)]
pub struct BitWriter {
    bits: Vec<bool>,
}

impl BitWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `width` bits of `value`, MSB first.
    pub fn put_u32(&mut self, value: u32, width: usize) {
        assert!(width <= 32);
        for i in (0..width).rev() {
            self.bits.push((value >> i) & 1 == 1);
        }
    }

    /// Appends a signed value in two's complement over `width` bits.
    pub fn put_i32(&mut self, value: i32, width: usize) {
        self.put_u32(value as u32 & mask(width), width);
    }

    /// Total bits written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether no bits have been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Finalizes into `(armoured payload, fill_bits)`.
    #[must_use]
    pub fn finish(mut self) -> (String, u8) {
        let rem = self.bits.len() % 6;
        let fill = if rem == 0 { 0 } else { 6 - rem };
        for _ in 0..fill {
            self.bits.push(false);
        }
        let mut out = BytesMut::with_capacity(self.bits.len() / 6);
        for chunk in self.bits.chunks(6) {
            let mut v = 0u8;
            for &b in chunk {
                v = (v << 1) | u8::from(b);
            }
            out.put_u8(armor(v));
        }
        (
            String::from_utf8(out.to_vec()).expect("armoured chars are ASCII"),
            fill as u8,
        )
    }
}

fn mask(width: usize) -> u32 {
    if width >= 32 {
        u32::MAX
    } else {
        (1u32 << width) - 1
    }
}

/// Reads bit fields from an armoured payload.
#[derive(Debug)]
pub struct BitReader {
    bits: Vec<bool>,
    pos: usize,
}

impl BitReader {
    /// Unarmours `payload`, discarding `fill_bits` trailing pad bits.
    /// Fails on characters outside the armour alphabet.
    pub fn from_payload(payload: &str, fill_bits: u8) -> Option<Self> {
        let mut bits = Vec::with_capacity(payload.len() * 6);
        for ch in payload.bytes() {
            let v = unarmor(ch)?;
            for i in (0..6).rev() {
                bits.push((v >> i) & 1 == 1);
            }
        }
        let fill = usize::from(fill_bits.min(5));
        if fill > bits.len() {
            return None;
        }
        bits.truncate(bits.len() - fill);
        Some(Self { bits, pos: 0 })
    }

    /// Remaining unread bits.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bits.len() - self.pos
    }

    /// Reads `width` bits as an unsigned value, MSB first.
    pub fn get_u32(&mut self, width: usize) -> Option<u32> {
        assert!(width <= 32);
        if self.remaining() < width {
            return None;
        }
        let mut v = 0u32;
        for _ in 0..width {
            v = (v << 1) | u32::from(self.bits[self.pos]);
            self.pos += 1;
        }
        Some(v)
    }

    /// Reads `width` bits as a two's-complement signed value.
    pub fn get_i32(&mut self, width: usize) -> Option<i32> {
        let raw = self.get_u32(width)?;
        let sign_bit = 1u32 << (width - 1);
        Some(if raw & sign_bit != 0 {
            (raw | !mask(width)) as i32
        } else {
            raw as i32
        })
    }

    /// Skips `width` bits.
    pub fn skip(&mut self, width: usize) -> Option<()> {
        if self.remaining() < width {
            return None;
        }
        self.pos += width;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn armor_alphabet_roundtrips() {
        for v in 0..64u8 {
            let ch = armor(v);
            assert_eq!(unarmor(ch), Some(v), "value {v}");
        }
    }

    #[test]
    fn invalid_armor_chars_rejected() {
        for ch in [b' ', b'*', b'!', b'X', b'_', b'x', b'~', 0u8, 200u8] {
            assert_eq!(unarmor(ch), None, "char {ch}");
        }
    }

    #[test]
    fn writer_reader_roundtrip_unsigned() {
        let mut w = BitWriter::new();
        w.put_u32(6, 6); // message type
        w.put_u32(237_001_234, 30);
        w.put_u32(1023, 10);
        let (payload, fill) = w.finish();
        let mut r = BitReader::from_payload(&payload, fill).unwrap();
        assert_eq!(r.get_u32(6), Some(6));
        assert_eq!(r.get_u32(30), Some(237_001_234));
        assert_eq!(r.get_u32(10), Some(1023));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn writer_reader_roundtrip_signed() {
        let mut w = BitWriter::new();
        w.put_i32(-123_456, 28);
        w.put_i32(123_456, 28);
        w.put_i32(-1, 27);
        let (payload, fill) = w.finish();
        let mut r = BitReader::from_payload(&payload, fill).unwrap();
        assert_eq!(r.get_i32(28), Some(-123_456));
        assert_eq!(r.get_i32(28), Some(123_456));
        assert_eq!(r.get_i32(27), Some(-1));
    }

    #[test]
    fn fill_bits_complete_final_group() {
        let mut w = BitWriter::new();
        w.put_u32(0b1010, 4); // 4 bits -> 2 fill bits
        let (payload, fill) = w.finish();
        assert_eq!(payload.len(), 1);
        assert_eq!(fill, 2);
        let mut r = BitReader::from_payload(&payload, fill).unwrap();
        assert_eq!(r.remaining(), 4);
        assert_eq!(r.get_u32(4), Some(0b1010));
    }

    #[test]
    fn reading_past_end_returns_none() {
        let mut w = BitWriter::new();
        w.put_u32(5, 6);
        let (payload, fill) = w.finish();
        let mut r = BitReader::from_payload(&payload, fill).unwrap();
        assert_eq!(r.get_u32(6), Some(5));
        assert_eq!(r.get_u32(1), None);
    }

    #[test]
    fn skip_advances_position() {
        let mut w = BitWriter::new();
        w.put_u32(0xFF, 8);
        w.put_u32(0b101, 3);
        w.put_u32(0, 1);
        let (payload, fill) = w.finish();
        let mut r = BitReader::from_payload(&payload, fill).unwrap();
        r.skip(8).unwrap();
        assert_eq!(r.get_u32(3), Some(0b101));
    }

    #[test]
    fn bad_payload_char_fails_decode() {
        assert!(BitReader::from_payload("1 2", 0).is_none());
    }

    #[test]
    fn writer_len_counts_bits() {
        let mut w = BitWriter::new();
        assert!(w.is_empty());
        w.put_u32(0, 6);
        w.put_u32(0, 30);
        assert_eq!(w.len(), 36);
    }
}
