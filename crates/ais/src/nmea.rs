//! NMEA 0183 `!AIVDM` sentence codec for AIS position reports.
//!
//! Implements the transport the Data Scanner of Figure 1 consumes: sentence
//! framing, checksum validation (corrupt messages are discarded, §2:
//! "discard messages with bad checksum"), multi-fragment reassembly, and
//! the ITU-R M.1371 bit layouts for message types 1, 2, 3, 18 and 19.

use maritime_geo::GeoPoint;
use maritime_stream::Timestamp;

use crate::mmsi::Mmsi;
use crate::sixbit::{BitCursor, BitWriter};
use crate::types::{AisMessageType, PositionReport};

/// Longitude/latitude wire resolution: 1/10000 arc-minute.
const COORD_SCALE: f64 = 600_000.0;
/// "Not available" sentinels.
const LON_NA: i32 = 0x6791AC0; // 181 degrees
const LAT_NA: i32 = 0x3412140; // 91 degrees
const SOG_NA: u32 = 1023;
const COG_NA: u32 = 3600;

/// A parsed `!AIVDM` sentence (one fragment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AivdmSentence {
    /// Total number of fragments in the message.
    pub total: u8,
    /// This fragment's 1-based index.
    pub number: u8,
    /// Sequential message id for multi-fragment messages (empty for single).
    pub seq_id: Option<u8>,
    /// Radio channel, 'A' or 'B'.
    pub channel: char,
    /// Armoured payload.
    pub payload: String,
    /// Fill bits in the final six-bit group.
    pub fill_bits: u8,
}

impl AivdmSentence {
    /// The borrowed view of this sentence, for APIs on the zero-copy path.
    #[must_use]
    pub fn as_fragment(&self) -> AivdmFragment<'_> {
        AivdmFragment {
            total: self.total,
            number: self.number,
            seq_id: self.seq_id,
            channel: self.channel,
            payload: &self.payload,
            fill_bits: self.fill_bits,
        }
    }
}

/// A parsed `!AIVDM` fragment borrowing its payload from the input line —
/// the zero-copy form the scanner hot path consumes. [`AivdmSentence`] is
/// the owned counterpart for callers that outlive the line buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AivdmFragment<'a> {
    /// Total number of fragments in the message.
    pub total: u8,
    /// This fragment's 1-based index.
    pub number: u8,
    /// Sequential message id for multi-fragment messages (empty for single).
    pub seq_id: Option<u8>,
    /// Radio channel, 'A' or 'B'.
    pub channel: char,
    /// Armoured payload, borrowed from the input line.
    pub payload: &'a str,
    /// Fill bits in the final six-bit group.
    pub fill_bits: u8,
}

impl AivdmFragment<'_> {
    /// Copies into the owned sentence form.
    #[must_use]
    pub fn to_sentence(&self) -> AivdmSentence {
        AivdmSentence {
            total: self.total,
            number: self.number,
            seq_id: self.seq_id,
            channel: self.channel,
            payload: self.payload.to_string(),
            fill_bits: self.fill_bits,
        }
    }
}

/// Errors from sentence parsing or payload decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NmeaError {
    /// Sentence does not start with `!AIVDM` / `!AIVDO`.
    BadPrefix,
    /// Missing or malformed `*hh` checksum suffix.
    MissingChecksum,
    /// Checksum mismatch: transmission corruption.
    ChecksumMismatch {
        /// Checksum computed over the sentence body.
        computed: u8,
        /// Checksum carried by the sentence.
        declared: u8,
    },
    /// Wrong number of comma-separated fields.
    BadFieldCount(usize),
    /// A numeric field failed to parse.
    BadField(&'static str),
    /// Payload contains a character outside the six-bit alphabet, or is
    /// shorter than the message type requires.
    BadPayload,
    /// Message type is not a position report we consume (1, 2, 3, 18, 19).
    UnsupportedType(u8),
    /// Position field carries the "not available" sentinel or is outside
    /// WGS-84 bounds.
    PositionUnavailable,
    /// MMSI field exceeds nine digits.
    BadMmsi(u32),
}

impl std::fmt::Display for NmeaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadPrefix => write!(f, "not an AIVDM/AIVDO sentence"),
            Self::MissingChecksum => write!(f, "missing *hh checksum"),
            Self::ChecksumMismatch { computed, declared } => {
                write!(f, "checksum mismatch: computed {computed:02X}, declared {declared:02X}")
            }
            Self::BadFieldCount(n) => write!(f, "expected 6 fields, got {n}"),
            Self::BadField(name) => write!(f, "malformed field: {name}"),
            Self::BadPayload => write!(f, "payload not decodable"),
            Self::UnsupportedType(t) => write!(f, "unsupported message type {t}"),
            Self::PositionUnavailable => write!(f, "position not available"),
            Self::BadMmsi(v) => write!(f, "invalid MMSI {v}"),
        }
    }
}

impl std::error::Error for NmeaError {}

/// XOR checksum over the sentence body (between `!` and `*`).
#[must_use]
pub fn checksum(body: &str) -> u8 {
    body.bytes().fold(0, |acc, b| acc ^ b)
}

/// Hex-digit values for the `*hh` checksum suffix, `-1` for non-hex
/// bytes. A 256-entry const table turns the declared-checksum decode
/// into two indexed loads on the zero-copy scan path, replacing the
/// generic radix parser (which also tolerated `+` signs and arbitrary
/// digit counts that NMEA 0183 does not allow).
const HEX_VAL: [i8; 256] = {
    let mut t = [-1i8; 256];
    let mut b = 0usize;
    while b < 256 {
        t[b] = match b as u8 {
            b'0'..=b'9' => (b as u8 - b'0') as i8,
            b'a'..=b'f' => (b as u8 - b'a' + 10) as i8,
            b'A'..=b'F' => (b as u8 - b'A' + 10) as i8,
            _ => -1,
        };
        b += 1;
    }
    t
};

/// Decodes the two-hex-digit declared checksum, table-driven. `None` for
/// anything but exactly two hex digits (NMEA 0183 `*hh`).
#[inline]
#[must_use]
fn declared_checksum(field: &str) -> Option<u8> {
    let [hi, lo] = field.as_bytes() else {
        return None;
    };
    let (hi, lo) = (HEX_VAL[usize::from(*hi)], HEX_VAL[usize::from(*lo)]);
    if hi < 0 || lo < 0 {
        return None;
    }
    #[allow(clippy::cast_sign_loss)] // both verified non-negative above
    Some(((hi as u8) << 4) | lo as u8)
}

/// Parses one `!AIVDM,...*hh` sentence into a borrowed fragment,
/// validating the checksum. Performs no heap allocation: the payload is a
/// slice of `line`, and the six comma-separated fields are walked with a
/// split iterator instead of being collected.
pub fn parse_fragment(line: &str) -> Result<AivdmFragment<'_>, NmeaError> {
    let line = line.trim_end();
    let rest = line
        .strip_prefix("!AIVDM,")
        .or_else(|| line.strip_prefix("!AIVDO,"))
        .ok_or(NmeaError::BadPrefix)?;
    let (body, declared) = rest.rsplit_once('*').ok_or(NmeaError::MissingChecksum)?;
    let declared = declared_checksum(declared).ok_or(NmeaError::MissingChecksum)?;
    // The checksum covers everything between '!' and '*': "AIVDM," + body.
    let prefix = &line[1..7]; // "AIVDM," or "AIVDO,"
    let computed = checksum(prefix) ^ checksum(body);
    if computed != declared {
        return Err(NmeaError::ChecksumMismatch { computed, declared });
    }

    let mut fields = body.split(',');
    let (
        (Some(f_total), Some(f_number), Some(f_seq)),
        (Some(f_channel), Some(f_payload), Some(f_fill), None),
    ) = (
        (fields.next(), fields.next(), fields.next()),
        (fields.next(), fields.next(), fields.next(), fields.next()),
    )
    else {
        return Err(NmeaError::BadFieldCount(body.split(',').count()));
    };
    let total: u8 = f_total.parse().map_err(|_| NmeaError::BadField("total"))?;
    let number: u8 = f_number.parse().map_err(|_| NmeaError::BadField("number"))?;
    let seq_id = if f_seq.is_empty() {
        None
    } else {
        Some(f_seq.parse().map_err(|_| NmeaError::BadField("seq_id"))?)
    };
    let channel = f_channel.chars().next().unwrap_or('A');
    let fill_bits: u8 = f_fill.parse().map_err(|_| NmeaError::BadField("fill"))?;
    Ok(AivdmFragment {
        total,
        number,
        seq_id,
        channel,
        payload: f_payload,
        fill_bits,
    })
}

/// Parses one `!AIVDM,...*hh` sentence, validating the checksum.
pub fn parse_sentence(line: &str) -> Result<AivdmSentence, NmeaError> {
    parse_fragment(line).map(|f| f.to_sentence())
}

/// Renders a payload as a single `!AIVDM` sentence with a valid checksum.
#[must_use]
pub fn format_sentence(payload: &str, fill_bits: u8, channel: char) -> String {
    let body = format!("AIVDM,1,1,,{channel},{payload},{fill_bits}");
    format!("!{body}*{:02X}", checksum(&body))
}

/// Encodes a [`PositionReport`] into the bit layout of its message type and
/// wraps it in a single `!AIVDM` sentence.
///
/// The `timestamp` field of the report is *not* on the wire (AIS carries
/// only a UTC-second hint); receivers timestamp messages on arrival, which
/// is what the simulator's replay layer does too.
#[must_use]
pub fn encode_report(report: &PositionReport) -> String {
    let mut w = BitWriter::new();
    let t = report.msg_type;
    w.put_u32(u32::from(t.as_u8()), 6);
    w.put_u32(0, 2); // repeat indicator
    w.put_u32(report.mmsi.0, 30);

    let lon_raw = (report.position.lon * COORD_SCALE).round() as i32;
    let lat_raw = (report.position.lat * COORD_SCALE).round() as i32;
    let sog_raw = report
        .sog_knots
        .map_or(SOG_NA, |v| ((v * 10.0).round() as u32).min(1022));
    let cog_raw = report
        .cog_deg
        .map_or(COG_NA, |v| ((v.rem_euclid(360.0) * 10.0).round() as u32).min(3599));
    let utc_second = (report.timestamp.as_secs().rem_euclid(60)) as u32;

    match t {
        AisMessageType::PositionReportClassA
        | AisMessageType::PositionReportClassAAssigned
        | AisMessageType::PositionReportClassAResponse => {
            w.put_u32(0, 4); // navigation status
            w.put_i32(-128, 8); // rate of turn: not available
            w.put_u32(sog_raw, 10);
            w.put_u32(0, 1); // position accuracy
            w.put_i32(lon_raw, 28);
            w.put_i32(lat_raw, 27);
            w.put_u32(cog_raw, 12);
            w.put_u32(511, 9); // true heading: not available
            w.put_u32(utc_second, 6);
            w.put_u32(0, 2); // maneuver indicator
            w.put_u32(0, 3); // spare
            w.put_u32(0, 1); // RAIM
            w.put_u32(0, 19); // radio status
        }
        AisMessageType::StandardClassB | AisMessageType::ExtendedClassB => {
            w.put_u32(0, 8); // reserved
            w.put_u32(sog_raw, 10);
            w.put_u32(0, 1); // position accuracy
            w.put_i32(lon_raw, 28);
            w.put_i32(lat_raw, 27);
            w.put_u32(cog_raw, 12);
            w.put_u32(511, 9); // true heading
            w.put_u32(utc_second, 6);
            if t == AisMessageType::StandardClassB {
                w.put_u32(0, 2); // spare
                w.put_u32(0, 24); // flags + radio status (condensed)
            } else {
                // Type 19 continues with name/type/dimension fields.
                w.put_u32(0, 4); // spare
                for _ in 0..20 {
                    w.put_u32(0, 6); // name: 20 six-bit chars, all '@'
                }
                w.put_u32(0, 8); // ship type
                w.put_u32(0, 30); // dimensions
                w.put_u32(0, 4); // fix type
                w.put_u32(0, 5); // flags
            }
        }
    }
    let (payload, fill) = w.finish();
    format_sentence(&payload, fill, 'A')
}

/// Decodes an armoured payload into a [`PositionReport`].
///
/// `received_at` supplies the stream timestamp τ, since the wire format
/// carries only a UTC-second hint. Decoding reads bit fields directly off
/// the payload bytes via [`BitCursor`] — no heap allocation; the
/// `#[cfg(test)]` twin `decode_payload_reference` runs the same layout
/// through the reference [`crate::sixbit::BitReader`] as the differential
/// oracle.
pub fn decode_payload(
    payload: &str,
    fill_bits: u8,
    received_at: Timestamp,
) -> Result<PositionReport, NmeaError> {
    let mut r = BitCursor::new(payload.as_bytes(), fill_bits).ok_or(NmeaError::BadPayload)?;
    let type_raw = r.get_u32(6).ok_or(NmeaError::BadPayload)? as u8;
    let msg_type =
        AisMessageType::from_u8(type_raw).ok_or(NmeaError::UnsupportedType(type_raw))?;
    r.skip(2).ok_or(NmeaError::BadPayload)?; // repeat indicator
    let mmsi_raw = r.get_u32(30).ok_or(NmeaError::BadPayload)?;
    let mmsi = Mmsi::try_new(mmsi_raw).map_err(|e| NmeaError::BadMmsi(e.0))?;

    let (sog_raw, lon_raw, lat_raw, cog_raw) = match msg_type {
        AisMessageType::PositionReportClassA
        | AisMessageType::PositionReportClassAAssigned
        | AisMessageType::PositionReportClassAResponse => {
            r.skip(4 + 8).ok_or(NmeaError::BadPayload)?; // status + ROT
            let sog = r.get_u32(10).ok_or(NmeaError::BadPayload)?;
            r.skip(1).ok_or(NmeaError::BadPayload)?; // accuracy
            let lon = r.get_i32(28).ok_or(NmeaError::BadPayload)?;
            let lat = r.get_i32(27).ok_or(NmeaError::BadPayload)?;
            let cog = r.get_u32(12).ok_or(NmeaError::BadPayload)?;
            (sog, lon, lat, cog)
        }
        AisMessageType::StandardClassB | AisMessageType::ExtendedClassB => {
            r.skip(8).ok_or(NmeaError::BadPayload)?; // reserved
            let sog = r.get_u32(10).ok_or(NmeaError::BadPayload)?;
            r.skip(1).ok_or(NmeaError::BadPayload)?;
            let lon = r.get_i32(28).ok_or(NmeaError::BadPayload)?;
            let lat = r.get_i32(27).ok_or(NmeaError::BadPayload)?;
            let cog = r.get_u32(12).ok_or(NmeaError::BadPayload)?;
            (sog, lon, lat, cog)
        }
    };

    if lon_raw == LON_NA || lat_raw == LAT_NA {
        return Err(NmeaError::PositionUnavailable);
    }
    let position = GeoPoint::try_new(lon_raw as f64 / COORD_SCALE, lat_raw as f64 / COORD_SCALE)
        .map_err(|_| NmeaError::PositionUnavailable)?;

    Ok(PositionReport {
        mmsi,
        msg_type,
        position,
        sog_knots: (sog_raw != SOG_NA).then(|| f64::from(sog_raw) / 10.0),
        cog_deg: (cog_raw != COG_NA).then(|| f64::from(cog_raw) / 10.0),
        timestamp: received_at,
    })
}

/// Reference decode: identical layout walk through the reference
/// [`BitReader`](crate::sixbit::BitReader). Compiled only for tests, where
/// it serves as the oracle of the decoder differential suite.
#[cfg(test)]
pub fn decode_payload_reference(
    payload: &str,
    fill_bits: u8,
    received_at: Timestamp,
) -> Result<PositionReport, NmeaError> {
    let mut r = crate::sixbit::BitReader::from_payload(payload, fill_bits)
        .ok_or(NmeaError::BadPayload)?;
    let type_raw = r.get_u32(6).ok_or(NmeaError::BadPayload)? as u8;
    let msg_type =
        AisMessageType::from_u8(type_raw).ok_or(NmeaError::UnsupportedType(type_raw))?;
    r.skip(2).ok_or(NmeaError::BadPayload)?; // repeat indicator
    let mmsi_raw = r.get_u32(30).ok_or(NmeaError::BadPayload)?;
    let mmsi = Mmsi::try_new(mmsi_raw).map_err(|e| NmeaError::BadMmsi(e.0))?;

    let (sog_raw, lon_raw, lat_raw, cog_raw) = match msg_type {
        AisMessageType::PositionReportClassA
        | AisMessageType::PositionReportClassAAssigned
        | AisMessageType::PositionReportClassAResponse => {
            r.skip(4 + 8).ok_or(NmeaError::BadPayload)?; // status + ROT
            let sog = r.get_u32(10).ok_or(NmeaError::BadPayload)?;
            r.skip(1).ok_or(NmeaError::BadPayload)?; // accuracy
            let lon = r.get_i32(28).ok_or(NmeaError::BadPayload)?;
            let lat = r.get_i32(27).ok_or(NmeaError::BadPayload)?;
            let cog = r.get_u32(12).ok_or(NmeaError::BadPayload)?;
            (sog, lon, lat, cog)
        }
        AisMessageType::StandardClassB | AisMessageType::ExtendedClassB => {
            r.skip(8).ok_or(NmeaError::BadPayload)?; // reserved
            let sog = r.get_u32(10).ok_or(NmeaError::BadPayload)?;
            r.skip(1).ok_or(NmeaError::BadPayload)?;
            let lon = r.get_i32(28).ok_or(NmeaError::BadPayload)?;
            let lat = r.get_i32(27).ok_or(NmeaError::BadPayload)?;
            let cog = r.get_u32(12).ok_or(NmeaError::BadPayload)?;
            (sog, lon, lat, cog)
        }
    };

    if lon_raw == LON_NA || lat_raw == LAT_NA {
        return Err(NmeaError::PositionUnavailable);
    }
    let position = GeoPoint::try_new(lon_raw as f64 / COORD_SCALE, lat_raw as f64 / COORD_SCALE)
        .map_err(|_| NmeaError::PositionUnavailable)?;

    Ok(PositionReport {
        mmsi,
        msg_type,
        position,
        sog_knots: (sog_raw != SOG_NA).then(|| f64::from(sog_raw) / 10.0),
        cog_deg: (cog_raw != COG_NA).then(|| f64::from(cog_raw) / 10.0),
        timestamp: received_at,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report(t: AisMessageType) -> PositionReport {
        PositionReport {
            mmsi: Mmsi(237_004_321),
            msg_type: t,
            position: GeoPoint::new(23.6178, 37.9415),
            sog_knots: Some(14.3),
            cog_deg: Some(231.7),
            timestamp: Timestamp(3_601),
        }
    }

    #[test]
    fn encode_decode_roundtrip_all_types() {
        for t in [
            AisMessageType::PositionReportClassA,
            AisMessageType::PositionReportClassAAssigned,
            AisMessageType::PositionReportClassAResponse,
            AisMessageType::StandardClassB,
            AisMessageType::ExtendedClassB,
        ] {
            let report = sample_report(t);
            let sentence = encode_report(&report);
            let parsed = parse_sentence(&sentence).unwrap();
            let decoded =
                decode_payload(&parsed.payload, parsed.fill_bits, report.timestamp).unwrap();
            assert_eq!(decoded.mmsi, report.mmsi);
            assert_eq!(decoded.msg_type, t);
            // Wire resolution: 1/10000 arc-minute ~ 0.18 m.
            assert!((decoded.position.lon - report.position.lon).abs() < 1e-5);
            assert!((decoded.position.lat - report.position.lat).abs() < 1e-5);
            assert!((decoded.sog_knots.unwrap() - 14.3).abs() < 0.051);
            assert!((decoded.cog_deg.unwrap() - 231.7).abs() < 0.051);
        }
    }

    #[test]
    fn corrupted_sentence_fails_checksum() {
        let sentence = encode_report(&sample_report(AisMessageType::PositionReportClassA));
        // Flip one payload character.
        let pos = sentence.find(',').unwrap() + 15;
        let mut corrupted: Vec<u8> = sentence.clone().into_bytes();
        corrupted[pos] = if corrupted[pos] == b'1' { b'2' } else { b'1' };
        let corrupted = String::from_utf8(corrupted).unwrap();
        assert!(matches!(
            parse_sentence(&corrupted),
            Err(NmeaError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn missing_checksum_rejected() {
        assert_eq!(
            parse_sentence("!AIVDM,1,1,,A,15M67F001,0"),
            Err(NmeaError::MissingChecksum)
        );
    }

    #[test]
    fn wrong_prefix_rejected() {
        assert_eq!(parse_sentence("$GPGGA,foo*00"), Err(NmeaError::BadPrefix));
    }

    #[test]
    fn checksum_suffix_must_be_two_hex_digits() {
        let sentence = encode_report(&sample_report(AisMessageType::PositionReportClassA));
        let (body, hex) = sentence.rsplit_once('*').unwrap();
        // Lowercase hex is valid NMEA and must verify.
        assert!(parse_sentence(&format!("{body}*{}", hex.to_lowercase())).is_ok());
        // Anything but exactly two hex digits is a malformed suffix; the
        // old radix parser tolerated some of these (`+` signs, one digit).
        for bad in [String::new(), "7".into(), format!("+{hex}"), format!("0{hex}"), "G0".into()]
        {
            assert_eq!(
                parse_sentence(&format!("{body}*{bad}")),
                Err(NmeaError::MissingChecksum),
                "suffix {bad:?}"
            );
        }
    }

    #[test]
    fn unavailable_position_rejected() {
        let report = PositionReport {
            sog_knots: None,
            cog_deg: None,
            ..sample_report(AisMessageType::PositionReportClassA)
        };
        // Encode with sentinel coordinates by hand.
        let mut w = BitWriter::new();
        w.put_u32(1, 6);
        w.put_u32(0, 2);
        w.put_u32(report.mmsi.0, 30);
        w.put_u32(0, 4);
        w.put_i32(-128, 8);
        w.put_u32(SOG_NA, 10);
        w.put_u32(0, 1);
        w.put_i32(LON_NA, 28);
        w.put_i32(LAT_NA, 27);
        w.put_u32(COG_NA, 12);
        w.put_u32(511, 9);
        w.put_u32(0, 6);
        w.put_u32(0, 2 + 3 + 1 + 19);
        let (payload, fill) = w.finish();
        assert_eq!(
            decode_payload(&payload, fill, Timestamp(0)),
            Err(NmeaError::PositionUnavailable)
        );
    }

    #[test]
    fn unavailable_sog_cog_decode_as_none() {
        let report = PositionReport {
            sog_knots: None,
            cog_deg: None,
            ..sample_report(AisMessageType::StandardClassB)
        };
        let sentence = encode_report(&report);
        let parsed = parse_sentence(&sentence).unwrap();
        let decoded = decode_payload(&parsed.payload, parsed.fill_bits, Timestamp(0)).unwrap();
        assert_eq!(decoded.sog_knots, None);
        assert_eq!(decoded.cog_deg, None);
    }

    #[test]
    fn unsupported_message_type_rejected() {
        let mut w = BitWriter::new();
        w.put_u32(5, 6); // static voyage data, not a position report
        w.put_u32(0, 2);
        w.put_u32(123, 30);
        let (payload, fill) = w.finish();
        assert_eq!(
            decode_payload(&payload, fill, Timestamp(0)),
            Err(NmeaError::UnsupportedType(5))
        );
    }

    #[test]
    fn negative_coordinates_roundtrip() {
        let report = PositionReport {
            position: GeoPoint::new(-71.0589, -33.0472),
            ..sample_report(AisMessageType::PositionReportClassA)
        };
        let sentence = encode_report(&report);
        let parsed = parse_sentence(&sentence).unwrap();
        let decoded = decode_payload(&parsed.payload, parsed.fill_bits, Timestamp(0)).unwrap();
        assert!((decoded.position.lon - report.position.lon).abs() < 1e-5);
        assert!((decoded.position.lat - report.position.lat).abs() < 1e-5);
    }

    #[test]
    fn sentence_fields_parse() {
        let sentence = encode_report(&sample_report(AisMessageType::PositionReportClassA));
        let parsed = parse_sentence(&sentence).unwrap();
        assert_eq!(parsed.total, 1);
        assert_eq!(parsed.number, 1);
        assert_eq!(parsed.seq_id, None);
        assert_eq!(parsed.channel, 'A');
    }

    #[test]
    fn fragment_parse_matches_sentence_parse() {
        let sentence = encode_report(&sample_report(AisMessageType::PositionReportClassA));
        let frag = parse_fragment(&sentence).unwrap();
        let owned = parse_sentence(&sentence).unwrap();
        assert_eq!(frag.to_sentence(), owned);
        assert_eq!(owned.as_fragment(), frag);
        // The fragment payload is a slice of the input, not a copy.
        let line_range = sentence.as_ptr() as usize..sentence.as_ptr() as usize + sentence.len();
        assert!(line_range.contains(&(frag.payload.as_ptr() as usize)));
    }

    #[test]
    fn cursor_decode_matches_reference_on_fixtures() {
        // Clean payloads of every supported type, plus malformed ones:
        // the production cursor decoder and the reference BitReader
        // decoder must agree byte-for-byte, including on the error.
        let mut cases: Vec<(String, u8)> = Vec::new();
        for t in [
            AisMessageType::PositionReportClassA,
            AisMessageType::PositionReportClassAAssigned,
            AisMessageType::PositionReportClassAResponse,
            AisMessageType::StandardClassB,
            AisMessageType::ExtendedClassB,
        ] {
            let parsed = parse_sentence(&encode_report(&sample_report(t))).unwrap();
            cases.push((parsed.payload, parsed.fill_bits));
        }
        cases.push((String::new(), 0)); // empty payload
        cases.push((String::new(), 3)); // fill exceeding payload bits
        cases.push(("1".into(), 0)); // truncated after message type
        cases.push(("1 3".into(), 0)); // invalid armour char
        cases.push(("5".repeat(20), 2)); // unsupported type 5
        for (payload, fill) in cases {
            let fast = decode_payload(&payload, fill, Timestamp(7));
            let slow = decode_payload_reference(&payload, fill, Timestamp(7));
            assert_eq!(fast, slow, "payload {payload:?} fill {fill}");
        }
    }

    #[test]
    fn aivdo_prefix_also_accepted() {
        let sentence = encode_report(&sample_report(AisMessageType::PositionReportClassA));
        let own = sentence.replacen("!AIVDM", "!AIVDO", 1);
        // Recompute checksum for the modified prefix.
        let body = &own[1..own.rfind('*').unwrap()];
        let fixed = format!("!{body}*{:02X}", checksum(body));
        assert!(parse_sentence(&fixed).is_ok());
    }
}
