//! The Data Scanner of Figure 1.
//!
//! "A Data Scanner decodes each AIS message, identifies those four
//! attributes [MMSI, Lon, Lat, τ], and cleans them from distortions caused
//! during transmission (e.g., discard messages with bad checksum). This
//! constitutes an append-only data stream" (§2).

use maritime_obs::flight::{self, FlightKind};
use maritime_obs::{names, LazyCounter};
use maritime_stream::Timestamp;

use crate::nmea::{self, NmeaError};
use crate::types::PositionTuple;
use crate::voyage::{decode_static_voyage, Defragged, Defragmenter, VoyageRegistry};

/// Global decode metrics (see `OBSERVABILITY.md`). The per-scanner
/// [`ScanStats`] stay authoritative for the report; these feed the live
/// registry so an operator can watch link quality mid-run.
static OBS_SENTENCES: LazyCounter = LazyCounter::new(names::AIS_SENTENCES);
static OBS_POSITIONS: LazyCounter = LazyCounter::new(names::AIS_POSITIONS);
static OBS_MALFORMED: LazyCounter = LazyCounter::new(names::AIS_MALFORMED);
static OBS_BAD_CHECKSUM: LazyCounter = LazyCounter::new(names::AIS_BAD_CHECKSUM);
static OBS_VOYAGE_DECLARATIONS: LazyCounter = LazyCounter::new(names::AIS_VOYAGE_DECLARATIONS);
static OBS_TRUNCATED_FRAGMENTS: LazyCounter = LazyCounter::new(names::AIS_TRUNCATED_FRAGMENTS);

/// Counters describing what the scanner saw, mirroring the paper's dataset
/// preparation ("When decoded and cleaned from corrupt messages, the
/// dataset yielded 168,240,595 timestamped positions", §5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Sentences presented to the scanner.
    pub total: u64,
    /// Sentences that produced a positional tuple.
    pub accepted: u64,
    /// Discarded: framing or field errors.
    pub malformed: u64,
    /// Discarded: checksum mismatch.
    pub bad_checksum: u64,
    /// Discarded: undecodable payload or unsupported type.
    pub bad_payload: u64,
    /// Discarded: position unavailable or out of range.
    pub bad_position: u64,
    /// Static & voyage declarations (type 5) recorded — not positions, so
    /// not counted as accepted.
    pub voyage_declarations: u64,
    /// Multi-part fragments buffered, awaiting their siblings.
    pub fragments_pending: u64,
    /// Multi-fragment messages abandoned with fragments missing: truncated
    /// transmissions, detected at defragmenter eviction or at
    /// [`DataScanner::finish`]. Not silent — each is also surfaced as a
    /// `decode_error` flight-recorder event.
    pub fragments_truncated: u64,
}

impl ScanStats {
    /// Fraction of *positional* sentences accepted, in `[0, 1]`; 1.0 for an
    /// empty input. Voyage declarations and buffered fragments are not
    /// positions, so they are excluded from the denominator — this measures
    /// link quality, not traffic mix.
    #[must_use]
    pub fn acceptance_ratio(&self) -> f64 {
        let positional = self
            .total
            .saturating_sub(self.voyage_declarations)
            .saturating_sub(self.fragments_pending);
        if positional == 0 {
            1.0
        } else {
            self.accepted as f64 / positional as f64
        }
    }
}

/// Stateful scanner turning raw NMEA lines into clean positional tuples.
///
/// Multi-fragment messages are reassembled; type-5 static & voyage
/// declarations are decoded into the scanner's [`VoyageRegistry`] rather
/// than the positional stream (their crew-entered destination field is
/// kept only for the declared-vs-derived comparison of §3.2).
#[derive(Debug, Default)]
pub struct DataScanner {
    stats: ScanStats,
    defrag: Defragmenter,
    voyages: VoyageRegistry,
}

impl DataScanner {
    /// Creates a scanner with zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Scans one line received at `received_at`. Returns the positional
    /// tuple, or `None` when the line is discarded, buffered as a fragment,
    /// or recorded as a voyage declaration (all counted in stats).
    ///
    /// The steady-state path is allocation-free: the sentence is parsed
    /// into a borrowed [`crate::nmea::AivdmFragment`] whose payload is a
    /// slice of `line`, and single-fragment messages are decoded in place
    /// via the table-driven bit cursor. Only genuinely multi-part messages
    /// (type-5 declarations) touch the defragmenter's heap buffers.
    pub fn scan(&mut self, line: &str, received_at: Timestamp) -> Option<PositionTuple> {
        self.scan_from(0, line, received_at)
    }

    /// Scans one line received from the physical feed `source` — the
    /// multi-feed form of [`DataScanner::scan`] used by `surveil serve`,
    /// where one scanner drains many TCP/UDP sources. The source id keys
    /// the defragmenter so interleaved multi-part messages from different
    /// feeds cannot cross-assemble; everything else (stats, metrics,
    /// voyage registry) is shared across sources.
    pub fn scan_from(
        &mut self,
        source: u32,
        line: &str,
        received_at: Timestamp,
    ) -> Option<PositionTuple> {
        self.stats.total += 1;
        OBS_SENTENCES.inc();
        let fragment = match nmea::parse_fragment(line) {
            Ok(s) => s,
            Err(e @ NmeaError::ChecksumMismatch { .. }) => {
                self.stats.bad_checksum += 1;
                OBS_BAD_CHECKSUM.inc();
                flight::record(FlightKind::DecodeError, || {
                    format!("t={} {e}", received_at.as_secs())
                });
                return None;
            }
            Err(e) => {
                self.stats.malformed += 1;
                OBS_MALFORMED.inc();
                flight::record(FlightKind::DecodeError, || {
                    format!("t={} {e}", received_at.as_secs())
                });
                return None;
            }
        };
        let evicted_before = self.defrag.evicted_incomplete();
        let pushed = self.defrag.push_fragment_from(source, &fragment);
        let truncated = self.defrag.evicted_incomplete() - evicted_before;
        if truncated > 0 {
            self.note_truncated(truncated, received_at);
        }
        let (payload, fill_bits): (&str, u8) = match &pushed {
            Defragged::Single(payload, fill) => (payload, *fill),
            Defragged::Pending => {
                self.stats.fragments_pending += 1;
                return None;
            }
            Defragged::Complete(payload, fill) => (payload.as_str(), *fill),
        };
        // Peek the message type (first six-bit character).
        let msg_type = payload
            .bytes()
            .next()
            .and_then(crate::sixbit::unarmor)
            .unwrap_or(0);
        if msg_type == 5 {
            match decode_static_voyage(payload, fill_bits) {
                Ok(data) => {
                    self.stats.voyage_declarations += 1;
                    OBS_VOYAGE_DECLARATIONS.inc();
                    self.voyages.record(received_at, data);
                }
                Err(e) => {
                    self.stats.bad_payload += 1;
                    flight::record(FlightKind::DecodeError, || {
                        format!("t={} type-5 payload: {e}", received_at.as_secs())
                    });
                }
            }
            return None;
        }
        match nmea::decode_payload(payload, fill_bits, received_at) {
            Ok(report) => {
                self.stats.accepted += 1;
                OBS_POSITIONS.inc();
                Some(report.into())
            }
            Err(NmeaError::PositionUnavailable) => {
                self.stats.bad_position += 1;
                None
            }
            Err(e) => {
                self.stats.bad_payload += 1;
                flight::record(FlightKind::DecodeError, || {
                    format!("t={} payload: {e}", received_at.as_secs())
                });
                None
            }
        }
    }

    /// The voyage declarations collected so far.
    #[must_use]
    pub fn voyages(&self) -> &VoyageRegistry {
        &self.voyages
    }

    /// Scans a batch of `(line, received_at)` pairs, keeping only clean
    /// tuples.
    pub fn scan_batch<'a>(
        &mut self,
        lines: impl IntoIterator<Item = (&'a str, Timestamp)>,
    ) -> Vec<PositionTuple> {
        let mut out = Vec::new();
        self.scan_batch_into(lines, &mut out);
        out
    }

    /// Scans a batch of `(line, received_at)` pairs, appending clean tuples
    /// to `out` — the caller's reusable arena. Once `out` has grown to the
    /// batch high-water mark, repeated batches allocate nothing.
    pub fn scan_batch_into<'a>(
        &mut self,
        lines: impl IntoIterator<Item = (&'a str, Timestamp)>,
        out: &mut Vec<PositionTuple>,
    ) {
        for (line, t) in lines {
            if let Some(tuple) = self.scan(line, t) {
                out.push(tuple);
            }
        }
    }

    /// Scans a newline-delimited buffer, slicing each sentence out of
    /// `buf` in place — no per-sentence copies. `stamp(i)` supplies the
    /// receive timestamp of the `i`-th non-empty line; clean tuples are
    /// appended to `out`. Returns the number of lines scanned.
    pub fn scan_buffer(
        &mut self,
        buf: &str,
        mut stamp: impl FnMut(usize) -> Timestamp,
        out: &mut Vec<PositionTuple>,
    ) -> usize {
        let mut scanned = 0;
        for line in buf.lines() {
            if line.is_empty() {
                continue;
            }
            if let Some(tuple) = self.scan(line, stamp(scanned)) {
                out.push(tuple);
            }
            scanned += 1;
        }
        scanned
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> ScanStats {
        self.stats
    }

    /// Declares end of stream: partial multi-fragment messages still
    /// buffered will never complete, so they are drained and counted as
    /// truncated. Returns how many were abandoned. Safe to call more than
    /// once; scanning may continue afterwards.
    pub fn finish(&mut self, at: Timestamp) -> u64 {
        let truncated = self.defrag.drain_pending();
        if truncated > 0 {
            self.note_truncated(truncated, at);
        }
        truncated
    }

    /// Snapshots the partial multi-fragment messages still buffered, for
    /// a checkpoint taken mid-stream. Unlike [`DataScanner::finish`],
    /// nothing is abandoned or counted as truncated: restoring the
    /// snapshot into a fresh scanner lets the in-flight message complete
    /// exactly once when its remaining fragments arrive.
    #[must_use]
    pub fn export_defrag_pending(&self) -> crate::voyage::PendingFragments {
        self.defrag.export_pending()
    }

    /// Restores the partial-message snapshot captured by
    /// [`DataScanner::export_defrag_pending`], replacing any current
    /// pending fragments.
    pub fn restore_defrag_pending(&mut self, state: crate::voyage::PendingFragments) {
        self.defrag.restore_pending(state);
    }

    /// Counts `n` truncated multi-fragment messages and surfaces them on
    /// the flight recorder as decode errors.
    fn note_truncated(&mut self, n: u64, at: Timestamp) {
        self.stats.fragments_truncated += n;
        for _ in 0..n {
            OBS_TRUNCATED_FRAGMENTS.inc();
        }
        flight::record(FlightKind::DecodeError, || {
            format!(
                "t={} truncated multi-fragment message(s): {n} abandoned incomplete",
                at.as_secs()
            )
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmsi::Mmsi;
    use crate::nmea::encode_report;
    use crate::types::{AisMessageType, PositionReport};
    use maritime_geo::GeoPoint;

    fn good_sentence() -> String {
        encode_report(&PositionReport {
            mmsi: Mmsi(237_000_042),
            msg_type: AisMessageType::PositionReportClassA,
            position: GeoPoint::new(24.5, 37.5),
            sog_knots: Some(10.0),
            cog_deg: Some(90.0),
            timestamp: Timestamp(100),
        })
    }

    #[test]
    fn accepts_clean_sentence() {
        let mut scanner = DataScanner::new();
        let tuple = scanner.scan(&good_sentence(), Timestamp(100)).unwrap();
        assert_eq!(tuple.mmsi, Mmsi(237_000_042));
        assert_eq!(tuple.timestamp, Timestamp(100));
        assert!((tuple.position.lon - 24.5).abs() < 1e-5);
        assert_eq!(scanner.stats().accepted, 1);
    }

    #[test]
    fn discards_bad_checksum() {
        let mut scanner = DataScanner::new();
        let mut s = good_sentence();
        let star = s.rfind('*').unwrap();
        s.replace_range(star + 1..star + 3, "00");
        // In the (1/256) case "00" is the real checksum, skip.
        if scanner.scan(&s, Timestamp(0)).is_none() {
            assert_eq!(scanner.stats().bad_checksum + scanner.stats().accepted, 1);
        }
    }

    #[test]
    fn discards_garbage_lines() {
        let mut scanner = DataScanner::new();
        assert!(scanner.scan("", Timestamp(0)).is_none());
        assert!(scanner.scan("$GPGGA,junk*7F", Timestamp(0)).is_none());
        // Valid checksum but wrong field count.
        let body = "AIVDM,not,enough";
        let line = format!("!{body}*{:02X}", crate::nmea::checksum(body));
        assert!(scanner.scan(&line, Timestamp(0)).is_none());
        assert_eq!(scanner.stats().malformed, 3);
        assert_eq!(scanner.stats().accepted, 0);
    }

    #[test]
    fn batch_scan_filters_and_counts() {
        let mut scanner = DataScanner::new();
        let good = good_sentence();
        let lines = vec![
            (good.as_str(), Timestamp(1)),
            ("garbage", Timestamp(2)),
            (good.as_str(), Timestamp(3)),
        ];
        let tuples = scanner.scan_batch(lines);
        assert_eq!(tuples.len(), 2);
        assert_eq!(tuples[1].timestamp, Timestamp(3));
        assert_eq!(scanner.stats().total, 3);
        assert!((scanner.stats().acceptance_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_scanner_acceptance_is_one() {
        assert_eq!(DataScanner::new().stats().acceptance_ratio(), 1.0);
    }

    #[test]
    fn type5_fragments_land_in_voyage_registry() {
        use crate::voyage::{encode_static_voyage, StaticVoyageData};
        let data = StaticVoyageData {
            mmsi: Mmsi(237_000_042),
            imo: 12345,
            callsign: "SV9AB".into(),
            name: "MINOAN SPIRIT".into(),
            ship_type: 70,
            draught_m: 6.2,
            destination: "RHODES".into(),
        };
        let [s1, s2] = encode_static_voyage(&data, 4);
        let mut scanner = DataScanner::new();
        assert!(scanner.scan(&s1, Timestamp(10)).is_none());
        assert!(scanner.scan(&s2, Timestamp(11)).is_none());
        let stats = scanner.stats();
        assert_eq!(stats.voyage_declarations, 1);
        assert_eq!(stats.fragments_pending, 1);
        assert_eq!(stats.accepted, 0);
        let rec = scanner.voyages().latest(Mmsi(237_000_042)).unwrap();
        assert_eq!(rec.destination, "RHODES");
        assert_eq!(rec.name, "MINOAN SPIRIT");
        // Position reports still flow normally afterwards.
        assert!(scanner.scan(&good_sentence(), Timestamp(12)).is_some());
    }

    #[test]
    fn scan_from_keeps_sources_from_cross_assembling() {
        use crate::voyage::{encode_static_voyage, StaticVoyageData};
        let mk = |mmsi: u32, name: &str, dest: &str| StaticVoyageData {
            mmsi: Mmsi(mmsi),
            imo: 0,
            callsign: String::new(),
            name: name.into(),
            ship_type: 70,
            draught_m: 4.0,
            destination: dest.into(),
        };
        // Same sequence id on both feeds — interleaved over scan_from they
        // must still assemble per source and both land in the registry.
        let [a1, a2] = encode_static_voyage(&mk(237_000_001, "ALPHA", "CHIOS"), 5);
        let [b1, b2] = encode_static_voyage(&mk(237_000_002, "BRAVO", "SYROS"), 5);
        let mut scanner = DataScanner::new();
        assert!(scanner.scan_from(10, &a1, Timestamp(1)).is_none());
        assert!(scanner.scan_from(20, &b1, Timestamp(2)).is_none());
        assert!(scanner.scan_from(10, &a2, Timestamp(3)).is_none());
        assert!(scanner.scan_from(20, &b2, Timestamp(4)).is_none());
        assert_eq!(scanner.stats().voyage_declarations, 2);
        assert_eq!(scanner.stats().bad_payload, 0);
        let a = scanner.voyages().latest(Mmsi(237_000_001)).unwrap();
        let b = scanner.voyages().latest(Mmsi(237_000_002)).unwrap();
        assert_eq!((a.name.as_str(), a.destination.as_str()), ("ALPHA", "CHIOS"));
        assert_eq!((b.name.as_str(), b.destination.as_str()), ("BRAVO", "SYROS"));
    }

    #[test]
    fn truncated_fragment_is_counted_at_finish() {
        use crate::voyage::{encode_static_voyage, StaticVoyageData};
        let data = StaticVoyageData {
            mmsi: Mmsi(237_000_042),
            imo: 0,
            callsign: String::new(),
            name: "GHOST".into(),
            ship_type: 70,
            draught_m: 3.0,
            destination: "NOWHERE".into(),
        };
        let [s1, _lost] = encode_static_voyage(&data, 2);
        let mut scanner = DataScanner::new();
        assert!(scanner.scan(&s1, Timestamp(10)).is_none());
        assert_eq!(scanner.stats().fragments_pending, 1);
        assert_eq!(scanner.stats().fragments_truncated, 0);
        // The second fragment never arrives; end of stream surfaces it.
        assert_eq!(scanner.finish(Timestamp(99)), 1);
        let stats = scanner.stats();
        assert_eq!(stats.fragments_truncated, 1);
        assert_eq!(stats.voyage_declarations, 0);
        // Idempotent once drained.
        assert_eq!(scanner.finish(Timestamp(100)), 0);
        assert_eq!(scanner.stats().fragments_truncated, 1);
    }

    #[test]
    fn mid_fragment_checkpoint_neither_drops_nor_duplicates() {
        use crate::voyage::{encode_static_voyage, StaticVoyageData};
        let data = StaticVoyageData {
            mmsi: Mmsi(237_000_042),
            imo: 12345,
            callsign: "SV9AB".into(),
            name: "MINOAN SPIRIT".into(),
            ship_type: 70,
            draught_m: 6.2,
            destination: "RHODES".into(),
        };
        let [s1, s2] = encode_static_voyage(&data, 4);
        let mut scanner = DataScanner::new();
        assert!(scanner.scan(&s1, Timestamp(10)).is_none());
        // Checkpoint mid-fragment: the partial message must survive, not
        // be drained as truncated.
        let snapshot = scanner.export_defrag_pending();
        assert_eq!(snapshot.messages.len(), 1);
        assert_eq!(scanner.stats().fragments_truncated, 0);

        // Restore into a fresh scanner and deliver the second fragment:
        // the message completes exactly once.
        let mut restored = DataScanner::new();
        restored.restore_defrag_pending(snapshot.clone());
        assert!(restored.scan(&s2, Timestamp(11)).is_none());
        assert_eq!(restored.stats().voyage_declarations, 1);
        assert_eq!(restored.stats().fragments_truncated, 0);
        let rec = restored.voyages().latest(Mmsi(237_000_042)).unwrap();
        assert_eq!(rec.destination, "RHODES");
        // Nothing left pending; finish finds nothing to abandon.
        assert_eq!(restored.finish(Timestamp(99)), 0);

        // Exporting the same state twice is deterministic, and a second
        // restore of the same snapshot does not resurrect the fragment in
        // the original scanner's replacement either (no duplication).
        let mut again = DataScanner::new();
        again.restore_defrag_pending(snapshot.clone());
        assert_eq!(again.export_defrag_pending(), snapshot);
        assert!(again.scan(&s2, Timestamp(11)).is_none());
        assert_eq!(again.stats().voyage_declarations, 1);
    }

    #[test]
    fn eviction_pressure_counts_truncated_mid_stream() {
        use crate::voyage::{encode_static_voyage, StaticVoyageData};
        let mut scanner = DataScanner::new();
        // 70 distinct half-complete type-5 messages overflow the default
        // 64-slot defragmenter; the overflow must be counted, not silent.
        for seq in 0..70u32 {
            let data = StaticVoyageData {
                mmsi: Mmsi(237_000_000 + seq),
                imo: 0,
                callsign: String::new(),
                name: format!("V{seq}"),
                ship_type: 70,
                draught_m: 3.0,
                destination: String::new(),
            };
            let [s1, _lost] = encode_static_voyage(&data, (seq % 10) as u8);
            let mut f = crate::nmea::parse_sentence(&s1).unwrap();
            f.channel = char::from(b'A' + (seq / 10) as u8);
            let line = {
                // Re-encode with the altered channel so the scanner path
                // (string in, checksum verified) is exercised end to end.
                let body = format!(
                    "AIVDM,{},{},{},{},{},{}",
                    f.total,
                    f.number,
                    f.seq_id.unwrap_or(0),
                    f.channel,
                    f.payload,
                    f.fill_bits
                );
                format!("!{body}*{:02X}", crate::nmea::checksum(&body))
            };
            assert!(scanner.scan(&line, Timestamp(i64::from(seq))).is_none());
        }
        let stats = scanner.stats();
        assert_eq!(stats.fragments_pending, 70);
        assert_eq!(stats.fragments_truncated, 6, "70 keys, 64 retained");
    }
}
