//! The CER input vocabulary.
//!
//! §5.2: "The input of RTEC ... consists of the MEs (communication) gap,
//! lowSpeed, stopped, speedChange and turn, as well as the coordinates of
//! each vessel at the time of ME detection." Durative MEs (stopped, low
//! speed) arrive as start/end marker events from the tracker, from which
//! the recognizer derives the corresponding input fluents.

use maritime_ais::Mmsi;
use maritime_geo::{AreaId, GeoPoint};
use maritime_stream::Timestamp;
use maritime_tracker::{Annotation, CriticalPoint};
use serde::{Deserialize, Serialize};

/// The movement-event kinds consumed by the recognizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InputKind {
    /// Communication gap started (`gap(Vessel)` in rule 5).
    GapStart,
    /// Communication resumed.
    GapEnd,
    /// `start(stopped(Vessel)=true)`.
    StopStart,
    /// `end(stopped(Vessel)=true)`.
    StopEnd,
    /// `start(slowMotion(Vessel)=true)` — the paper's `lowSpeed`.
    SlowMotionStart,
    /// `end(slowMotion(Vessel)=true)`.
    SlowMotionEnd,
    /// Instantaneous speed change.
    SpeedChange,
    /// Instantaneous or smooth turn.
    Turn,
}

/// One critical movement event, with the vessel's coordinates and —
/// in precomputed-spatial-facts mode — the areas it is close to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InputEvent {
    /// The vessel.
    pub mmsi: Mmsi,
    /// The event kind.
    pub kind: InputKind,
    /// Vessel coordinates at detection time (the `coord` fluent of §4.1).
    pub position: GeoPoint,
    /// Precomputed spatial facts: ids of areas the vessel is close to at
    /// this point. `None` in on-demand mode — the recognizer then computes
    /// proximity itself (Figure 11(a) vs 11(b)).
    pub close_areas: Option<Vec<AreaId>>,
}

impl InputEvent {
    /// Converts a tracker critical point into a recognizer input event.
    /// Returns `None` for annotations outside the ME vocabulary
    /// (trajectory anchors).
    #[must_use]
    pub fn from_critical(cp: &CriticalPoint) -> Option<(Timestamp, Self)> {
        let kind = match cp.annotation {
            Annotation::GapStart => InputKind::GapStart,
            Annotation::GapEnd => InputKind::GapEnd,
            Annotation::StopStart => InputKind::StopStart,
            Annotation::StopEnd { .. } => InputKind::StopEnd,
            Annotation::SlowMotionStart => InputKind::SlowMotionStart,
            Annotation::SlowMotionEnd => InputKind::SlowMotionEnd,
            Annotation::SpeedChange { .. } => InputKind::SpeedChange,
            Annotation::Turn { .. } | Annotation::SmoothTurn { .. } => InputKind::Turn,
            Annotation::TrackStart | Annotation::TrackEnd => return None,
        };
        Some((
            cp.timestamp,
            Self {
                mmsi: cp.mmsi,
                kind,
                position: cp.position,
                close_areas: None,
            },
        ))
    }

    /// Converts a whole critical-point batch, dropping non-ME annotations.
    #[must_use]
    pub fn from_critical_batch(cps: &[CriticalPoint]) -> Vec<(Timestamp, Self)> {
        cps.iter().filter_map(Self::from_critical).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maritime_stream::Duration;

    fn cp(annotation: Annotation) -> CriticalPoint {
        CriticalPoint {
            mmsi: Mmsi(7),
            position: GeoPoint::new(24.0, 37.0),
            timestamp: Timestamp(100),
            annotation,
            speed_knots: 5.0,
            heading_deg: 90.0,
        }
    }

    #[test]
    fn me_annotations_convert() {
        let cases = [
            (Annotation::GapStart, InputKind::GapStart),
            (Annotation::GapEnd, InputKind::GapEnd),
            (Annotation::StopStart, InputKind::StopStart),
            (
                Annotation::StopEnd {
                    centroid: GeoPoint::new(24.0, 37.0),
                    duration: Duration::secs(60),
                },
                InputKind::StopEnd,
            ),
            (Annotation::SlowMotionStart, InputKind::SlowMotionStart),
            (Annotation::SlowMotionEnd, InputKind::SlowMotionEnd),
            (
                Annotation::SpeedChange { prev_knots: 10.0, now_knots: 4.0 },
                InputKind::SpeedChange,
            ),
            (Annotation::Turn { change_deg: 30.0 }, InputKind::Turn),
            (Annotation::SmoothTurn { cumulative_deg: 20.0 }, InputKind::Turn),
        ];
        for (ann, expected) in cases {
            let (t, ev) = InputEvent::from_critical(&cp(ann)).unwrap();
            assert_eq!(ev.kind, expected);
            assert_eq!(t, Timestamp(100));
            assert_eq!(ev.mmsi, Mmsi(7));
            assert!(ev.close_areas.is_none());
        }
    }

    #[test]
    fn track_anchors_are_dropped() {
        assert!(InputEvent::from_critical(&cp(Annotation::TrackStart)).is_none());
        assert!(InputEvent::from_critical(&cp(Annotation::TrackEnd)).is_none());
    }

    #[test]
    fn batch_conversion_filters() {
        let batch = vec![
            cp(Annotation::TrackStart),
            cp(Annotation::Turn { change_deg: 20.0 }),
            cp(Annotation::TrackEnd),
        ];
        let events = InputEvent::from_critical_batch(&batch);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].1.kind, InputKind::Turn);
    }
}
