//! Precomputed spatial facts (the Figure 11(b) mode).
//!
//! "The ME stream is augmented by timestamped facts indicating the spatial
//! relations between vessels and (protected, forbidden fishing, shallow)
//! areas. Each ME ... is accompanied by facts stating whether the vessel is
//! 'close' to some area of interest — the timestamp of these facts is the
//! same as the timestamp of the ME" (§5.2).
//!
//! In this mode the CE rules consult the facts instead of computing the
//! Haversine distance during recognition, trading a larger input stream for
//! cheaper per-rule evaluation.

use maritime_geo::AreaId;
use maritime_stream::Timestamp;

use crate::input::InputEvent;
use crate::knowledge::Knowledge;

/// Annotates every event with its close-area facts, returning the total
/// number of spatial facts generated (one per (event, close area) pair —
/// the quantity the paper adds to the input-stream size in Figure 11(b)).
pub fn annotate_with_spatial_facts(
    events: &mut [(Timestamp, InputEvent)],
    knowledge: &Knowledge,
) -> usize {
    let mut facts = 0;
    // Grid lookups land in one reusable buffer; each event then gets an
    // owned copy sized exactly to its fact count. Most open-sea positions
    // are close to nothing, and `Vec::new()` never touches the heap, so
    // the common empty case attaches `Some` facts without allocating
    // (pinned by `tests/no_alloc.rs`).
    let mut scratch: Vec<AreaId> = Vec::new();
    for (_, ev) in events.iter_mut() {
        knowledge.close_area_ids_into(ev.position, &mut scratch);
        facts += scratch.len();
        ev.close_areas =
            Some(if scratch.is_empty() { Vec::new() } else { scratch.clone() });
    }
    facts
}

/// Strips spatial facts from a stream (back to on-demand mode inputs).
pub fn strip_spatial_facts(events: &mut [(Timestamp, InputEvent)]) {
    for (_, ev) in events.iter_mut() {
        ev.close_areas = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::InputKind;
    use crate::knowledge::{SpatialMode, VesselInfo};
    use maritime_ais::Mmsi;
    use maritime_geo::{Area, AreaId, AreaKind, GeoPoint, Polygon};

    fn kb() -> Knowledge {
        Knowledge::standard(
            vec![VesselInfo { mmsi: Mmsi(1), draft_m: 5.0, is_fishing: true }],
            vec![Area::new(
                AreaId(0),
                "zone",
                AreaKind::ForbiddenFishing,
                Polygon::rectangle(GeoPoint::new(24.0, 37.0), GeoPoint::new(24.2, 37.2)),
            )],
        )
    }

    fn ev(lon: f64, lat: f64) -> (Timestamp, InputEvent) {
        (
            Timestamp(100),
            InputEvent {
                mmsi: Mmsi(1),
                kind: InputKind::SlowMotionStart,
                position: GeoPoint::new(lon, lat),
                close_areas: None,
            },
        )
    }

    #[test]
    fn annotation_attaches_close_areas() {
        let kb = kb();
        let mut events = vec![ev(24.1, 37.1), ev(20.0, 40.0)];
        let facts = annotate_with_spatial_facts(&mut events, &kb);
        assert_eq!(facts, 1);
        assert_eq!(events[0].1.close_areas.as_deref(), Some(&[AreaId(0)][..]));
        assert_eq!(events[1].1.close_areas.as_deref(), Some(&[][..]));
    }

    #[test]
    fn strip_removes_facts() {
        let kb = kb();
        let mut events = vec![ev(24.1, 37.1)];
        annotate_with_spatial_facts(&mut events, &kb);
        strip_spatial_facts(&mut events);
        assert!(events[0].1.close_areas.is_none());
    }

    #[test]
    fn precomputed_mode_recognizes_same_ces_as_on_demand() {
        use crate::recognizer::MaritimeRecognizer;
        use maritime_rtec::{Duration, WindowSpec};

        let spec = WindowSpec::new(Duration::hours(6), Duration::hours(1)).unwrap();
        let raw = vec![ev(24.1, 37.1)];

        // On-demand.
        let mut on_demand = MaritimeRecognizer::new(kb(), spec);
        on_demand.add_events(raw.clone());
        let s1 = on_demand.recognize_and_summarize(Timestamp(3_600));

        // Precomputed.
        let mut annotated = raw;
        annotate_with_spatial_facts(&mut annotated, &kb());
        let mut pre =
            MaritimeRecognizer::new(kb().with_mode(SpatialMode::Precomputed), spec);
        pre.add_events(annotated);
        let s2 = pre.recognize_and_summarize(Timestamp(3_600));

        assert_eq!(s1.ce_count, s2.ce_count);
        assert_eq!(s1.illegal_fishing.len(), s2.illegal_fishing.len());
        assert_eq!(s1.illegal_fishing[0].0, s2.illegal_fishing[0].0);
    }
}
