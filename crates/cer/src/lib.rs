//! Maritime complex event recognition (§4 of the paper).
//!
//! Correlates the critical movement-event stream produced by the trajectory
//! detection component with static geographical and vessel knowledge to
//! recognize the four complex events of §4.1:
//!
//! 1. **Suspicious area** (rule-set 3) — at least four vessels stopped
//!    close to, or in, a monitored area;
//! 2. **Illegal fishing** (rule-set 4) — a fishing vessel stopped or moving
//!    too slowly close to a forbidden-fishing area;
//! 3. **Illegal shipping** (rule 5) — a vessel going silent (communication
//!    gap) close to a protected area;
//! 4. **Dangerous shipping** (rule 6) — a vessel moving slowly through
//!    waters too shallow for its draft.
//!
//! The durative CEs (1, 2) are fluents whose maximal intervals are computed
//! by the [`maritime_rtec`] engine; (3, 4) are instantaneous derived
//! events, pushed as [`Alert`]s.
//!
//! Two spatial-reasoning modes reproduce the ablation of Figure 11:
//! [`SpatialMode::OnDemand`] computes `close/3` during recognition via the
//! geographic grid index, while [`SpatialMode::Precomputed`] consumes
//! spatial facts attached to the input events (see [`spatial`]).
//! [`partition`] implements the geographic parallelisation of §5.2.

#![warn(missing_docs)]

pub mod ckpt;
pub mod coordinator;
pub mod extensions;
pub mod fluents;
pub mod input;
pub mod knowledge;
pub mod partition;
pub mod provenance;
pub mod recognizer;
pub mod spatial;

pub use coordinator::CoordinatedRecognizer;
pub use extensions::{ExtendedRecognizer, ExtensionReport, Rendezvous};
pub use fluents::{Alert, AlertKind, FluentKey};
pub use input::{InputEvent, InputKind};
pub use knowledge::{Knowledge, SpatialMode, VesselInfo};
pub use partition::{GeoPartitioner, PartitionedRecognizer};
pub use provenance::{alert_id, build_chains, render_proof_tree, visit_input_leaves, CeChain, ChainNode};
pub use maritime_rtec::{EvalStrategy, IncrementalStats};
pub use recognizer::{MaritimeRecognizer, RecognitionSummary};
