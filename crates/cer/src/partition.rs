//! Geographically partitioned, parallel recognition (§5.2, Figure 11).
//!
//! "One processor performed CE recognition for the areas located in, and
//! the vessels passing through the west part of the area under
//! surveillance. Similarly, the other processor performed CE recognition
//! for ... the east part. ... The input MEs are forwarded to the
//! appropriate processor (according to vessel location)."
//!
//! The partitioner splits the monitored region into `n` longitude bands
//! with (approximately) balanced event counts, builds one knowledge base
//! and one recognizer per band, routes each ME to its band by coordinates,
//! and runs the recognizers on OS threads.
//!
//! **Boundary effects.** Routing by event position means a vessel whose
//! trace crosses a band boundary has its MEs split across recognizers —
//! a durative fluent started on one side is then invisible to the other.
//! For physically continuous traces this is benign: the start and end
//! markers of a stop or slow-motion run are co-located, so marker pairs
//! always land in the same band, and only CEs *straddling* a boundary can
//! differ from single-recognizer output (the paper's setup shares this
//! property — MEs are "forwarded to the appropriate processor (according
//! to vessel location)"). Choose boundaries away from monitored areas to
//! eliminate the residual effect.

use maritime_geo::Area;
use maritime_rtec::{Timestamp, WindowSpec};

use crate::input::InputEvent;
use crate::knowledge::{Knowledge, SpatialMode, VesselInfo};
use crate::recognizer::{MaritimeRecognizer, RecognitionSummary};

/// Longitude-band partitioner.
#[derive(Debug, Clone)]
pub struct GeoPartitioner {
    /// Interior boundaries, ascending. `n` partitions have `n − 1` entries.
    boundaries: Vec<f64>,
}

impl GeoPartitioner {
    /// The paper's two-way split of the Aegean at a fixed meridian.
    #[must_use]
    pub fn east_west() -> Self {
        Self {
            boundaries: vec![maritime_geo::aegean::EAST_WEST_SPLIT_LON],
        }
    }

    /// Splits into `n` bands balancing the given event sample: boundaries
    /// at the longitude quantiles of the events.
    #[must_use]
    pub fn balanced(n: usize, events: &[(Timestamp, InputEvent)]) -> Self {
        assert!(n >= 1);
        if n == 1 || events.is_empty() {
            return Self { boundaries: Vec::new() };
        }
        let mut lons: Vec<f64> = events.iter().map(|(_, e)| e.position.lon).collect();
        lons.sort_by(|a, b| a.partial_cmp(b).expect("finite longitudes"));
        let boundaries = (1..n)
            .map(|i| lons[i * lons.len() / n])
            .collect();
        Self { boundaries }
    }

    /// Number of partitions.
    #[must_use]
    pub fn partitions(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// The band index for a longitude.
    #[must_use]
    pub fn index_of(&self, lon: f64) -> usize {
        self.boundaries.partition_point(|b| *b <= lon)
    }

    /// Routes events into per-band vectors by vessel location.
    #[must_use]
    pub fn route_events(
        &self,
        events: &[(Timestamp, InputEvent)],
    ) -> Vec<Vec<(Timestamp, InputEvent)>> {
        let mut out = vec![Vec::new(); self.partitions()];
        for (t, e) in events {
            out[self.index_of(e.position.lon)].push((*t, e.clone()));
        }
        out
    }

    /// Routes areas into bands by centroid.
    #[must_use]
    pub fn route_areas(&self, areas: &[Area]) -> Vec<Vec<Area>> {
        let mut out = vec![Vec::new(); self.partitions()];
        for a in areas {
            out[self.index_of(a.polygon.centroid().lon)].push(a.clone());
        }
        out
    }
}

/// One query's merged result across partitions.
#[derive(Debug, Clone)]
pub struct MergedSummary {
    /// Query time.
    pub query_time: Timestamp,
    /// Per-partition summaries, in band order (west to east).
    pub per_partition: Vec<RecognitionSummary>,
}

impl MergedSummary {
    /// Total CE count across partitions.
    #[must_use]
    pub fn ce_count(&self) -> usize {
        self.per_partition.iter().map(|s| s.ce_count).sum()
    }

    /// Total working-memory size across partitions.
    #[must_use]
    pub fn working_memory(&self) -> usize {
        self.per_partition.iter().map(|s| s.working_memory).sum()
    }
}

/// Runs partitioned recognition: one recognizer per band on its own OS
/// thread, each processing all query times over its routed events.
/// Returns one [`MergedSummary`] per query time.
#[must_use]
pub fn recognize_partitioned(
    partitioner: &GeoPartitioner,
    vessels: &[VesselInfo],
    areas: &[Area],
    events: &[(Timestamp, InputEvent)],
    spec: WindowSpec,
    query_times: &[Timestamp],
    mode: SpatialMode,
) -> Vec<MergedSummary> {
    let routed_events = partitioner.route_events(events);
    let routed_areas = partitioner.route_areas(areas);

    let mut per_partition_results: Vec<Vec<RecognitionSummary>> =
        Vec::with_capacity(partitioner.partitions());

    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = routed_events
            .iter()
            .zip(&routed_areas)
            .map(|(band_events, band_areas)| {
                let band_areas = band_areas.clone();
                scope.spawn(move |_| {
                    let kb = Knowledge::new(
                        vessels.iter().copied(),
                        band_areas,
                        2_000.0,
                        mode,
                    );
                    let mut recognizer = MaritimeRecognizer::new(kb, spec);
                    recognizer.add_events(band_events.iter().cloned());
                    query_times
                        .iter()
                        .map(|q| recognizer.recognize_and_summarize(*q))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            per_partition_results.push(h.join().expect("partition thread panicked"));
        }
    })
    .expect("crossbeam scope");

    query_times
        .iter()
        .enumerate()
        .map(|(qi, q)| MergedSummary {
            query_time: *q,
            per_partition: per_partition_results
                .iter()
                .map(|r| r[qi].clone())
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::InputKind;
    use maritime_ais::Mmsi;
    use maritime_geo::{AreaId, AreaKind, GeoPoint, Polygon};
    use maritime_rtec::Duration;

    fn t(v: i64) -> Timestamp {
        Timestamp(v)
    }

    fn ev(mmsi: u32, kind: InputKind, lon: f64, lat: f64) -> (Timestamp, InputEvent) {
        (
            t(100 + i64::from(mmsi)),
            InputEvent {
                mmsi: Mmsi(mmsi),
                kind,
                position: GeoPoint::new(lon, lat),
                close_areas: None,
            },
        )
    }

    fn west_area() -> Area {
        Area::new(
            AreaId(0),
            "west-park",
            AreaKind::Protected,
            Polygon::rectangle(GeoPoint::new(21.0, 37.0), GeoPoint::new(21.2, 37.2)),
        )
    }

    fn east_area() -> Area {
        Area::new(
            AreaId(1),
            "east-park",
            AreaKind::Protected,
            Polygon::rectangle(GeoPoint::new(26.0, 38.0), GeoPoint::new(26.2, 38.2)),
        )
    }

    #[test]
    fn east_west_split_routes_by_longitude() {
        let p = GeoPartitioner::east_west();
        assert_eq!(p.partitions(), 2);
        assert_eq!(p.index_of(21.0), 0);
        assert_eq!(p.index_of(26.0), 1);
    }

    #[test]
    fn balanced_partitioner_equalizes_counts() {
        let events: Vec<_> = (0..100)
            .map(|i| ev(i, InputKind::Turn, 20.0 + 0.08 * f64::from(i), 38.0))
            .collect();
        let p = GeoPartitioner::balanced(4, &events);
        assert_eq!(p.partitions(), 4);
        let routed = p.route_events(&events);
        for band in &routed {
            assert!((20..=30).contains(&band.len()), "band size {}", band.len());
        }
        let total: usize = routed.iter().map(Vec::len).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn single_partition_routes_everything_together() {
        let events = vec![ev(1, InputKind::Turn, 21.0, 38.0), ev(2, InputKind::Turn, 27.0, 38.0)];
        let p = GeoPartitioner::balanced(1, &events);
        let routed = p.route_events(&events);
        assert_eq!(routed.len(), 1);
        assert_eq!(routed[0].len(), 2);
    }

    #[test]
    fn partitioned_recognition_matches_single_recognizer() {
        let spec = WindowSpec::new(Duration::hours(6), Duration::hours(1)).unwrap();
        let vessels: Vec<VesselInfo> = (0..10)
            .map(|i| VesselInfo { mmsi: Mmsi(i), draft_m: 5.0, is_fishing: false })
            .collect();
        let areas = vec![west_area(), east_area()];
        // A gap near the west park and one near the east park.
        let events = vec![
            ev(1, InputKind::GapStart, 21.1, 37.1),
            ev(2, InputKind::GapStart, 26.1, 38.1),
        ];
        let queries = vec![t(3_600)];

        // Single recognizer.
        let mut single = MaritimeRecognizer::new(
            Knowledge::standard(vessels.iter().copied(), areas.clone()),
            spec,
        );
        single.add_events(events.iter().cloned());
        let s = single.recognize_and_summarize(t(3_600));

        // Two-way partitioned.
        let merged = recognize_partitioned(
            &GeoPartitioner::east_west(),
            &vessels,
            &areas,
            &events,
            spec,
            &queries,
            SpatialMode::OnDemand,
        );
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].ce_count(), s.ce_count);
        assert_eq!(merged[0].ce_count(), 2);
        // Each partition saw exactly its own event.
        assert_eq!(merged[0].per_partition[0].working_memory, 1);
        assert_eq!(merged[0].per_partition[1].working_memory, 1);
    }
}
