//! Geographically partitioned, parallel recognition (§5.2, Figure 11).
//!
//! "One processor performed CE recognition for the areas located in, and
//! the vessels passing through the west part of the area under
//! surveillance. Similarly, the other processor performed CE recognition
//! for ... the east part. ... The input MEs are forwarded to the
//! appropriate processor (according to vessel location)."
//!
//! The partitioner splits the monitored region into `n` longitude bands
//! with (approximately) balanced event counts, builds one knowledge base
//! and one recognizer per band, routes each ME to its band by coordinates,
//! and runs the recognizers on OS threads.
//!
//! **Boundary effects.** Routing by event position means a vessel whose
//! trace crosses a band boundary has its MEs split across recognizers —
//! a durative fluent started on one side is then invisible to the other.
//! For physically continuous traces this is benign: the start and end
//! markers of a stop or slow-motion run are co-located, so marker pairs
//! always land in the same band, and only CEs *straddling* a boundary can
//! differ from single-recognizer output (the paper's setup shares this
//! property — MEs are "forwarded to the appropriate processor (according
//! to vessel location)"). Choose boundaries away from monitored areas to
//! eliminate the residual effect.

use maritime_geo::Area;
use maritime_rtec::{EvalStrategy, Timestamp, WindowSpec};

use crate::input::InputEvent;
use crate::knowledge::{Knowledge, SpatialMode, VesselInfo};
use crate::recognizer::{MaritimeRecognizer, RecognitionSummary};

/// Longitude-band partitioner.
#[derive(Debug, Clone)]
pub struct GeoPartitioner {
    /// Interior boundaries, ascending. `n` partitions have `n − 1` entries.
    boundaries: Vec<f64>,
}

impl GeoPartitioner {
    /// The paper's two-way split of the Aegean at a fixed meridian.
    #[must_use]
    pub fn east_west() -> Self {
        Self {
            boundaries: vec![maritime_geo::aegean::EAST_WEST_SPLIT_LON],
        }
    }

    /// Splits into `n` bands balancing the given event sample: boundaries
    /// at the longitude quantiles of the events.
    #[must_use]
    pub fn balanced(n: usize, events: &[(Timestamp, InputEvent)]) -> Self {
        assert!(n >= 1);
        if n == 1 || events.is_empty() {
            return Self { boundaries: Vec::new() };
        }
        let mut lons: Vec<f64> = events.iter().map(|(_, e)| e.position.lon).collect();
        lons.sort_by(|a, b| a.partial_cmp(b).expect("finite longitudes"));
        let boundaries = (1..n)
            .map(|i| lons[i * lons.len() / n])
            .collect();
        Self { boundaries }
    }

    /// Splits `[lon_min, lon_max]` into `n` equal-width longitude bands.
    /// Unlike [`GeoPartitioner::balanced`] this needs no event sample, so
    /// it suits online operation where the stream is not known up front.
    ///
    /// # Panics
    /// If `n` is zero or the interval is not ascending and finite.
    #[must_use]
    pub fn uniform(n: usize, lon_min: f64, lon_max: f64) -> Self {
        assert!(n >= 1);
        assert!(
            lon_min.is_finite() && lon_max.is_finite() && lon_min < lon_max,
            "uniform bands need a finite ascending longitude interval"
        );
        let width = (lon_max - lon_min) / n as f64;
        Self {
            boundaries: (1..n).map(|i| lon_min + width * i as f64).collect(),
        }
    }

    /// Rebuilds a partitioner from saved interior boundaries (checkpoint
    /// restore path).
    ///
    /// # Panics
    /// If the boundaries are not finite and strictly ascending.
    #[must_use]
    pub fn from_boundaries(boundaries: Vec<f64>) -> Self {
        assert!(
            boundaries.windows(2).all(|w| w[0] < w[1])
                && boundaries.iter().all(|b| b.is_finite()),
            "band boundaries must be finite and strictly ascending"
        );
        Self { boundaries }
    }

    /// Number of partitions.
    #[must_use]
    pub fn partitions(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// Interior band boundaries, ascending (`partitions() − 1` entries).
    #[must_use]
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }

    /// The band index for a longitude.
    #[must_use]
    pub fn index_of(&self, lon: f64) -> usize {
        self.boundaries.partition_point(|b| *b <= lon)
    }

    /// Routes events into per-band vectors by vessel location.
    #[must_use]
    pub fn route_events(
        &self,
        events: &[(Timestamp, InputEvent)],
    ) -> Vec<Vec<(Timestamp, InputEvent)>> {
        let mut out = vec![Vec::new(); self.partitions()];
        for (t, e) in events {
            out[self.index_of(e.position.lon)].push((*t, e.clone()));
        }
        out
    }

    /// Routes areas into bands by centroid.
    #[must_use]
    pub fn route_areas(&self, areas: &[Area]) -> Vec<Vec<Area>> {
        let mut out = vec![Vec::new(); self.partitions()];
        for a in areas {
            out[self.index_of(a.polygon.centroid().lon)].push(a.clone());
        }
        out
    }
}

/// One query's merged result across partitions.
#[derive(Debug, Clone)]
pub struct MergedSummary {
    /// Query time.
    pub query_time: Timestamp,
    /// Per-partition summaries, in band order (west to east).
    pub per_partition: Vec<RecognitionSummary>,
}

impl MergedSummary {
    /// Total CE count across partitions.
    #[must_use]
    pub fn ce_count(&self) -> usize {
        self.per_partition.iter().map(|s| s.ce_count).sum()
    }

    /// Total working-memory size across partitions.
    #[must_use]
    pub fn working_memory(&self) -> usize {
        self.per_partition.iter().map(|s| s.working_memory).sum()
    }
}

/// Runs partitioned recognition: one recognizer per band on its own OS
/// thread, each processing all query times over its routed events.
/// Returns one [`MergedSummary`] per query time.
#[must_use]
pub fn recognize_partitioned(
    partitioner: &GeoPartitioner,
    vessels: &[VesselInfo],
    areas: &[Area],
    events: &[(Timestamp, InputEvent)],
    spec: WindowSpec,
    query_times: &[Timestamp],
    mode: SpatialMode,
) -> Vec<MergedSummary> {
    let routed_events = partitioner.route_events(events);
    let routed_areas = partitioner.route_areas(areas);

    let mut per_partition_results: Vec<Vec<RecognitionSummary>> =
        Vec::with_capacity(partitioner.partitions());

    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = routed_events
            .iter()
            .zip(&routed_areas)
            .map(|(band_events, band_areas)| {
                let band_areas = band_areas.clone();
                scope.spawn(move |_| {
                    let kb = Knowledge::new(
                        vessels.iter().copied(),
                        band_areas,
                        2_000.0,
                        mode,
                    );
                    let mut recognizer = MaritimeRecognizer::new(kb, spec);
                    recognizer.add_events(band_events.iter().cloned());
                    query_times
                        .iter()
                        .map(|q| recognizer.recognize_and_summarize(*q))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            per_partition_results.push(h.join().expect("partition thread panicked"));
        }
    })
    .expect("crossbeam scope");

    query_times
        .iter()
        .enumerate()
        .map(|(qi, q)| MergedSummary {
            query_time: *q,
            per_partition: per_partition_results
                .iter()
                .map(|r| r[qi].clone())
                .collect(),
        })
        .collect()
}

/// An incremental, geo-partitioned recognizer for online pipelines.
///
/// [`recognize_partitioned`] is batch-oriented: it needs the whole event
/// stream and every query time up front. A streaming pipeline instead
/// interleaves `add_events` and queries, so this wrapper keeps one
/// long-lived [`MaritimeRecognizer`] per longitude band, routes each
/// incoming ME to its band by vessel location, and answers each query by
/// running all bands on scoped threads and merging their summaries.
///
/// Spatial facts: in [`SpatialMode::Precomputed`], `close/3` facts are
/// attached *after* routing, against the band-local area set — the same
/// facts band-local recognition would derive on demand.
pub struct PartitionedRecognizer {
    partitioner: GeoPartitioner,
    recognizers: Vec<MaritimeRecognizer>,
}

impl PartitionedRecognizer {
    /// Builds one recognizer per band: all vessels are known everywhere
    /// (static facts are cheap), areas are routed to their band by
    /// centroid.
    #[must_use]
    pub fn new(
        partitioner: GeoPartitioner,
        vessels: &[VesselInfo],
        areas: &[Area],
        close_threshold_m: f64,
        mode: SpatialMode,
        spec: WindowSpec,
    ) -> Self {
        Self::with_strategy(
            partitioner,
            vessels,
            areas,
            close_threshold_m,
            mode,
            spec,
            EvalStrategy::default(),
        )
    }

    /// Like [`PartitionedRecognizer::new`], with an explicit per-band
    /// engine evaluation strategy (checkpointed incremental vs.
    /// from-scratch per query).
    #[must_use]
    pub fn with_strategy(
        partitioner: GeoPartitioner,
        vessels: &[VesselInfo],
        areas: &[Area],
        close_threshold_m: f64,
        mode: SpatialMode,
        spec: WindowSpec,
        strategy: EvalStrategy,
    ) -> Self {
        let recognizers = partitioner
            .route_areas(areas)
            .into_iter()
            .map(|band_areas| {
                let kb = Knowledge::new(
                    vessels.iter().copied(),
                    band_areas,
                    close_threshold_m,
                    mode,
                );
                MaritimeRecognizer::with_strategy(kb, spec, strategy)
            })
            .collect();
        Self {
            partitioner,
            recognizers,
        }
    }

    /// Number of bands.
    #[must_use]
    pub fn partitions(&self) -> usize {
        self.recognizers.len()
    }

    /// The band partitioner.
    #[must_use]
    pub fn partitioner(&self) -> &GeoPartitioner {
        &self.partitioner
    }

    /// The knowledge base of one band.
    #[must_use]
    pub fn knowledge(&self, band: usize) -> &Knowledge {
        self.recognizers[band].knowledge()
    }

    /// How queries have been evaluated so far, summed across bands (each
    /// band engine answers every query, so `incremental + full` is
    /// `queries × bands`); all zeros under the from-scratch strategy.
    #[must_use]
    pub fn incremental_stats(&self) -> maritime_rtec::IncrementalStats {
        let mut sum = maritime_rtec::IncrementalStats::default();
        for r in &self.recognizers {
            let s = r.incremental_stats();
            sum.incremental += s.incremental;
            sum.full += s.full;
            sum.triggers_evaluated += s.triggers_evaluated;
            sum.triggers_reused += s.triggers_reused;
        }
        sum
    }

    /// Routes events to their bands. In precomputed mode each event gets
    /// its `close/3` facts from its own band's area set.
    pub fn add_events(&mut self, events: impl IntoIterator<Item = (Timestamp, InputEvent)>) {
        let mut routed: Vec<Vec<(Timestamp, InputEvent)>> =
            vec![Vec::new(); self.recognizers.len()];
        for (t, e) in events {
            routed[self.partitioner.index_of(e.position.lon)].push((t, e));
        }
        for (band, events) in routed.into_iter().enumerate() {
            if events.is_empty() {
                continue;
            }
            let recognizer = &mut self.recognizers[band];
            let mut events = events;
            if recognizer.knowledge().spatial_mode == SpatialMode::Precomputed {
                crate::spatial::annotate_with_spatial_facts(&mut events, recognizer.knowledge());
            }
            recognizer.add_events(events);
        }
    }

    /// Turns per-CE provenance capture on or off in every band. Bands
    /// own disjoint areas and vessels-in-areas, so the union of per-band
    /// chains is the partitioned run's full chain set.
    pub fn set_provenance(&mut self, on: bool) {
        for r in &mut self.recognizers {
            r.set_provenance(on);
        }
    }

    /// Takes the chains assembled by the most recent traced query,
    /// merged across bands and sorted by id.
    pub fn take_chains(&mut self) -> Vec<crate::provenance::CeChain> {
        let mut chains: Vec<_> = self
            .recognizers
            .iter_mut()
            .flat_map(MaritimeRecognizer::take_chains)
            .collect();
        chains.sort_by(|a, b| a.id.cmp(&b.id));
        chains
    }

    /// Runs one query on every band concurrently and merges the results
    /// into a single summary: per-area CE intervals concatenate (bands own
    /// disjoint areas), alerts interleave into time order, and counts sum.
    pub fn recognize_and_summarize(&mut self, q: Timestamp) -> RecognitionSummary {
        let summaries: Vec<RecognitionSummary> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = self
                .recognizers
                .iter_mut()
                .map(|r| scope.spawn(move |_| r.recognize_and_summarize(q)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("band thread panicked"))
                .collect()
        })
        .expect("crossbeam scope");
        merge_band_summaries(q, summaries)
    }
}

/// Merges per-band summaries of one query into a single summary. Bands
/// own disjoint area sets, so the per-area interval lists never collide;
/// they are concatenated and sorted by area for determinism.
pub(crate) fn merge_band_summaries(
    q: Timestamp,
    summaries: Vec<RecognitionSummary>,
) -> RecognitionSummary {
    let mut merged = RecognitionSummary {
        query_time: q,
        suspicious: Vec::new(),
        illegal_fishing: Vec::new(),
        alerts: Vec::new(),
        ce_count: 0,
        working_memory: 0,
    };
    for s in summaries {
        merged.suspicious.extend(s.suspicious);
        merged.illegal_fishing.extend(s.illegal_fishing);
        merged.alerts.extend(s.alerts);
        merged.ce_count += s.ce_count;
        merged.working_memory += s.working_memory;
    }
    merged.suspicious.sort_by_key(|(area, _)| area.0);
    merged.illegal_fishing.sort_by_key(|(area, _)| area.0);
    merged.alerts.sort_by_key(|(t, _)| *t);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::InputKind;
    use maritime_ais::Mmsi;
    use maritime_geo::{AreaId, AreaKind, GeoPoint, Polygon};
    use maritime_rtec::Duration;

    fn t(v: i64) -> Timestamp {
        Timestamp(v)
    }

    fn ev(mmsi: u32, kind: InputKind, lon: f64, lat: f64) -> (Timestamp, InputEvent) {
        (
            t(100 + i64::from(mmsi)),
            InputEvent {
                mmsi: Mmsi(mmsi),
                kind,
                position: GeoPoint::new(lon, lat),
                close_areas: None,
            },
        )
    }

    fn west_area() -> Area {
        Area::new(
            AreaId(0),
            "west-park",
            AreaKind::Protected,
            Polygon::rectangle(GeoPoint::new(21.0, 37.0), GeoPoint::new(21.2, 37.2)),
        )
    }

    fn east_area() -> Area {
        Area::new(
            AreaId(1),
            "east-park",
            AreaKind::Protected,
            Polygon::rectangle(GeoPoint::new(26.0, 38.0), GeoPoint::new(26.2, 38.2)),
        )
    }

    #[test]
    fn east_west_split_routes_by_longitude() {
        let p = GeoPartitioner::east_west();
        assert_eq!(p.partitions(), 2);
        assert_eq!(p.index_of(21.0), 0);
        assert_eq!(p.index_of(26.0), 1);
    }

    #[test]
    fn balanced_partitioner_equalizes_counts() {
        let events: Vec<_> = (0..100)
            .map(|i| ev(i, InputKind::Turn, 20.0 + 0.08 * f64::from(i), 38.0))
            .collect();
        let p = GeoPartitioner::balanced(4, &events);
        assert_eq!(p.partitions(), 4);
        let routed = p.route_events(&events);
        for band in &routed {
            assert!((20..=30).contains(&band.len()), "band size {}", band.len());
        }
        let total: usize = routed.iter().map(Vec::len).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn single_partition_routes_everything_together() {
        let events = vec![ev(1, InputKind::Turn, 21.0, 38.0), ev(2, InputKind::Turn, 27.0, 38.0)];
        let p = GeoPartitioner::balanced(1, &events);
        let routed = p.route_events(&events);
        assert_eq!(routed.len(), 1);
        assert_eq!(routed[0].len(), 2);
    }

    #[test]
    fn uniform_bands_are_equal_width() {
        let p = GeoPartitioner::uniform(4, 20.0, 28.0);
        assert_eq!(p.partitions(), 4);
        assert_eq!(p.index_of(20.5), 0);
        assert_eq!(p.index_of(22.5), 1);
        assert_eq!(p.index_of(24.5), 2);
        assert_eq!(p.index_of(27.9), 3);
        // Left-closed bands: a boundary longitude belongs to the right band.
        assert_eq!(p.index_of(22.0), 1);
    }

    #[test]
    fn incremental_partitioned_recognizer_matches_single() {
        let spec = WindowSpec::new(Duration::hours(6), Duration::hours(1)).unwrap();
        let vessels: Vec<VesselInfo> = (0..10)
            .map(|i| VesselInfo { mmsi: Mmsi(i), draft_m: 5.0, is_fishing: false })
            .collect();
        let areas = vec![west_area(), east_area()];
        let events = [
            ev(1, InputKind::GapStart, 21.1, 37.1),
            ev(2, InputKind::GapStart, 26.1, 38.1),
        ];

        let mut single = MaritimeRecognizer::new(
            Knowledge::standard(vessels.iter().copied(), areas.clone()),
            spec,
        );
        single.add_events(events.iter().cloned());
        let s = single.recognize_and_summarize(t(3_600));

        let mut partitioned = PartitionedRecognizer::new(
            GeoPartitioner::east_west(),
            &vessels,
            &areas,
            2_000.0,
            SpatialMode::OnDemand,
            spec,
        );
        assert_eq!(partitioned.partitions(), 2);
        partitioned.add_events(events.iter().cloned());
        let m = partitioned.recognize_and_summarize(t(3_600));
        assert_eq!(m.ce_count, s.ce_count);
        assert_eq!(m.working_memory, s.working_memory);
        assert_eq!(m.alerts.len(), s.alerts.len());
        assert_eq!(m.suspicious.len(), s.suspicious.len());
    }

    #[test]
    fn partitioned_recognition_matches_single_recognizer() {
        let spec = WindowSpec::new(Duration::hours(6), Duration::hours(1)).unwrap();
        let vessels: Vec<VesselInfo> = (0..10)
            .map(|i| VesselInfo { mmsi: Mmsi(i), draft_m: 5.0, is_fishing: false })
            .collect();
        let areas = vec![west_area(), east_area()];
        // A gap near the west park and one near the east park.
        let events = vec![
            ev(1, InputKind::GapStart, 21.1, 37.1),
            ev(2, InputKind::GapStart, 26.1, 38.1),
        ];
        let queries = vec![t(3_600)];

        // Single recognizer.
        let mut single = MaritimeRecognizer::new(
            Knowledge::standard(vessels.iter().copied(), areas.clone()),
            spec,
        );
        single.add_events(events.iter().cloned());
        let s = single.recognize_and_summarize(t(3_600));

        // Two-way partitioned.
        let merged = recognize_partitioned(
            &GeoPartitioner::east_west(),
            &vessels,
            &areas,
            &events,
            spec,
            &queries,
            SpatialMode::OnDemand,
        );
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].ce_count(), s.ce_count);
        assert_eq!(merged[0].ce_count(), 2);
        // Each partition saw exactly its own event.
        assert_eq!(merged[0].per_partition[0].working_memory, 1);
        assert_eq!(merged[0].per_partition[1].working_memory, 1);
    }
}
