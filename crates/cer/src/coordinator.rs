//! Fleet-scale partition coordination: vessel handoff between longitude
//! bands, border-zone replication, and whole-fleet checkpoint/restore.
//!
//! [`crate::partition::PartitionedRecognizer`] routes each movement event
//! to the band containing it and silently assumes vessels never cross a
//! band boundary. The [`CoordinatedRecognizer`] drops that assumption:
//!
//! * **Sticky homes + migration.** Every vessel is *homed* to one band
//!   (the band of its first event) and its events always reach that
//!   band's engine. When a vessel's latest position crosses into another
//!   band, the coordinator migrates it at the next query (a window
//!   boundary): the vessel's window-retained events are serialized
//!   through the checkpoint codec ([`maritime_rtec::ckpt`]) — the same
//!   bytes a cross-process handoff would ship — and replayed into the
//!   destination engine. Replaying at-or-below an incremental engine's
//!   cache checkpoint marks it stale, forcing a full recompute whose
//!   output matches by the incremental-equivalence invariant.
//! * **Border-zone replication.** Each band owns the areas whose
//!   centroid falls inside it, but its rules fire on events *close to*
//!   those areas, which may lie across a boundary. Every band therefore
//!   has a *reach*: the union of its areas' bounding boxes dilated by
//!   the close threshold (converted to longitude degrees at the areas'
//!   latitude) plus a configurable border strip. Events inside a band's
//!   reach are replicated to it even when homed elsewhere. Closing
//!   events (stop/slow-motion end, gap start) are broadcast to all
//!   bands — a termination for a fluent that was never initiated is a
//!   no-op, so over-delivery is harmless, while under-delivery would
//!   leave intervals open forever.
//! * **Why the merge is exact.** The maritime rules initiate CEs only on
//!   events close to the area in question, and alerts are computed by
//!   the band owning the area; areas are disjoint across bands, so
//!   per-area results never collide and the union over bands equals the
//!   serial recognizer's output. Working memory is reported from the
//!   coordinator's own admission window — summing per-band figures would
//!   double-count replicated events.
//! * **Pairwise rules.** Loitering/rendezvous ([`crate::extensions`])
//!   straddle bands by nature: two vessels can meet exactly on a
//!   boundary. With [`CoordinatedRecognizer::with_extensions`] each band
//!   runs a loitering engine over the full area set (fed home-only, so a
//!   vessel's complete stream lives in its current home after
//!   migration), and the coordinator performs the pairwise spatial join
//!   globally — border rendezvous need no special casing.
//!
//! The whole coordinator — band engines, admission window, vessel logs,
//! extension engines and anchors — serializes into one framed checkpoint
//! ([`CoordinatedRecognizer::checkpoint`]); restoring it mid-stream
//! continues with byte-identical output.

use std::collections::HashMap;

use maritime_ais::Mmsi;
use maritime_geo::{haversine_distance_m, Area, GeoPoint};
use maritime_obs::{names, LazyCounter, LazyGauge};
use maritime_rtec::ckpt::unframe;
use maritime_rtec::{
    CkptError, Codec, Engine, EvalStrategy, IntervalList, Reader, Timestamp, WindowSpec, Writer,
};
use maritime_stream::SlidingWindow;

use crate::extensions::{extension_description, ExtensionReport, Loitering, Rendezvous};
use crate::fluents::Alert;
use crate::input::{InputEvent, InputKind};
use crate::knowledge::{Knowledge, SpatialMode, VesselInfo};
use crate::partition::{merge_band_summaries, GeoPartitioner};
use crate::recognizer::{MaritimeRecognizer, RecognitionSummary};

static OBS_MIGRATIONS: LazyCounter = LazyCounter::new(names::CER_PARTITION_MIGRATIONS);
static OBS_CKPT_BYTES: LazyGauge = LazyGauge::new(names::CER_CHECKPOINT_BYTES);

/// Band masks are single machine words.
const MAX_BANDS: usize = 64;

/// Default border-strip width, degrees of longitude (~5.5 km at the
/// equator). The close threshold is already converted to degrees per
/// area; the strip adds slack for bounding-box vs. polygon proximity
/// and boundary jitter. Wider strips only cost replicated deliveries.
pub const DEFAULT_BORDER_STRIP_DEG: f64 = 0.05;

/// Event kinds that terminate durative maritime fluents; broadcast to
/// every band so no interval is left open by under-delivery.
fn is_closing(kind: InputKind) -> bool {
    matches!(
        kind,
        InputKind::StopEnd | InputKind::SlowMotionEnd | InputKind::GapStart
    )
}

/// One window-retained event of a vessel, with the bands it has been
/// delivered to (core engines and extension engines separately).
struct LogEntry {
    t: Timestamp,
    event: InputEvent,
    core_mask: u64,
    ext_mask: u64,
}

/// Per-vessel coordination state.
struct VesselState {
    /// The band whose engine receives all of this vessel's events.
    home: usize,
    /// Longitude of the newest event seen (migration trigger).
    last_lon: f64,
    /// Timestamp of the newest event seen.
    last_t: Timestamp,
    /// Window-retained events, in arrival order.
    log: Vec<LogEntry>,
}

/// Extension (loitering/rendezvous) state: one full-area engine per band
/// plus the global loiter anchors used by pairwise joins.
struct ExtCoordinator {
    engines: Vec<Engine<Knowledge, InputEvent, Loitering, Alert>>,
    anchors: HashMap<Mmsi, Vec<(Timestamp, GeoPoint)>>,
    rendezvous_radius_m: f64,
    min_overlap_secs: i64,
}

/// A partitioned recognizer that survives vessels crossing band
/// boundaries and can be checkpointed/restored as a whole (module docs).
pub struct CoordinatedRecognizer {
    partitioner: GeoPartitioner,
    bands: Vec<MaritimeRecognizer>,
    /// Per band: merged longitude intervals within rule reach of its areas.
    reach: Vec<Vec<(f64, f64)>>,
    vessels: HashMap<Mmsi, VesselState>,
    /// Every admitted event's timestamp, once — the distinct working
    /// memory (per-band sums would count replicated events twice).
    admitted: SlidingWindow<()>,
    spec: WindowSpec,
    strategy: EvalStrategy,
    close_threshold_m: f64,
    mode: SpatialMode,
    border_strip_deg: f64,
    migrations: u64,
    /// Static configuration, kept to build extension engines and to keep
    /// restore honest about what it was given.
    vessel_infos: Vec<VesselInfo>,
    areas: Vec<Area>,
    ext: Option<ExtCoordinator>,
}

impl CoordinatedRecognizer {
    /// Builds one recognizer per band (areas routed by centroid, all
    /// vessels known everywhere) plus the coordination state.
    #[must_use]
    pub fn new(
        partitioner: GeoPartitioner,
        vessels: &[VesselInfo],
        areas: &[Area],
        close_threshold_m: f64,
        mode: SpatialMode,
        spec: WindowSpec,
    ) -> Self {
        Self::with_strategy(
            partitioner,
            vessels,
            areas,
            close_threshold_m,
            mode,
            spec,
            EvalStrategy::default(),
        )
    }

    /// Like [`CoordinatedRecognizer::new`] with an explicit per-band
    /// engine evaluation strategy.
    ///
    /// # Panics
    /// If the partitioner has more than 64 bands.
    #[must_use]
    pub fn with_strategy(
        partitioner: GeoPartitioner,
        vessels: &[VesselInfo],
        areas: &[Area],
        close_threshold_m: f64,
        mode: SpatialMode,
        spec: WindowSpec,
        strategy: EvalStrategy,
    ) -> Self {
        assert!(
            partitioner.partitions() <= MAX_BANDS,
            "at most {MAX_BANDS} bands"
        );
        let routed = partitioner.route_areas(areas);
        let bands = routed
            .iter()
            .map(|band_areas| {
                let kb = Knowledge::new(
                    vessels.iter().copied(),
                    band_areas.clone(),
                    close_threshold_m,
                    mode,
                );
                MaritimeRecognizer::with_strategy(kb, spec, strategy)
            })
            .collect();
        let reach = band_reach(&routed, close_threshold_m, DEFAULT_BORDER_STRIP_DEG);
        Self {
            partitioner,
            bands,
            reach,
            vessels: HashMap::new(),
            admitted: SlidingWindow::new(spec),
            spec,
            strategy,
            close_threshold_m,
            mode,
            border_strip_deg: DEFAULT_BORDER_STRIP_DEG,
            migrations: 0,
            vessel_infos: vessels.to_vec(),
            areas: areas.to_vec(),
            ext: None,
        }
    }

    /// Enables the extension CEs (loitering + rendezvous): one full-area
    /// loitering engine per band, read for each vessel from its current
    /// home band, with the pairwise rendezvous join done globally.
    /// Extension engines use on-demand spatial reasoning regardless of
    /// the core mode — port proximity must consult the full area set.
    ///
    /// # Panics
    /// If events have already been streamed.
    #[must_use]
    pub fn with_extensions(mut self) -> Self {
        assert!(
            self.vessels.is_empty(),
            "enable extensions before streaming events"
        );
        let engines = (0..self.bands.len())
            .map(|_| {
                let kb = Knowledge::new(
                    self.vessel_infos.iter().copied(),
                    self.areas.clone(),
                    self.close_threshold_m,
                    SpatialMode::OnDemand,
                );
                Engine::new(kb, extension_description(), self.spec).with_strategy(self.strategy)
            })
            .collect();
        self.ext = Some(ExtCoordinator {
            engines,
            anchors: HashMap::new(),
            rendezvous_radius_m: 1_500.0,
            min_overlap_secs: 600,
        });
        self
    }

    /// Overrides the border-strip width (degrees of longitude) added to
    /// every band's reach.
    ///
    /// # Panics
    /// If `deg` is negative or not finite, or events have already been
    /// streamed (earlier events were replicated under the old reach).
    #[must_use]
    pub fn with_border_strip_deg(mut self, deg: f64) -> Self {
        assert!(deg.is_finite() && deg >= 0.0, "strip must be finite and >= 0");
        assert!(
            self.vessels.is_empty(),
            "set the border strip before streaming events"
        );
        self.border_strip_deg = deg;
        self.reach = band_reach(
            &self.partitioner.route_areas(&self.areas),
            self.close_threshold_m,
            deg,
        );
        self
    }

    /// Number of bands.
    #[must_use]
    pub fn partitions(&self) -> usize {
        self.bands.len()
    }

    /// The band partitioner.
    #[must_use]
    pub fn partitioner(&self) -> &GeoPartitioner {
        &self.partitioner
    }

    /// The knowledge base of one band.
    #[must_use]
    pub fn knowledge(&self, band: usize) -> &Knowledge {
        self.bands[band].knowledge()
    }

    /// Vessels handed off between bands so far.
    #[must_use]
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// The configured border-strip width, degrees.
    #[must_use]
    pub fn border_strip_deg(&self) -> f64 {
        self.border_strip_deg
    }

    /// How queries have been evaluated so far, summed across bands.
    #[must_use]
    pub fn incremental_stats(&self) -> maritime_rtec::IncrementalStats {
        let mut sum = maritime_rtec::IncrementalStats::default();
        for r in &self.bands {
            let s = r.incremental_stats();
            sum.incremental += s.incremental;
            sum.full += s.full;
            sum.triggers_evaluated += s.triggers_evaluated;
            sum.triggers_reused += s.triggers_reused;
        }
        sum
    }

    /// Turns per-CE provenance capture on or off in every band. Alerts and
    /// durative CEs are area-owned and areas are band-disjoint, so each
    /// chain is assembled by exactly one band even where events are
    /// replicated into the border strip.
    pub fn set_provenance(&mut self, on: bool) {
        for r in &mut self.bands {
            r.set_provenance(on);
        }
    }

    /// Takes the chains assembled by the most recent traced query, merged
    /// across bands and sorted by id.
    pub fn take_chains(&mut self) -> Vec<crate::provenance::CeChain> {
        let mut chains: Vec<_> = self
            .bands
            .iter_mut()
            .flat_map(MaritimeRecognizer::take_chains)
            .collect();
        chains.sort_by(|a, b| a.id.cmp(&b.id));
        chains
    }

    /// All bands an event at `lon` must reach because some band's areas
    /// have rule reach there.
    fn reach_mask(&self, lon: f64) -> u64 {
        let mut mask = 0u64;
        for (b, intervals) in self.reach.iter().enumerate() {
            if intervals.iter().any(|(lo, hi)| *lo <= lon && lon <= *hi) {
                mask |= 1 << b;
            }
        }
        mask
    }

    fn all_mask(&self) -> u64 {
        if self.bands.len() == MAX_BANDS {
            u64::MAX
        } else {
            (1u64 << self.bands.len()) - 1
        }
    }

    /// Streams events: each is admitted once, logged against its vessel,
    /// and delivered to its home band, every band whose reach covers it,
    /// and — for closing events — all bands.
    pub fn add_events(&mut self, events: impl IntoIterator<Item = (Timestamp, InputEvent)>) {
        let n = self.bands.len();
        let all = self.all_mask();
        let has_ext = self.ext.is_some();
        let mut core_batches: Vec<Vec<(Timestamp, InputEvent)>> = vec![Vec::new(); n];
        let mut ext_batches: Vec<Vec<(Timestamp, InputEvent)>> = vec![Vec::new(); n];
        for (t, e) in events {
            self.admitted.insert(t, ());
            let lon = e.position.lon;
            let reach = self.reach_mask(lon);
            let home_default = self.partitioner.index_of(lon);
            let st = self.vessels.entry(e.mmsi).or_insert_with(|| VesselState {
                home: home_default,
                last_lon: lon,
                last_t: t,
                log: Vec::new(),
            });
            let core_mask = if is_closing(e.kind) {
                all
            } else {
                (1u64 << st.home) | reach
            };
            let ext_mask = if has_ext { 1u64 << st.home } else { 0 };
            if t >= st.last_t {
                st.last_t = t;
                st.last_lon = lon;
            }
            st.log.push(LogEntry {
                t,
                event: e.clone(),
                core_mask,
                ext_mask,
            });
            if has_ext && matches!(e.kind, InputKind::StopStart | InputKind::SlowMotionStart) {
                self.ext
                    .as_mut()
                    .expect("ext enabled")
                    .anchors
                    .entry(e.mmsi)
                    .or_default()
                    .push((t, e.position));
            }
            for (b, batch) in core_batches.iter_mut().enumerate() {
                if core_mask & (1 << b) != 0 {
                    batch.push((t, e.clone()));
                }
            }
            if ext_mask != 0 {
                ext_batches[ext_mask.trailing_zeros() as usize].push((t, e.clone()));
            }
        }
        for (b, batch) in core_batches.into_iter().enumerate() {
            if !batch.is_empty() {
                self.deliver_core(b, batch);
            }
        }
        if let Some(ext) = self.ext.as_mut() {
            for (b, batch) in ext_batches.into_iter().enumerate() {
                if !batch.is_empty() {
                    ext.engines[b].add_events(batch);
                }
            }
        }
    }

    /// Delivers a batch to one band's core engine, attaching band-local
    /// spatial facts in precomputed mode (the same facts band-local
    /// recognition would derive on demand).
    fn deliver_core(&mut self, band: usize, mut batch: Vec<(Timestamp, InputEvent)>) {
        let recognizer = &mut self.bands[band];
        if recognizer.knowledge().spatial_mode == SpatialMode::Precomputed {
            crate::spatial::annotate_with_spatial_facts(&mut batch, recognizer.knowledge());
        }
        recognizer.add_events(batch);
    }

    /// Migrates every vessel whose newest position has left its home
    /// band: the vessel's window-retained events are shipped through the
    /// checkpoint codec and replayed into the destination band's engines
    /// (entries already delivered there are skipped). Runs at the start
    /// of every query, i.e. at window boundaries; idempotent.
    fn migrate_due(&mut self, q: Timestamp) {
        let horizon = q - self.spec.range;
        let mut mmsis: Vec<Mmsi> = self.vessels.keys().copied().collect();
        mmsis.sort();
        for m in mmsis {
            let has_ext = self.ext.is_some();
            let st = self.vessels.get_mut(&m).expect("vessel state");
            // Events at or before q − ω are outside every engine's window.
            st.log.retain(|e| e.t > horizon);
            let new_home = self.partitioner.index_of(st.last_lon);
            if new_home == st.home {
                continue;
            }
            let bit = 1u64 << new_home;
            let core_payload: Vec<(Timestamp, InputEvent)> = st
                .log
                .iter()
                .filter(|e| e.core_mask & bit == 0)
                .map(|e| (e.t, e.event.clone()))
                .collect();
            let ext_payload: Vec<(Timestamp, InputEvent)> = if has_ext {
                st.log
                    .iter()
                    .filter(|e| e.ext_mask & bit == 0)
                    .map(|e| (e.t, e.event.clone()))
                    .collect()
            } else {
                Vec::new()
            };
            for e in &mut st.log {
                e.core_mask |= bit;
                if has_ext {
                    e.ext_mask |= bit;
                }
            }
            st.home = new_home;
            self.migrations += 1;
            OBS_MIGRATIONS.inc();
            // The handoff travels through the checkpoint codec: encoded
            // at the source band, decoded at the destination — the exact
            // bytes a cross-process handoff would put on the wire.
            let handoff = encode_handoff(&core_payload);
            OBS_CKPT_BYTES.set(handoff.len() as i64);
            let delivered = decode_handoff(&handoff).expect("self-encoded handoff decodes");
            if !delivered.is_empty() {
                self.deliver_core(new_home, delivered);
            }
            if !ext_payload.is_empty() {
                if let Some(ext) = self.ext.as_mut() {
                    ext.engines[new_home].add_events(ext_payload);
                }
            }
        }
    }

    /// Runs one query on every band concurrently and merges the results
    /// exactly as the serial recognizer would report them. Vessels due
    /// for migration are handed off first (window boundary).
    pub fn recognize_and_summarize(&mut self, q: Timestamp) -> RecognitionSummary {
        self.migrate_due(q);
        self.admitted.slide_to_discarding(q);
        let summaries: Vec<RecognitionSummary> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = self
                .bands
                .iter_mut()
                .map(|r| scope.spawn(move |_| r.recognize_and_summarize(q)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("band thread panicked"))
                .collect()
        })
        .expect("crossbeam scope");
        let mut merged = merge_band_summaries(q, summaries);
        // Replication feeds one event to several bands; the distinct
        // working memory is the coordinator's own admission window.
        merged.working_memory = self
            .admitted
            .contiguous()
            .partition_point(|(t, ())| *t <= q);
        merged
    }

    /// Recognizes the extension CEs (loitering + rendezvous) at `q`.
    /// Each vessel's loitering intervals are read from its *current*
    /// home band (which holds its complete window stream); the pairwise
    /// rendezvous join runs globally, so pairs meeting exactly on a band
    /// boundary are found.
    ///
    /// # Panics
    /// If extensions were not enabled
    /// ([`CoordinatedRecognizer::with_extensions`]).
    pub fn recognize_extensions(&mut self, q: Timestamp) -> ExtensionReport {
        self.migrate_due(q);
        let ext = self
            .ext
            .as_mut()
            .expect("extensions not enabled; call with_extensions()");
        let recognitions: Vec<_> = ext
            .engines
            .iter_mut()
            .map(|e| e.recognize_at(q))
            .collect();
        let mut mmsis: Vec<Mmsi> = self.vessels.keys().copied().collect();
        mmsis.sort();
        let mut loitering: Vec<(Mmsi, IntervalList)> = Vec::new();
        for m in mmsis {
            let home = self.vessels[&m].home;
            if let Some(il) = recognitions[home].fluents.get(&Loitering(m)) {
                if !il.is_empty() {
                    loitering.push((m, il.clone()));
                }
            }
        }

        let mut rendezvous = Vec::new();
        for i in 0..loitering.len() {
            for j in (i + 1)..loitering.len() {
                let (ma, ila) = &loitering[i];
                let (mb, ilb) = &loitering[j];
                let overlap = ila.intersect(ilb);
                for iv in overlap.intervals() {
                    let long_enough = match iv.until {
                        Some(u) => u.as_secs() - iv.since.as_secs() >= ext.min_overlap_secs,
                        None => q.as_secs() - iv.since.as_secs() >= ext.min_overlap_secs,
                    };
                    if !long_enough {
                        continue;
                    }
                    let (Some(pa), Some(pb)) = (
                        anchor_before(&ext.anchors, *ma, iv.since),
                        anchor_before(&ext.anchors, *mb, iv.since),
                    ) else {
                        continue;
                    };
                    let d = haversine_distance_m(pa, pb);
                    if d <= ext.rendezvous_radius_m {
                        rendezvous.push(Rendezvous {
                            vessels: (*ma, *mb),
                            interval: *iv,
                            location: pa.midpoint(pb),
                            separation_m: d,
                        });
                    }
                }
            }
        }

        ExtensionReport {
            query_time: q,
            loitering,
            rendezvous,
        }
    }

    /// Serializes the whole coordinator — band engines, admission window,
    /// vessel logs, extension state — into one framed checkpoint.
    #[must_use]
    pub fn checkpoint(&self) -> Vec<u8> {
        let _span = maritime_obs::span!(names::CER_CHECKPOINT_WRITE_NS);
        let mut w = Writer::new();
        let boundaries = self.partitioner.boundaries();
        w.put_len(boundaries.len());
        for b in boundaries {
            w.put_f64(*b);
        }
        self.spec.encode(&mut w);
        self.strategy.encode(&mut w);
        w.put_f64(self.close_threshold_m);
        w.put_u8(mode_tag(self.mode));
        w.put_f64(self.border_strip_deg);
        w.put_u64(self.migrations);
        w.put_len(self.bands.len());
        for band in &self.bands {
            band.checkpoint_into(&mut w);
        }
        w.put_len(self.admitted.len());
        for (t, ()) in self.admitted.iter() {
            t.encode(&mut w);
        }
        let mut mmsis: Vec<Mmsi> = self.vessels.keys().copied().collect();
        mmsis.sort();
        w.put_len(mmsis.len());
        for m in mmsis {
            let st = &self.vessels[&m];
            w.put_u32(m.0);
            w.put_u32(st.home as u32);
            w.put_f64(st.last_lon);
            st.last_t.encode(&mut w);
            w.put_len(st.log.len());
            for e in &st.log {
                e.t.encode(&mut w);
                e.event.encode(&mut w);
                w.put_u64(e.core_mask);
                w.put_u64(e.ext_mask);
            }
        }
        match &self.ext {
            None => w.put_u8(0),
            Some(ext) => {
                w.put_u8(1);
                for engine in &ext.engines {
                    engine.checkpoint_into(&mut w);
                }
                let mut anchor_mmsis: Vec<Mmsi> = ext.anchors.keys().copied().collect();
                anchor_mmsis.sort();
                w.put_len(anchor_mmsis.len());
                for m in anchor_mmsis {
                    w.put_u32(m.0);
                    let pts = &ext.anchors[&m];
                    w.put_len(pts.len());
                    for (t, p) in pts {
                        t.encode(&mut w);
                        w.put_f64(p.lon);
                        w.put_f64(p.lat);
                    }
                }
                w.put_f64(ext.rendezvous_radius_m);
                w.put_i64(ext.min_overlap_secs);
            }
        }
        let bytes = w.into_frame();
        OBS_CKPT_BYTES.set(bytes.len() as i64);
        bytes
    }

    /// Restores a coordinator from a [`CoordinatedRecognizer::checkpoint`].
    /// `vessels` and `areas` must be the same static configuration the
    /// checkpointed coordinator was built with — the checkpoint carries
    /// the dynamic state, not the knowledge base.
    pub fn restore(
        vessels: &[VesselInfo],
        areas: &[Area],
        bytes: &[u8],
    ) -> Result<Self, CkptError> {
        let _span = maritime_obs::span!(names::CER_CHECKPOINT_RESTORE_NS);
        let payload = unframe(bytes)?;
        let mut r = Reader::new(payload);

        let nb = r.take_len()?;
        let mut boundaries = Vec::with_capacity(nb);
        for _ in 0..nb {
            boundaries.push(r.take_f64()?);
        }
        if !(boundaries.iter().all(|b| b.is_finite())
            && boundaries.windows(2).all(|w| w[0] < w[1]))
        {
            return Err(CkptError::Corrupt("band boundaries not ascending"));
        }
        let spec = WindowSpec::decode(&mut r)?;
        let strategy = EvalStrategy::decode(&mut r)?;
        let close_threshold_m = r.take_f64()?;
        let mode = mode_from_tag(r.take_u8()?)?;
        let border_strip_deg = r.take_f64()?;
        if !(border_strip_deg.is_finite() && border_strip_deg >= 0.0) {
            return Err(CkptError::Corrupt("bad border strip"));
        }
        let migrations = r.take_u64()?;

        let partitioner = GeoPartitioner::from_boundaries(boundaries);
        let n = partitioner.partitions();
        let routed = partitioner.route_areas(areas);
        if r.take_len()? != n {
            return Err(CkptError::Corrupt("band count mismatch"));
        }
        let mut bands = Vec::with_capacity(n);
        for band_areas in &routed {
            let kb = Knowledge::new(
                vessels.iter().copied(),
                band_areas.clone(),
                close_threshold_m,
                mode,
            );
            bands.push(MaritimeRecognizer::restore_from(kb, &mut r)?);
        }

        let na = r.take_len()?;
        let mut admitted = SlidingWindow::new(spec);
        for _ in 0..na {
            admitted.insert(Timestamp::decode(&mut r)?, ());
        }

        let nv = r.take_len()?;
        let mut vessel_states = HashMap::with_capacity(nv);
        for _ in 0..nv {
            let m = Mmsi(r.take_u32()?);
            let home = r.take_u32()? as usize;
            if home >= n {
                return Err(CkptError::Corrupt("vessel home out of range"));
            }
            let last_lon = r.take_f64()?;
            let last_t = Timestamp::decode(&mut r)?;
            let nl = r.take_len()?;
            let mut log = Vec::with_capacity(nl);
            for _ in 0..nl {
                let t = Timestamp::decode(&mut r)?;
                let event = InputEvent::decode(&mut r)?;
                let core_mask = r.take_u64()?;
                let ext_mask = r.take_u64()?;
                log.push(LogEntry {
                    t,
                    event,
                    core_mask,
                    ext_mask,
                });
            }
            if vessel_states
                .insert(
                    m,
                    VesselState {
                        home,
                        last_lon,
                        last_t,
                        log,
                    },
                )
                .is_some()
            {
                return Err(CkptError::Corrupt("duplicate vessel state"));
            }
        }

        let ext = match r.take_u8()? {
            0 => None,
            1 => {
                let mut engines = Vec::with_capacity(n);
                for _ in 0..n {
                    let kb = Knowledge::new(
                        vessels.iter().copied(),
                        areas.to_vec(),
                        close_threshold_m,
                        SpatialMode::OnDemand,
                    );
                    engines.push(Engine::restore_from(kb, extension_description(), &mut r)?);
                }
                let na = r.take_len()?;
                let mut anchors = HashMap::with_capacity(na);
                for _ in 0..na {
                    let m = Mmsi(r.take_u32()?);
                    let np = r.take_len()?;
                    let mut pts = Vec::with_capacity(np);
                    for _ in 0..np {
                        let t = Timestamp::decode(&mut r)?;
                        let lon = r.take_f64()?;
                        let lat = r.take_f64()?;
                        pts.push((t, GeoPoint { lon, lat }));
                    }
                    if anchors.insert(m, pts).is_some() {
                        return Err(CkptError::Corrupt("duplicate anchor vessel"));
                    }
                }
                let rendezvous_radius_m = r.take_f64()?;
                let min_overlap_secs = r.take_i64()?;
                Some(ExtCoordinator {
                    engines,
                    anchors,
                    rendezvous_radius_m,
                    min_overlap_secs,
                })
            }
            _ => return Err(CkptError::Corrupt("bad extensions tag")),
        };
        r.finish()?;

        let reach = band_reach(&routed, close_threshold_m, border_strip_deg);
        Ok(Self {
            partitioner,
            bands,
            reach,
            vessels: vessel_states,
            admitted,
            spec,
            strategy,
            close_threshold_m,
            mode,
            border_strip_deg,
            migrations,
            vessel_infos: vessels.to_vec(),
            areas: areas.to_vec(),
            ext,
        })
    }

    /// Crash-and-restore one band in place: the band's engine (and its
    /// extension engine, when extensions are enabled) is serialized
    /// through the checkpoint codec, dropped, and rebuilt from the
    /// bytes. Recognition output must be unaffected — the chaos
    /// harness's `KillPartition` fault uses this to prove it.
    ///
    /// `band` is taken modulo the band count so schedules generated
    /// against one partitioning remain valid against another.
    ///
    /// # Errors
    /// Propagates [`CkptError`] if the serialized engine fails to decode
    /// — which would indicate a checkpoint-format bug, not bad input.
    pub fn kill_band(&mut self, band: u32) -> Result<(), CkptError> {
        let band = band as usize % self.bands.len();
        let mut w = Writer::new();
        self.bands[band].checkpoint_into(&mut w);
        if let Some(ext) = &self.ext {
            ext.engines[band].checkpoint_into(&mut w);
        }
        let payload = w.into_payload();
        let mut r = Reader::new(&payload);

        let band_areas = self.partitioner.route_areas(&self.areas).swap_remove(band);
        let kb = Knowledge::new(
            self.vessel_infos.iter().copied(),
            band_areas,
            self.close_threshold_m,
            self.mode,
        );
        self.bands[band] = MaritimeRecognizer::restore_from(kb, &mut r)?;
        if let Some(ext) = &mut self.ext {
            let kb = Knowledge::new(
                self.vessel_infos.iter().copied(),
                self.areas.clone(),
                self.close_threshold_m,
                SpatialMode::OnDemand,
            );
            ext.engines[band] = Engine::restore_from(kb, extension_description(), &mut r)?;
        }
        r.finish()?;
        Ok(())
    }
}

/// Latest loiter anchor of a vessel at or before `t` (mirrors
/// `ExtendedRecognizer::anchor_before`).
fn anchor_before(
    anchors: &HashMap<Mmsi, Vec<(Timestamp, GeoPoint)>>,
    mmsi: Mmsi,
    t: Timestamp,
) -> Option<GeoPoint> {
    anchors
        .get(&mmsi)?
        .iter()
        .rev()
        .find(|(at, _)| *at <= t)
        .map(|(_, p)| *p)
}

/// Per band: the merged longitude intervals within rule reach of its
/// areas — each area's bounding box dilated by the close threshold
/// (converted to degrees at the area's worst-case latitude) plus the
/// border strip.
fn band_reach(
    routed_areas: &[Vec<Area>],
    close_threshold_m: f64,
    strip_deg: f64,
) -> Vec<Vec<(f64, f64)>> {
    routed_areas
        .iter()
        .map(|areas| {
            let mut intervals: Vec<(f64, f64)> = areas
                .iter()
                .map(|a| {
                    let bb = a.polygon.bbox();
                    // Meters-per-degree shrinks with latitude; take the
                    // bbox's worst case, clamped away from the poles.
                    let lat = bb.min_lat.abs().max(bb.max_lat.abs()).min(89.0);
                    let margin =
                        close_threshold_m / (111_320.0 * lat.to_radians().cos()) + strip_deg;
                    (bb.min_lon - margin, bb.max_lon + margin)
                })
                .collect();
            intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite longitudes"));
            let mut merged: Vec<(f64, f64)> = Vec::new();
            for (lo, hi) in intervals {
                match merged.last_mut() {
                    Some(last) if lo <= last.1 => last.1 = last.1.max(hi),
                    _ => merged.push((lo, hi)),
                }
            }
            merged
        })
        .collect()
}

/// Encodes a migration handoff payload (the vessel's window-retained
/// events) as a framed checkpoint.
fn encode_handoff(events: &[(Timestamp, InputEvent)]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_len(events.len());
    for (t, e) in events {
        t.encode(&mut w);
        e.encode(&mut w);
    }
    w.into_frame()
}

/// Decodes a migration handoff payload.
fn decode_handoff(bytes: &[u8]) -> Result<Vec<(Timestamp, InputEvent)>, CkptError> {
    let payload = unframe(bytes)?;
    let mut r = Reader::new(payload);
    let n = r.take_len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let t = Timestamp::decode(&mut r)?;
        let e = InputEvent::decode(&mut r)?;
        out.push((t, e));
    }
    r.finish()?;
    Ok(out)
}

fn mode_tag(mode: SpatialMode) -> u8 {
    match mode {
        SpatialMode::OnDemand => 0,
        SpatialMode::Precomputed => 1,
        SpatialMode::OnDemandIndexed => 2,
    }
}

fn mode_from_tag(tag: u8) -> Result<SpatialMode, CkptError> {
    Ok(match tag {
        0 => SpatialMode::OnDemand,
        1 => SpatialMode::Precomputed,
        2 => SpatialMode::OnDemandIndexed,
        _ => return Err(CkptError::Corrupt("unknown SpatialMode tag")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use maritime_geo::{AreaId, AreaKind, Polygon};
    use maritime_rtec::Duration;

    fn t(v: i64) -> Timestamp {
        Timestamp(v)
    }

    fn spec() -> WindowSpec {
        WindowSpec::new(Duration::hours(6), Duration::hours(1)).unwrap()
    }

    fn vessels(n: u32) -> Vec<VesselInfo> {
        (0..n)
            .map(|i| VesselInfo {
                mmsi: Mmsi(100 + i),
                draft_m: if i % 2 == 0 { 8.0 } else { 3.0 },
                is_fishing: i % 3 == 0,
            })
            .collect()
    }

    fn areas() -> Vec<Area> {
        vec![
            Area::new(
                AreaId(0),
                "west-park",
                AreaKind::Protected,
                Polygon::rectangle(GeoPoint::new(21.0, 37.0), GeoPoint::new(21.2, 37.2)),
            ),
            // Straddles the 24.0 boundary of a 2-band [20, 28] split; the
            // centroid (23.99) homes it to the west band.
            Area::new(
                AreaId(1),
                "border-park",
                AreaKind::Protected,
                Polygon::rectangle(GeoPoint::new(23.88, 38.0), GeoPoint::new(24.1, 38.2)),
            ),
            Area::new(
                AreaId(2),
                "east-no-fish",
                AreaKind::ForbiddenFishing,
                Polygon::rectangle(GeoPoint::new(26.0, 38.0), GeoPoint::new(26.2, 38.2)),
            ),
        ]
    }

    fn ev(mmsi: u32, kind: InputKind, lon: f64, lat: f64) -> InputEvent {
        InputEvent {
            mmsi: Mmsi(mmsi),
            kind,
            position: GeoPoint::new(lon, lat),
            close_areas: None,
        }
    }

    fn coordinator(bands: usize) -> CoordinatedRecognizer {
        CoordinatedRecognizer::new(
            GeoPartitioner::uniform(bands, 20.0, 28.0),
            &vessels(10),
            &areas(),
            2_000.0,
            SpatialMode::OnDemand,
            spec(),
        )
    }

    fn serial() -> MaritimeRecognizer {
        MaritimeRecognizer::new(
            Knowledge::new(vessels(10).into_iter(), areas(), 2_000.0, SpatialMode::OnDemand),
            spec(),
        )
    }

    /// A voyage that crosses the 24.0 boundary mid-stop sequence and
    /// raises an alert near the border-straddling area from the far side.
    fn crossing_events() -> Vec<(Timestamp, InputEvent)> {
        vec![
            // Fishing vessel 100 slows near the east no-fish zone.
            (t(100), ev(100, InputKind::SlowMotionStart, 26.1, 38.1)),
            // Vessel 101 stops just EAST of the boundary, close to the
            // west-homed border park: reach replication must deliver it.
            (t(200), ev(101, InputKind::StopStart, 24.05, 38.1)),
            // Vessels 102..104 stop inside the border park (west side).
            (t(300), ev(102, InputKind::StopStart, 23.95, 38.1)),
            (t(400), ev(103, InputKind::StopStart, 23.95, 38.1)),
            (t(500), ev(104, InputKind::StopStart, 23.95, 38.1)),
            // Vessel 100 crosses west mid-voyage, then its slow-motion
            // run ends on the west side (closing broadcast).
            (t(4_000), ev(100, InputKind::Turn, 23.0, 38.1)),
            (t(4_500), ev(100, InputKind::SlowMotionEnd, 22.9, 38.1)),
            // Gap near the border park from the east side of the line.
            (t(5_000), ev(105, InputKind::GapStart, 24.02, 38.1)),
            // Vessel 101 departs.
            (t(6_000), ev(101, InputKind::StopEnd, 24.05, 38.1)),
        ]
    }

    fn ce_set(s: &RecognitionSummary) -> String {
        s.canonical_json()
    }

    #[test]
    fn border_crossing_voyages_match_serial() {
        let events = crossing_events();
        let queries: Vec<Timestamp> = (1..=8).map(|i| t(i * 3_600)).collect();
        for bands in [1, 2, 4] {
            let mut coord = coordinator(bands);
            let mut base = serial();
            let mut fed = 0;
            let mut expected_migrations_seen = false;
            for q in &queries {
                let batch: Vec<_> = events
                    .iter()
                    .filter(|(et, _)| *et <= *q && {
                        let _ = fed;
                        true
                    })
                    .cloned()
                    .collect();
                // Feed incrementally: only events not yet fed.
                let new: Vec<_> = batch.into_iter().skip(fed).collect();
                fed += new.len();
                coord.add_events(new.iter().cloned());
                base.add_events(new.iter().cloned());
                let s = coord.recognize_and_summarize(*q);
                let b = base.recognize_and_summarize(*q);
                assert_eq!(ce_set(&s), ce_set(&b), "bands={bands} q={q:?}");
                expected_migrations_seen |= coord.migrations() > 0;
            }
            if bands > 1 {
                assert!(expected_migrations_seen, "vessel 100 must migrate");
            }
        }
    }

    #[test]
    fn checkpoint_restore_resumes_byte_identically() {
        let events = crossing_events();
        let queries: Vec<Timestamp> = (1..=8).map(|i| t(i * 3_600)).collect();
        for strategy in [EvalStrategy::FromScratch, EvalStrategy::Incremental] {
            let build = || {
                CoordinatedRecognizer::with_strategy(
                    GeoPartitioner::uniform(2, 20.0, 28.0),
                    &vessels(10),
                    &areas(),
                    2_000.0,
                    SpatialMode::OnDemand,
                    spec(),
                    strategy,
                )
                .with_extensions()
            };
            let mut live = build();
            let mut killed = build();
            let mut fed_live = 0;
            let mut fed_killed = 0;
            for (qi, q) in queries.iter().enumerate() {
                let feed = |fed: &mut usize| {
                    let new: Vec<_> = events
                        .iter()
                        .filter(|(et, _)| *et <= *q)
                        .skip(*fed)
                        .cloned()
                        .collect();
                    *fed += new.len();
                    new
                };
                live.add_events(feed(&mut fed_live));
                killed.add_events(feed(&mut fed_killed));
                let a = live.recognize_and_summarize(*q);
                let b = killed.recognize_and_summarize(*q);
                assert_eq!(a.canonical_json(), b.canonical_json(), "q={q:?}");
                let ra = live.recognize_extensions(*q);
                let rb = killed.recognize_extensions(*q);
                assert_eq!(ra.loitering, rb.loitering);
                assert_eq!(ra.rendezvous.len(), rb.rendezvous.len());
                if qi == 3 {
                    // Kill & restore mid-stream.
                    let bytes = killed.checkpoint();
                    drop(killed);
                    killed = CoordinatedRecognizer::restore(&vessels(10), &areas(), &bytes)
                        .expect("restore");
                    // A restored coordinator checkpoints to identical bytes.
                    assert_eq!(killed.checkpoint(), bytes);
                }
            }
        }
    }

    #[test]
    fn kill_band_is_invisible_to_recognition() {
        let events = crossing_events();
        let queries: Vec<Timestamp> = (1..=8).map(|i| t(i * 3_600)).collect();
        for strategy in [EvalStrategy::FromScratch, EvalStrategy::Incremental] {
            let build = || {
                CoordinatedRecognizer::with_strategy(
                    GeoPartitioner::uniform(2, 20.0, 28.0),
                    &vessels(10),
                    &areas(),
                    2_000.0,
                    SpatialMode::OnDemand,
                    spec(),
                    strategy,
                )
                .with_extensions()
            };
            let mut live = build();
            let mut killed = build();
            let mut fed_live = 0;
            let mut fed_killed = 0;
            for (qi, q) in queries.iter().enumerate() {
                let feed = |fed: &mut usize| {
                    let new: Vec<_> = events
                        .iter()
                        .filter(|(et, _)| *et <= *q)
                        .skip(*fed)
                        .cloned()
                        .collect();
                    *fed += new.len();
                    new
                };
                live.add_events(feed(&mut fed_live));
                killed.add_events(feed(&mut fed_killed));
                // Crash a different band (modulo wraps band 2 -> 0)
                // between every feed and query.
                killed.kill_band(qi as u32).expect("kill_band");
                let a = live.recognize_and_summarize(*q);
                let b = killed.recognize_and_summarize(*q);
                assert_eq!(a.canonical_json(), b.canonical_json(), "q={q:?}");
                let ra = live.recognize_extensions(*q);
                let rb = killed.recognize_extensions(*q);
                assert_eq!(ra.loitering, rb.loitering);
                assert_eq!(ra.rendezvous.len(), rb.rendezvous.len());
            }
            // After a full sweep of kills the whole-fleet checkpoints
            // still agree byte-for-byte.
            assert_eq!(live.checkpoint(), killed.checkpoint());
        }
    }

    #[test]
    fn corrupt_coordinator_checkpoints_are_rejected() {
        let mut coord = coordinator(2);
        coord.add_events(crossing_events());
        coord.recognize_and_summarize(t(3_600));
        let bytes = coord.checkpoint();
        for n in 0..bytes.len().min(64) {
            assert!(
                CoordinatedRecognizer::restore(&vessels(10), &areas(), &bytes[..n]).is_err(),
                "truncated prefix {n} accepted"
            );
        }
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xA5;
        assert!(CoordinatedRecognizer::restore(&vessels(10), &areas(), &bad).is_err());
    }

    #[test]
    fn rendezvous_on_a_band_boundary_is_found() {
        let mut coord = coordinator(2).with_extensions();
        // Two vessels meet exactly astride the 24.0 boundary, ~440 m
        // apart, both offshore (no ports configured).
        coord.add_events(vec![
            (t(100), ev(106, InputKind::StopStart, 23.9975, 38.5)),
            (t(200), ev(107, InputKind::StopStart, 24.0025, 38.5)),
            (t(4_000), ev(106, InputKind::StopEnd, 23.9975, 38.5)),
            (t(4_200), ev(107, InputKind::StopEnd, 24.0025, 38.5)),
        ]);
        let report = coord.recognize_extensions(t(7_200));
        assert_eq!(report.loitering.len(), 2);
        assert_eq!(report.rendezvous.len(), 1, "{:?}", report.rendezvous);
        assert_eq!(report.rendezvous[0].vessels, (Mmsi(106), Mmsi(107)));
    }

    #[test]
    fn reach_intervals_cover_dilated_bboxes() {
        let routed = GeoPartitioner::uniform(2, 20.0, 28.0).route_areas(&areas());
        let reach = band_reach(&routed, 2_000.0, 0.05);
        // The border park (west band) reaches east of 24.1.
        assert!(reach[0].iter().any(|(lo, hi)| *lo <= 24.1 && 24.1 <= *hi));
        // The west band's reach does not cover the east no-fish zone's
        // far side.
        assert!(!reach[0].iter().any(|(lo, hi)| *lo <= 27.0 && 27.0 <= *hi));
    }
}
