//! Checkpoint codecs for the maritime vocabulary.
//!
//! [`maritime_rtec::ckpt`] defines the zero-dependency binary format and
//! the [`Codec`] impls for its own engine state; this module supplies the
//! impls for the cer-owned types an engine checkpoint embeds — the input
//! events in the window and the interned fluent/alert keys. Foreign
//! newtype fields ([`Mmsi`], [`AreaId`], [`GeoPoint`]) are encoded field
//! by field, so no impl is needed (or possible, orphan rules) upstream.
//!
//! Every enum is encoded as a `u8` tag in declaration order; decoding an
//! unknown tag is a [`CkptError::Corrupt`], never a panic. Tags are part
//! of the on-disk format: appending variants is fine, reordering or
//! removing them needs a `maritime_rtec::ckpt::VERSION` bump.

use maritime_ais::Mmsi;
use maritime_geo::{AreaId, GeoPoint};
use maritime_rtec::{CkptError, Codec, Reader, Writer};

use crate::extensions::Loitering;
use crate::fluents::{Alert, AlertKind, FluentKey};
use crate::input::{InputEvent, InputKind};

fn put_mmsi(w: &mut Writer, m: Mmsi) {
    w.put_u32(m.0);
}

fn take_mmsi(r: &mut Reader<'_>) -> Result<Mmsi, CkptError> {
    Ok(Mmsi(r.take_u32()?))
}

fn put_area(w: &mut Writer, a: AreaId) {
    w.put_u32(a.0);
}

fn take_area(r: &mut Reader<'_>) -> Result<AreaId, CkptError> {
    Ok(AreaId(r.take_u32()?))
}

fn put_point(w: &mut Writer, p: GeoPoint) {
    w.put_f64(p.lon);
    w.put_f64(p.lat);
}

fn take_point(r: &mut Reader<'_>) -> Result<GeoPoint, CkptError> {
    let lon = r.take_f64()?;
    let lat = r.take_f64()?;
    Ok(GeoPoint { lon, lat })
}

impl Codec for InputKind {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            Self::GapStart => 0,
            Self::GapEnd => 1,
            Self::StopStart => 2,
            Self::StopEnd => 3,
            Self::SlowMotionStart => 4,
            Self::SlowMotionEnd => 5,
            Self::SpeedChange => 6,
            Self::Turn => 7,
        });
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(match r.take_u8()? {
            0 => Self::GapStart,
            1 => Self::GapEnd,
            2 => Self::StopStart,
            3 => Self::StopEnd,
            4 => Self::SlowMotionStart,
            5 => Self::SlowMotionEnd,
            6 => Self::SpeedChange,
            7 => Self::Turn,
            _ => return Err(CkptError::Corrupt("unknown InputKind tag")),
        })
    }
}

impl Codec for InputEvent {
    fn encode(&self, w: &mut Writer) {
        put_mmsi(w, self.mmsi);
        self.kind.encode(w);
        put_point(w, self.position);
        match &self.close_areas {
            None => w.put_u8(0),
            Some(ids) => {
                w.put_u8(1);
                w.put_len(ids.len());
                for id in ids {
                    put_area(w, *id);
                }
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        let mmsi = take_mmsi(r)?;
        let kind = InputKind::decode(r)?;
        let position = take_point(r)?;
        let close_areas = match r.take_u8()? {
            0 => None,
            1 => {
                let n = r.take_len()?;
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(take_area(r)?);
                }
                Some(ids)
            }
            _ => return Err(CkptError::Corrupt("bad close_areas tag")),
        };
        Ok(Self { mmsi, kind, position, close_areas })
    }
}

impl Codec for FluentKey {
    fn encode(&self, w: &mut Writer) {
        match self {
            Self::Stopped(m) => {
                w.put_u8(0);
                put_mmsi(w, *m);
            }
            Self::SlowMotion(m) => {
                w.put_u8(1);
                put_mmsi(w, *m);
            }
            Self::StoppedNear(m, a) => {
                w.put_u8(2);
                put_mmsi(w, *m);
                put_area(w, *a);
            }
            Self::FishingNear(m, a) => {
                w.put_u8(3);
                put_mmsi(w, *m);
                put_area(w, *a);
            }
            Self::Suspicious(a) => {
                w.put_u8(4);
                put_area(w, *a);
            }
            Self::IllegalFishing(a) => {
                w.put_u8(5);
                put_area(w, *a);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(match r.take_u8()? {
            0 => Self::Stopped(take_mmsi(r)?),
            1 => Self::SlowMotion(take_mmsi(r)?),
            2 => Self::StoppedNear(take_mmsi(r)?, take_area(r)?),
            3 => Self::FishingNear(take_mmsi(r)?, take_area(r)?),
            4 => Self::Suspicious(take_area(r)?),
            5 => Self::IllegalFishing(take_area(r)?),
            _ => return Err(CkptError::Corrupt("unknown FluentKey tag")),
        })
    }
}

impl Codec for AlertKind {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            Self::IllegalShipping => 0,
            Self::DangerousShipping => 1,
        });
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(match r.take_u8()? {
            0 => Self::IllegalShipping,
            1 => Self::DangerousShipping,
            _ => return Err(CkptError::Corrupt("unknown AlertKind tag")),
        })
    }
}

impl Codec for Alert {
    fn encode(&self, w: &mut Writer) {
        self.kind.encode(w);
        put_mmsi(w, self.vessel);
        put_area(w, self.area);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        let kind = AlertKind::decode(r)?;
        let vessel = take_mmsi(r)?;
        let area = take_area(r)?;
        Ok(Self { kind, vessel, area })
    }
}

impl Codec for Loitering {
    fn encode(&self, w: &mut Writer) {
        put_mmsi(w, self.0);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(Self(take_mmsi(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(v: &T) {
        let mut w = Writer::new();
        v.encode(&mut w);
        let bytes = w.into_payload();
        let mut r = Reader::new(&bytes);
        let back = T::decode(&mut r).expect("decode");
        r.finish().expect("no trailing bytes");
        assert_eq!(&back, v);
    }

    #[test]
    fn vocabulary_roundtrips() {
        for kind in [
            InputKind::GapStart,
            InputKind::GapEnd,
            InputKind::StopStart,
            InputKind::StopEnd,
            InputKind::SlowMotionStart,
            InputKind::SlowMotionEnd,
            InputKind::SpeedChange,
            InputKind::Turn,
        ] {
            roundtrip(&kind);
        }
        roundtrip(&InputEvent {
            mmsi: Mmsi(9),
            kind: InputKind::StopStart,
            position: GeoPoint::new(24.5, 38.25),
            close_areas: None,
        });
        roundtrip(&InputEvent {
            mmsi: Mmsi(10),
            kind: InputKind::GapStart,
            position: GeoPoint::new(-1.25, 0.0),
            close_areas: Some(vec![AreaId(3), AreaId(7)]),
        });
        roundtrip(&FluentKey::Stopped(Mmsi(1)));
        roundtrip(&FluentKey::SlowMotion(Mmsi(2)));
        roundtrip(&FluentKey::StoppedNear(Mmsi(3), AreaId(4)));
        roundtrip(&FluentKey::FishingNear(Mmsi(5), AreaId(6)));
        roundtrip(&FluentKey::Suspicious(AreaId(7)));
        roundtrip(&FluentKey::IllegalFishing(AreaId(8)));
        roundtrip(&Alert {
            kind: AlertKind::DangerousShipping,
            vessel: Mmsi(11),
            area: AreaId(2),
        });
        roundtrip(&Loitering(Mmsi(12)));
    }

    #[test]
    fn bad_tags_are_rejected() {
        for bytes in [[8u8].as_slice(), &[9], &[255]] {
            assert!(InputKind::decode(&mut Reader::new(bytes)).is_err());
            assert!(FluentKey::decode(&mut Reader::new(bytes)).is_err());
        }
        assert!(AlertKind::decode(&mut Reader::new(&[2])).is_err());
        // A close_areas tag other than 0/1 is corrupt, not a bool-ish truthy.
        let mut w = Writer::new();
        w.put_u32(1);
        InputKind::Turn.encode(&mut w);
        w.put_f64(0.0);
        w.put_f64(0.0);
        w.put_u8(2);
        let bytes = w.into_payload();
        assert!(InputEvent::decode(&mut Reader::new(&bytes)).is_err());
    }
}
