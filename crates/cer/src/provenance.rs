//! CE provenance chains and proof trees.
//!
//! Turns the engine's raw rule-firing log
//! ([`ProvenanceLog`]) into per-CE
//! **derivation chains**: for each recognized complex event — a
//! `suspicious`/`illegalFishing` interval or an instantaneous alert — a
//! compact, serializable tree tracing the emission back through every
//! contributing fluent point to the input events (and, once the pipeline
//! attaches them, the source AIS sentence ids) that caused it. The
//! answer to an operator's "why did this alert fire?" is
//! [`render_proof_tree`], printed by `surveil explain <ce-id>`.
//!
//! Chain identifiers are stable across queries —
//! `suspicious/area0@400`, `illegalShipping/v227/area0@700` — so a CE
//! re-derived by successive overlapping windows keeps one identity, and
//! a dumped chain file can be indexed by id.

use maritime_rtec::{ProvFire, ProvTrigger, ProvenanceLog, Timestamp};
use serde::{Deserialize, Serialize};

use crate::fluents::{Alert, AlertKind, FluentKey};
use crate::input::InputEvent;
use crate::recognizer::RecognitionSummary;

/// Hard cap on proof-tree depth. Stratification bounds real chains at a
/// handful of levels; the cap only guards against a future description
/// accidentally introducing mutual recursion.
const MAX_DEPTH: usize = 16;

/// One node of a derivation tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainNode {
    /// Human-readable description of this step.
    pub label: String,
    /// Node category: `"initiation"`, `"termination"`, `"fire"` (a rule
    /// firing), or `"input"` (a leaf input event).
    pub kind: String,
    /// Timestamp of the step (seconds).
    pub at: i64,
    /// The rule that fired, rendered (`"initiatedAt(suspicious, rule 0)"`),
    /// for `"fire"` nodes.
    pub rule: Option<String>,
    /// The vessel an `"input"` leaf belongs to.
    pub mmsi: Option<u32>,
    /// Source AIS sentence ids of an `"input"` leaf. Empty until the
    /// pipeline's sentence index attaches them.
    pub sentences: Vec<u64>,
    /// Sub-derivations.
    pub children: Vec<ChainNode>,
}

/// The derivation chain of one recognized complex event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CeChain {
    /// Stable identifier, e.g. `suspicious/area0@400`.
    pub id: String,
    /// The CE, rendered (`"suspicious(area 0)"`).
    pub ce: String,
    /// When the CE interval started, or when the alert fired.
    pub since: i64,
    /// When the CE interval ended (`None`: ongoing, or an alert).
    pub until: Option<i64>,
    /// Query time the chain was assembled at.
    pub query_time: i64,
    /// Derivation roots: the initiation (and termination, if closed) of
    /// an interval CE, or the emission of an alert.
    pub derivation: Vec<ChainNode>,
}

fn render_key(key: &FluentKey) -> String {
    match key {
        FluentKey::Stopped(m) => format!("stopped(v{})", m.0),
        FluentKey::SlowMotion(m) => format!("slowMotion(v{})", m.0),
        FluentKey::StoppedNear(m, a) => format!("stoppedNear(v{}, area {})", m.0, a.0),
        FluentKey::FishingNear(m, a) => format!("fishingNear(v{}, area {})", m.0, a.0),
        FluentKey::Suspicious(a) => format!("suspicious(area {})", a.0),
        FluentKey::IllegalFishing(a) => format!("illegalFishing(area {})", a.0),
    }
}

fn render_input(e: &InputEvent) -> String {
    format!(
        "{:?} by v{} at ({:.3}, {:.3})",
        e.kind, e.mmsi.0, e.position.lon, e.position.lat
    )
}

fn alert_event_name(kind: AlertKind) -> &'static str {
    match kind {
        AlertKind::IllegalShipping => "illegalShipping",
        AlertKind::DangerousShipping => "dangerousShipping",
    }
}

/// The vessel a trigger concerns, for matching emissions to alerts.
fn trigger_mmsi(trigger: &ProvTrigger<InputEvent, FluentKey>) -> Option<u32> {
    match trigger {
        ProvTrigger::Input(e) => Some(e.mmsi.0),
        ProvTrigger::Start(k) | ProvTrigger::End(k) => match k {
            FluentKey::Stopped(m)
            | FluentKey::SlowMotion(m)
            | FluentKey::StoppedNear(m, _)
            | FluentKey::FishingNear(m, _) => Some(m.0),
            FluentKey::Suspicious(_) | FluentKey::IllegalFishing(_) => None,
        },
    }
}

/// A leaf node for one input event.
fn input_node(e: &InputEvent, t: Timestamp) -> ChainNode {
    ChainNode {
        label: render_input(e),
        kind: "input".to_string(),
        at: t.0,
        rule: None,
        mmsi: Some(e.mmsi.0),
        sentences: Vec::new(),
        children: Vec::new(),
    }
}

/// A node for one rule firing, recursing into the trigger's own
/// derivation.
fn fire_node(
    fire: &ProvFire<InputEvent, FluentKey>,
    t: Timestamp,
    prov: &ProvenanceLog<InputEvent, FluentKey>,
    depth: usize,
) -> ChainNode {
    let (label, children) = match &fire.trigger {
        ProvTrigger::Input(e) => (
            format!("on input {}", render_input(e)),
            vec![input_node(e, t)],
        ),
        ProvTrigger::Start(k) => (
            format!("on start({})", render_key(k)),
            vec![point_node(false, k, t, prov, depth + 1)],
        ),
        ProvTrigger::End(k) => (
            format!("on end({})", render_key(k)),
            vec![point_node(true, k, t, prov, depth + 1)],
        ),
    };
    ChainNode {
        label,
        kind: "fire".to_string(),
        at: t.0,
        rule: Some(fire.rule.to_string()),
        mmsi: None,
        sentences: Vec::new(),
        children,
    }
}

/// A node for one fluent point (initiation or termination), with one
/// child per rule firing that produced it.
fn point_node(
    is_termination: bool,
    key: &FluentKey,
    t: Timestamp,
    prov: &ProvenanceLog<InputEvent, FluentKey>,
    depth: usize,
) -> ChainNode {
    let (verb, kind) = if is_termination {
        ("terminated", "termination")
    } else {
        ("initiated", "initiation")
    };
    let fires = if is_termination {
        prov.terminated_by(key, t)
    } else {
        prov.initiated_by(key, t)
    };
    let children = if depth >= MAX_DEPTH {
        Vec::new()
    } else {
        fires.iter().map(|f| fire_node(f, t, prov, depth)).collect()
    };
    ChainNode {
        label: format!("{}({}) @ {}", verb, render_key(key), t.0),
        kind: kind.to_string(),
        at: t.0,
        rule: None,
        mmsi: None,
        sentences: Vec::new(),
        children,
    }
}

/// Assembles one chain per complex event in `summary` from the traced
/// query's provenance log. Chains come out sorted by id.
#[must_use]
pub fn build_chains(
    summary: &RecognitionSummary,
    prov: &ProvenanceLog<InputEvent, FluentKey>,
) -> Vec<CeChain> {
    let mut chains = Vec::new();
    type KeyCtor = fn(maritime_geo::AreaId) -> FluentKey;
    let interval_ces: [(&str, &Vec<_>, KeyCtor); 2] = [
        ("suspicious", &summary.suspicious, FluentKey::Suspicious),
        ("illegalFishing", &summary.illegal_fishing, FluentKey::IllegalFishing),
    ];
    for (name, per_area, to_key) in interval_ces {
        for (area, il) in per_area.iter() {
            let key = to_key(*area);
            for iv in il.intervals() {
                let mut derivation = vec![point_node(false, &key, iv.since, prov, 0)];
                if let Some(u) = iv.until {
                    derivation.push(point_node(true, &key, u, prov, 0));
                }
                chains.push(CeChain {
                    id: format!("{name}/area{}@{}", area.0, iv.since.0),
                    ce: format!("{name}(area {})", area.0),
                    since: iv.since.0,
                    until: iv.until.map(|u| u.0),
                    query_time: summary.query_time.0,
                    derivation,
                });
            }
        }
    }
    for (t, alert) in &summary.alerts {
        let name = alert_event_name(alert.kind);
        let derivation: Vec<ChainNode> = prov
            .emissions
            .iter()
            .filter(|em| {
                em.t == *t
                    && em.fire.rule.name == name
                    && trigger_mmsi(&em.fire.trigger)
                        .is_none_or(|m| m == alert.vessel.0)
            })
            .map(|em| fire_node(&em.fire, em.t, prov, 0))
            .collect();
        chains.push(CeChain {
            id: alert_id(*t, alert),
            ce: format!("{name}(v{}, area {})", alert.vessel.0, alert.area.0),
            since: t.0,
            until: None,
            query_time: summary.query_time.0,
            derivation,
        });
    }
    chains.sort_by(|a, b| a.id.cmp(&b.id));
    chains.dedup_by(|a, b| a.id == b.id);
    chains
}

/// The stable chain id of an instantaneous alert.
#[must_use]
pub fn alert_id(t: Timestamp, alert: &Alert) -> String {
    format!(
        "{}/v{}/area{}@{}",
        alert_event_name(alert.kind),
        alert.vessel.0,
        alert.area.0,
        t.0
    )
}

/// Renders a chain as a human-readable proof tree.
#[must_use]
pub fn render_proof_tree(chain: &CeChain) -> String {
    let mut out = String::new();
    let held = match chain.until {
        Some(u) => format!("held [{}, {})", chain.since, u),
        None if chain.derivation.iter().any(|n| n.kind == "fire") => {
            format!("fired @ {}", chain.since)
        }
        None => format!("held [{}, ...) — ongoing", chain.since),
    };
    out.push_str(&format!("{} — {}  [{}]\n", chain.ce, held, chain.id));
    let n = chain.derivation.len();
    for (i, node) in chain.derivation.iter().enumerate() {
        render_node(node, "", i + 1 == n, &mut out);
    }
    out
}

fn render_node(node: &ChainNode, prefix: &str, last: bool, out: &mut String) {
    let branch = if last { "└─ " } else { "├─ " };
    out.push_str(prefix);
    out.push_str(branch);
    out.push_str(&node.label);
    if let Some(rule) = &node.rule {
        out.push_str(&format!("  [{rule}]"));
    }
    if node.kind == "input" {
        if node.sentences.is_empty() {
            out.push_str("  (no source sentences indexed)");
        } else {
            let ids: Vec<String> = node.sentences.iter().map(u64::to_string).collect();
            out.push_str(&format!("  (AIS sentences {})", ids.join(", ")));
        }
    }
    out.push('\n');
    let child_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
    let n = node.children.len();
    for (i, child) in node.children.iter().enumerate() {
        render_node(child, &child_prefix, i + 1 == n, out);
    }
}

/// Walks a chain's trees depth-first, visiting every `"input"` leaf
/// mutably — the pipeline uses this to attach source sentence ids.
pub fn visit_input_leaves(chain: &mut CeChain, f: &mut impl FnMut(&mut ChainNode)) {
    fn walk(node: &mut ChainNode, f: &mut impl FnMut(&mut ChainNode)) {
        if node.kind == "input" {
            f(node);
        }
        for child in &mut node.children {
            walk(child, f);
        }
    }
    for root in &mut chain.derivation {
        walk(root, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proof_tree_renders_nested_branches() {
        let chain = CeChain {
            id: "suspicious/area0@400".into(),
            ce: "suspicious(area 0)".into(),
            since: 400,
            until: Some(1_000),
            query_time: 3_600,
            derivation: vec![ChainNode {
                label: "initiated(suspicious(area 0)) @ 400".into(),
                kind: "initiation".into(),
                at: 400,
                rule: None,
                mmsi: None,
                sentences: vec![],
                children: vec![ChainNode {
                    label: "on start(stoppedNear(v103, area 0))".into(),
                    kind: "fire".into(),
                    at: 400,
                    rule: Some("initiatedAt(suspicious, rule 0)".into()),
                    mmsi: None,
                    sentences: vec![],
                    children: vec![ChainNode {
                        label: "StopStart by v103 at (24.100, 37.100)".into(),
                        kind: "input".into(),
                        at: 400,
                        rule: None,
                        mmsi: Some(103),
                        sentences: vec![17, 18],
                        children: vec![],
                    }],
                }],
            }],
        };
        let tree = render_proof_tree(&chain);
        assert!(tree.contains("suspicious(area 0) — held [400, 1000)"));
        assert!(tree.contains("└─ initiated(suspicious(area 0)) @ 400"));
        assert!(tree.contains("   └─ on start(stoppedNear(v103, area 0))"));
        assert!(tree.contains("[initiatedAt(suspicious, rule 0)]"));
        assert!(tree.contains("(AIS sentences 17, 18)"));
    }

    #[test]
    fn chains_serialize_roundtrip() {
        let chain = CeChain {
            id: "illegalShipping/v105/area0@700".into(),
            ce: "illegalShipping(v105, area 0)".into(),
            since: 700,
            until: None,
            query_time: 3_600,
            derivation: vec![],
        };
        let json = serde_json::to_string(&chain).unwrap();
        let back: CeChain = serde_json::from_str(&json).unwrap();
        assert_eq!(back, chain);
    }
}
