//! The maritime event description: fluents, alerts, and the rule sets of
//! §4.1 expressed in the typed RTEC rule API.
//!
//! Stratification:
//!
//! | stratum | fluent | role |
//! |---|---|---|
//! | 0 | `stopped(V)` | input durative ME (from stop start/end markers) |
//! | 1 | `slowMotion(V)` | input durative ME (the paper's `lowSpeed`) |
//! | 2 | `stoppedNear(V, A)` | helper: V stopped close to monitored area A |
//! | 3 | `fishingNear(V, A)` | helper: fishing vessel stopped/slow near forbidden-fishing area A |
//! | 4 | `suspicious(A)` | rule-set (3): ≥ 4 vessels stopped close to A |
//! | 5 | `illegalFishing(A)` | rule-set (4) + termination rules |
//!
//! plus the instantaneous derived events `illegalShipping(A)` (rule 5) and
//! `dangerousShipping(A)` (rule 6), reported as [`Alert`]s.

use maritime_ais::Mmsi;
use maritime_geo::{AreaId, AreaKind};
use maritime_rtec::{DerivedEventDef, EventDescription, FluentDef, Trigger, TriggerKinds, View};
use serde::{Deserialize, Serialize};

use crate::input::{InputEvent, InputKind};
use crate::knowledge::Knowledge;

/// Keys of the fluents computed by the maritime recognizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FluentKey {
    /// `stopped(Vessel) = true`.
    Stopped(Mmsi),
    /// `slowMotion(Vessel) = true`.
    SlowMotion(Mmsi),
    /// Helper: the vessel is stopped close to the monitored area.
    StoppedNear(Mmsi, AreaId),
    /// Helper: the fishing vessel is stopped or slow near the area.
    FishingNear(Mmsi, AreaId),
    /// `suspicious(Area) = true` (rule-set 3).
    Suspicious(AreaId),
    /// `illegalFishing(Area) = true` (rule-set 4).
    IllegalFishing(AreaId),
}

impl FluentKey {
    /// Whether this key is one of the output complex events (as opposed to
    /// an input ME or helper fluent).
    #[must_use]
    pub fn is_complex_event(&self) -> bool {
        matches!(self, Self::Suspicious(_) | Self::IllegalFishing(_))
    }
}

/// Kinds of instantaneous alerts (the derived events of rules 5 and 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlertKind {
    /// Rule 5: communication gap close to a protected area.
    IllegalShipping,
    /// Rule 6: slow motion in waters too shallow for the vessel.
    DangerousShipping,
}

/// An instantaneous alert pushed to the marine authorities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Alert {
    /// What was recognized.
    pub kind: AlertKind,
    /// The vessel involved.
    pub vessel: Mmsi,
    /// The area involved.
    pub area: AreaId,
}

/// Builds the complete maritime event description.
#[must_use]
pub fn maritime_description() -> EventDescription<Knowledge, InputEvent, FluentKey, Alert> {
    EventDescription::new()
        .fluent(stopped())
        .fluent(slow_motion())
        .fluent(stopped_near())
        .fluent(fishing_near())
        .fluent(suspicious())
        .fluent(illegal_fishing())
        .event(illegal_shipping())
        .event(dangerous_shipping())
}

type MDef = FluentDef<Knowledge, InputEvent, FluentKey, ()>;
type MEvent = DerivedEventDef<Knowledge, InputEvent, FluentKey, Alert>;
type MTrigger<'a> = Trigger<'a, InputEvent, FluentKey>;

/// Stratum 0: `stopped(V)` from the tracker's stop markers.
fn stopped() -> MDef {
    FluentDef::new("stopped")
        .initiated_on(TriggerKinds::INPUT, |_, _, trig: MTrigger<'_>, _| match trig.input() {
            Some(e) if e.kind == InputKind::StopStart => vec![FluentKey::Stopped(e.mmsi)],
            _ => vec![],
        })
        .terminated_on(TriggerKinds::INPUT, |_, _, trig: MTrigger<'_>, _| match trig.input() {
            // A gap also ends certainty about the stop: the tracker closes
            // stops before gaps, but a lone GapStart (e.g. stop markers
            // delayed beyond the window) must not leave the fluent open.
            Some(e) if matches!(e.kind, InputKind::StopEnd | InputKind::GapStart) => {
                vec![FluentKey::Stopped(e.mmsi)]
            }
            _ => vec![],
        })
}

/// Stratum 1: `slowMotion(V)` — the paper's `lowSpeed` durative ME.
fn slow_motion() -> MDef {
    FluentDef::new("slowMotion")
        .initiated_on(TriggerKinds::INPUT, |_, _, trig: MTrigger<'_>, _| match trig.input() {
            Some(e) if e.kind == InputKind::SlowMotionStart => {
                vec![FluentKey::SlowMotion(e.mmsi)]
            }
            _ => vec![],
        })
        .terminated_on(TriggerKinds::INPUT, |_, _, trig: MTrigger<'_>, _| match trig.input() {
            Some(e) if matches!(e.kind, InputKind::SlowMotionEnd | InputKind::GapStart) => {
                vec![FluentKey::SlowMotion(e.mmsi)]
            }
            _ => vec![],
        })
}

/// Stratum 2: `stoppedNear(V, A)` for monitored areas.
fn stopped_near() -> MDef {
    FluentDef::new("stoppedNear")
        .initiated_on(TriggerKinds::INPUT, |kb: &Knowledge, _, trig: MTrigger<'_>, _| match trig.input() {
            Some(e) if e.kind == InputKind::StopStart => {
                let mut out = Vec::new();
                kb.for_each_close_area(e, |id| {
                    if kb.monitored_for_suspicious(id) {
                        out.push(FluentKey::StoppedNear(e.mmsi, id));
                    }
                });
                out
            }
            _ => vec![],
        })
        .terminated_on(TriggerKinds::INPUT, |kb: &Knowledge, _, trig: MTrigger<'_>, _| match trig.input() {
            // Terminate for every monitored area: the vessel may have
            // drifted, so we cannot rely on recomputing proximity at the
            // end marker matching the start marker exactly.
            Some(e) if matches!(e.kind, InputKind::StopEnd | InputKind::GapStart) => kb
                .monitored_area_ids()
                .iter()
                .map(|id| FluentKey::StoppedNear(e.mmsi, *id))
                .collect(),
            _ => vec![],
        })
}

/// Stratum 3: `fishingNear(V, A)` — a fishing vessel whose movement allows
/// fishing (stopped or slow) close to a forbidden-fishing area.
fn fishing_near() -> MDef {
    FluentDef::new("fishingNear")
        .initiated_on(TriggerKinds::INPUT, |kb: &Knowledge, _, trig: MTrigger<'_>, _| match trig.input() {
            Some(e)
                if matches!(e.kind, InputKind::StopStart | InputKind::SlowMotionStart)
                    && kb.fishing(e.mmsi) =>
            {
                let mut out = Vec::new();
                kb.for_each_close_area(e, |id| {
                    if kb.area(id).is_some_and(|a| a.kind == AreaKind::ForbiddenFishing) {
                        out.push(FluentKey::FishingNear(e.mmsi, id));
                    }
                });
                out
            }
            _ => vec![],
        })
        .terminated_on(TriggerKinds::INPUT, |kb: &Knowledge, _, trig: MTrigger<'_>, _| match trig.input() {
            Some(e)
                if matches!(
                    e.kind,
                    InputKind::StopEnd | InputKind::SlowMotionEnd | InputKind::GapStart
                ) && kb.fishing(e.mmsi) =>
            {
                kb.forbidden_fishing_area_ids()
                    .iter()
                    .map(|id| FluentKey::FishingNear(e.mmsi, *id))
                    .collect()
            }
            _ => vec![],
        })
}

/// Stratum 4: `suspicious(A)` — rule-set (3). Initiated when a vessel stops
/// close to A and at least `suspicious_min_vessels` are then stopped close
/// to it; terminated when one leaves and fewer than the threshold remain.
fn suspicious() -> MDef {
    FluentDef::new("suspicious")
        .initiated_on(TriggerKinds::START, |kb: &Knowledge, view: &View<'_, FluentKey>, trig: MTrigger<'_>, t| {
            match trig.started() {
                Some(FluentKey::StoppedNear(_, area)) => {
                    // Count at the instant after T: the just-started
                    // interval is included, just-ended ones are not.
                    let probe = t + maritime_rtec::Duration::secs(1);
                    let n = view.count_holding_at(probe, |k| {
                        matches!(k, FluentKey::StoppedNear(_, a) if a == area)
                    });
                    if n >= kb.suspicious_min_vessels {
                        vec![FluentKey::Suspicious(*area)]
                    } else {
                        vec![]
                    }
                }
                _ => vec![],
            }
        })
        .terminated_on(TriggerKinds::END, |kb: &Knowledge, view: &View<'_, FluentKey>, trig: MTrigger<'_>, t| {
            match trig.ended() {
                Some(FluentKey::StoppedNear(_, area)) => {
                    let probe = t + maritime_rtec::Duration::secs(1);
                    let n = view.count_holding_at(probe, |k| {
                        matches!(k, FluentKey::StoppedNear(_, a) if a == area)
                    });
                    if n < kb.suspicious_min_vessels {
                        vec![FluentKey::Suspicious(*area)]
                    } else {
                        vec![]
                    }
                }
                _ => vec![],
            }
        })
}

/// Stratum 5: `illegalFishing(A)` — rule-set (4): starts when a fishing
/// vessel stops or slows near a forbidden area; stops when no fishing
/// vessel remains there with fishing-compatible movement.
fn illegal_fishing() -> MDef {
    FluentDef::new("illegalFishing")
        .initiated_on(TriggerKinds::START, |_, _, trig: MTrigger<'_>, _| match trig.started() {
            Some(FluentKey::FishingNear(_, area)) => vec![FluentKey::IllegalFishing(*area)],
            _ => vec![],
        })
        .terminated_on(TriggerKinds::END, |_, view: &View<'_, FluentKey>, trig: MTrigger<'_>, t| {
            match trig.ended() {
                Some(FluentKey::FishingNear(_, area)) => {
                    let probe = t + maritime_rtec::Duration::secs(1);
                    let n = view.count_holding_at(probe, |k| {
                        matches!(k, FluentKey::FishingNear(_, a) if a == area)
                    });
                    if n == 0 {
                        vec![FluentKey::IllegalFishing(*area)]
                    } else {
                        vec![]
                    }
                }
                _ => vec![],
            }
        })
}

/// Rule 5: `illegalShipping(A)` on a communication gap close to a
/// protected area.
fn illegal_shipping() -> MEvent {
    DerivedEventDef::new("illegalShipping").rule_on(TriggerKinds::INPUT, |kb: &Knowledge, _, trig: MTrigger<'_>, _| {
        match trig.input() {
            Some(e) if e.kind == InputKind::GapStart => {
                let mut out = Vec::new();
                kb.for_each_close_area(e, |area| {
                    if kb.area(area).is_some_and(|a| a.kind == AreaKind::Protected) {
                        out.push(Alert {
                            kind: AlertKind::IllegalShipping,
                            vessel: e.mmsi,
                            area,
                        });
                    }
                });
                out
            }
            _ => vec![],
        }
    })
}

/// Rule 6: `dangerousShipping(A)` on slow motion in waters too shallow for
/// the vessel's draft.
fn dangerous_shipping() -> MEvent {
    DerivedEventDef::new("dangerousShipping").rule_on(TriggerKinds::INPUT, |kb: &Knowledge, _, trig: MTrigger<'_>, _| {
        match trig.input() {
            Some(e) if e.kind == InputKind::SlowMotionStart => {
                let mut out = Vec::new();
                kb.for_each_close_area(e, |area| {
                    if kb.shallow(area, e.mmsi) {
                        out.push(Alert {
                            kind: AlertKind::DangerousShipping,
                            vessel: e.mmsi,
                            area,
                        });
                    }
                });
                out
            }
            _ => vec![],
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complex_event_classification() {
        assert!(FluentKey::Suspicious(AreaId(0)).is_complex_event());
        assert!(FluentKey::IllegalFishing(AreaId(0)).is_complex_event());
        assert!(!FluentKey::Stopped(Mmsi(1)).is_complex_event());
        assert!(!FluentKey::StoppedNear(Mmsi(1), AreaId(0)).is_complex_event());
        assert!(!FluentKey::SlowMotion(Mmsi(1)).is_complex_event());
        assert!(!FluentKey::FishingNear(Mmsi(1), AreaId(0)).is_complex_event());
    }

    #[test]
    fn description_has_expected_strata_and_events() {
        let d = maritime_description();
        assert_eq!(d.fluents.len(), 6);
        assert_eq!(d.events.len(), 2);
        let names: Vec<_> = d.fluents.iter().map(|f| f.name).collect();
        assert_eq!(
            names,
            vec![
                "stopped",
                "slowMotion",
                "stoppedNear",
                "fishingNear",
                "suspicious",
                "illegalFishing"
            ]
        );
    }
}
