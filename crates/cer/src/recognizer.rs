//! The maritime recognizer: RTEC engine + maritime event description.

use maritime_ais::Mmsi;
use maritime_geo::AreaId;
use maritime_obs::{names, LazyCounter};
use maritime_rtec::{
    Engine, EvalStrategy, IncrementalStats, IntervalList, Recognition, Timestamp, WindowSpec,
};
use maritime_tracker::CriticalPoint;

use crate::fluents::{maritime_description, Alert, FluentKey};
use crate::input::InputEvent;
use crate::knowledge::Knowledge;
use crate::provenance::{build_chains, CeChain};

/// Recognition metrics (see `OBSERVABILITY.md`). Under partitioned
/// recognition every band recognizer feeds the same counters; bands own
/// disjoint events and areas, so the sums equal the single-recognizer
/// figures.
static OBS_INPUT_EVENTS: LazyCounter = LazyCounter::new(names::CER_INPUT_EVENTS);
static OBS_CE_RECOGNIZED: LazyCounter = LazyCounter::new(names::CER_CE_RECOGNIZED);
static OBS_ALERTS: LazyCounter = LazyCounter::new(names::CER_ALERTS);
static OBS_CHAINS: LazyCounter = LazyCounter::new(names::TRACE_PROVENANCE_CHAINS);

/// Summary of one recognition query, for reporting and the Figure 11
/// experiments (which count recognized CEs per window).
#[derive(Debug, Clone)]
pub struct RecognitionSummary {
    /// Query time.
    pub query_time: Timestamp,
    /// `suspicious(Area)` maximal intervals.
    pub suspicious: Vec<(AreaId, IntervalList)>,
    /// `illegalFishing(Area)` maximal intervals.
    pub illegal_fishing: Vec<(AreaId, IntervalList)>,
    /// Instantaneous alerts (illegal/dangerous shipping), in time order.
    pub alerts: Vec<(Timestamp, Alert)>,
    /// Total complex events recognized: CE intervals plus alerts.
    pub ce_count: usize,
    /// Input events in the working memory for this query.
    pub working_memory: usize,
}

impl RecognitionSummary {
    /// Canonical JSON rendering of everything the query recognized,
    /// byte-stable across engine configurations: two summaries describe
    /// the same recognition result if and only if their canonical strings
    /// are equal. This is the equality the differential and metamorphic
    /// harnesses compare on (nested pairs keep every tuple within the
    /// serializer's arity).
    #[must_use]
    pub fn canonical_json(&self) -> String {
        serde_json::to_string(&(
            (self.query_time, &self.suspicious),
            (&self.illegal_fishing, &self.alerts),
            (self.ce_count, self.working_memory),
        ))
        .expect("summary serializes")
    }
}

/// The end-to-end maritime complex event recognizer.
///
/// ```
/// use maritime_ais::Mmsi;
/// use maritime_cer::{recognizer::stop_markers, Knowledge, MaritimeRecognizer, VesselInfo};
/// use maritime_geo::{Area, AreaId, AreaKind, GeoPoint, Polygon};
/// use maritime_rtec::{Duration, Timestamp, WindowSpec};
///
/// let areas = vec![Area::new(
///     AreaId(0),
///     "watch zone",
///     AreaKind::Watch,
///     Polygon::circle(GeoPoint::new(24.5, 38.5), 5_000.0, 16),
/// )];
/// let vessels = (1..=4).map(|i| VesselInfo {
///     mmsi: Mmsi(i), draft_m: 5.0, is_fishing: false,
/// });
/// let spec = WindowSpec::new(Duration::hours(6), Duration::hours(1)).unwrap();
/// let mut recognizer = MaritimeRecognizer::new(Knowledge::standard(vessels, areas), spec);
///
/// // Four vessels stop inside the watch zone: suspicious (rule-set 3).
/// for i in 1..=4 {
///     recognizer.add_events(stop_markers(
///         Mmsi(i),
///         GeoPoint::new(24.5, 38.5),
///         Timestamp(100 * i64::from(i)),
///         Timestamp(5_000),
///     ));
/// }
/// let summary = recognizer.recognize_and_summarize(Timestamp(3_600));
/// assert_eq!(summary.suspicious.len(), 1);
/// ```
pub struct MaritimeRecognizer {
    engine: Engine<Knowledge, InputEvent, FluentKey, Alert>,
    /// Chains assembled by the most recent traced query.
    chains: Vec<CeChain>,
    /// Reusable recognition buffer: on a steady stream the per-query maps
    /// and vectors keep their capacity instead of reallocating.
    scratch: Recognition<FluentKey, Alert>,
}

impl MaritimeRecognizer {
    /// Creates a recognizer over the knowledge base with the given window.
    #[must_use]
    pub fn new(knowledge: Knowledge, spec: WindowSpec) -> Self {
        Self::with_strategy(knowledge, spec, EvalStrategy::default())
    }

    /// Creates a recognizer with an explicit evaluation strategy
    /// (checkpointed incremental vs. from-scratch per query).
    #[must_use]
    pub fn with_strategy(knowledge: Knowledge, spec: WindowSpec, strategy: EvalStrategy) -> Self {
        Self {
            engine: Engine::new(knowledge, maritime_description(), spec).with_strategy(strategy),
            chains: Vec::new(),
            scratch: Recognition::default(),
        }
    }

    /// Turns per-CE provenance capture on or off. While on, each
    /// [`recognize_and_summarize`](Self::recognize_and_summarize) call
    /// additionally assembles one derivation chain per recognized CE
    /// ([`Self::take_chains`]), and the engine evaluates from scratch
    /// (the incremental replay path never re-runs rules, so there is
    /// nothing to trace on it).
    pub fn set_provenance(&mut self, on: bool) {
        self.engine.set_provenance(on);
        if !on {
            self.chains.clear();
        }
    }

    /// Whether provenance capture is on.
    #[must_use]
    pub fn provenance_enabled(&self) -> bool {
        self.engine.provenance_enabled()
    }

    /// Takes the chains assembled by the most recent traced query.
    pub fn take_chains(&mut self) -> Vec<CeChain> {
        std::mem::take(&mut self.chains)
    }

    /// How queries have been evaluated so far (delta path vs. full
    /// recompute); all zeros under the from-scratch strategy.
    #[must_use]
    pub fn incremental_stats(&self) -> IncrementalStats {
        self.engine.incremental_stats()
    }

    /// The static knowledge.
    #[must_use]
    pub fn knowledge(&self) -> &Knowledge {
        self.engine.ctx()
    }

    /// Streams critical points from the trajectory detection component
    /// (non-ME annotations are dropped).
    pub fn add_critical_points(&mut self, cps: &[CriticalPoint]) {
        for cp in cps {
            if let Some((t, ev)) = InputEvent::from_critical(cp) {
                OBS_INPUT_EVENTS.inc();
                self.engine.add_event(t, ev);
            }
        }
    }

    /// Streams pre-built input events (e.g. with spatial facts attached).
    pub fn add_events(&mut self, events: impl IntoIterator<Item = (Timestamp, InputEvent)>) {
        let mut admitted = 0u64;
        self.engine
            .add_events(events.into_iter().inspect(|_| admitted += 1));
        OBS_INPUT_EVENTS.add(admitted);
    }

    /// Runs recognition at query time `q`, returning the raw RTEC result.
    pub fn recognize_at(&mut self, q: Timestamp) -> Recognition<FluentKey, Alert> {
        self.engine.recognize_at(q)
    }

    /// Serializes the engine state into a framed checkpoint (see
    /// [`maritime_rtec::ckpt`]). The knowledge base is static
    /// configuration and is *not* included — [`Self::restore`] takes it
    /// back as an argument.
    #[must_use]
    pub fn checkpoint(&self) -> Vec<u8> {
        self.engine.checkpoint()
    }

    /// [`Self::checkpoint`] without the frame, for callers embedding
    /// several recognizers in one frame.
    pub fn checkpoint_into(&self, w: &mut maritime_rtec::Writer) {
        self.engine.checkpoint_into(w);
    }

    /// Restores a recognizer from a [`Self::checkpoint`]. `knowledge`
    /// must be the same static knowledge the checkpointed recognizer was
    /// built with. Provenance chains and the scratch buffer are per-query
    /// state and start empty.
    pub fn restore(
        knowledge: Knowledge,
        bytes: &[u8],
    ) -> Result<Self, maritime_rtec::CkptError> {
        Ok(Self {
            engine: Engine::restore(knowledge, maritime_description(), bytes)?,
            chains: Vec::new(),
            scratch: Recognition::default(),
        })
    }

    /// [`Self::restore`] from an already-unframed payload position.
    pub fn restore_from(
        knowledge: Knowledge,
        r: &mut maritime_rtec::Reader<'_>,
    ) -> Result<Self, maritime_rtec::CkptError> {
        Ok(Self {
            engine: Engine::restore_from(knowledge, maritime_description(), r)?,
            chains: Vec::new(),
            scratch: Recognition::default(),
        })
    }

    /// Runs recognition and summarizes the complex events. With
    /// provenance on, also rebuilds the per-CE chains.
    pub fn recognize_and_summarize(&mut self, q: Timestamp) -> RecognitionSummary {
        self.engine.recognize_into(q, &mut self.scratch);
        let summary = summarize(&self.scratch);
        OBS_CE_RECOGNIZED.add(summary.ce_count as u64);
        OBS_ALERTS.add(summary.alerts.len() as u64);
        if let Some(prov) = self.engine.take_provenance() {
            self.chains = build_chains(&summary, &prov);
            OBS_CHAINS.add(self.chains.len() as u64);
        }
        summary
    }
}

/// Extracts the complex events from a raw recognition result.
#[must_use]
pub fn summarize(recognition: &Recognition<FluentKey, Alert>) -> RecognitionSummary {
    let mut suspicious = Vec::new();
    let mut illegal_fishing = Vec::new();
    for (key, intervals) in &recognition.fluents {
        if intervals.is_empty() {
            continue;
        }
        match key {
            FluentKey::Suspicious(area) => suspicious.push((*area, intervals.clone())),
            FluentKey::IllegalFishing(area) => illegal_fishing.push((*area, intervals.clone())),
            _ => {}
        }
    }
    suspicious.sort_by_key(|(a, _)| *a);
    illegal_fishing.sort_by_key(|(a, _)| *a);
    let ce_count = suspicious.iter().map(|(_, il)| il.len()).sum::<usize>()
        + illegal_fishing.iter().map(|(_, il)| il.len()).sum::<usize>()
        + recognition.events.len();
    RecognitionSummary {
        query_time: recognition.query_time,
        suspicious,
        illegal_fishing,
        alerts: recognition.events.clone(),
        ce_count,
        working_memory: recognition.working_memory,
    }
}

/// Convenience for tests and examples: a minimal stop marker pair.
#[must_use]
pub fn stop_markers(
    mmsi: Mmsi,
    position: maritime_geo::GeoPoint,
    start: Timestamp,
    end: Timestamp,
) -> Vec<(Timestamp, InputEvent)> {
    use crate::input::InputKind;
    vec![
        (
            start,
            InputEvent {
                mmsi,
                kind: InputKind::StopStart,
                position,
                close_areas: None,
            },
        ),
        (
            end,
            InputEvent {
                mmsi,
                kind: InputKind::StopEnd,
                position,
                close_areas: None,
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fluents::AlertKind;
    use crate::input::InputKind;
    use crate::provenance::visit_input_leaves;
    use crate::knowledge::VesselInfo;
    use maritime_geo::{Area, AreaKind, GeoPoint, Polygon};
    use maritime_rtec::Duration;

    fn t(v: i64) -> Timestamp {
        Timestamp(v)
    }

    fn spec(range_h: i64, slide_h: i64) -> WindowSpec {
        WindowSpec::new(Duration::hours(range_h), Duration::hours(slide_h)).unwrap()
    }

    fn areas() -> Vec<Area> {
        vec![
            Area::new(
                AreaId(0),
                "park",
                AreaKind::Protected,
                Polygon::rectangle(GeoPoint::new(24.0, 37.0), GeoPoint::new(24.2, 37.2)),
            ),
            Area::new(
                AreaId(1),
                "no-fish",
                AreaKind::ForbiddenFishing,
                Polygon::rectangle(GeoPoint::new(25.0, 38.0), GeoPoint::new(25.2, 38.2)),
            ),
            Area::new(
                AreaId(2),
                "shoal",
                AreaKind::Shallow { depth_m: 4.0 },
                Polygon::rectangle(GeoPoint::new(26.0, 36.0), GeoPoint::new(26.2, 36.2)),
            ),
        ]
    }

    fn vessels(n: u32) -> Vec<VesselInfo> {
        (0..n)
            .map(|i| VesselInfo {
                mmsi: Mmsi(100 + i),
                draft_m: if i % 2 == 0 { 8.0 } else { 3.0 },
                is_fishing: i % 3 == 0,
            })
            .collect()
    }

    fn recognizer() -> MaritimeRecognizer {
        MaritimeRecognizer::new(Knowledge::standard(vessels(10), areas()), spec(6, 1))
    }

    fn ev(mmsi: u32, kind: InputKind, lon: f64, lat: f64) -> InputEvent {
        InputEvent {
            mmsi: Mmsi(mmsi),
            kind,
            position: GeoPoint::new(lon, lat),
            close_areas: None,
        }
    }

    #[test]
    fn suspicious_area_needs_four_stopped_vessels() {
        let mut r = recognizer();
        // Three vessels stop inside the protected area: not suspicious.
        for (i, start) in [(0u32, 100i64), (1, 200), (2, 300)] {
            r.add_events(vec![(
                t(start),
                ev(100 + i, InputKind::StopStart, 24.1, 37.1),
            )]);
        }
        let s = r.recognize_and_summarize(t(3_600));
        assert!(s.suspicious.is_empty(), "{:?}", s.suspicious);

        // The fourth stops: suspicious from that moment.
        r.add_events(vec![(t(400), ev(103, InputKind::StopStart, 24.1, 37.1))]);
        let s = r.recognize_and_summarize(t(7_200));
        assert_eq!(s.suspicious.len(), 1);
        let (area, il) = &s.suspicious[0];
        assert_eq!(*area, AreaId(0));
        assert_eq!(il.intervals().len(), 1);
        assert_eq!(il.intervals()[0].since, t(400));
        assert_eq!(il.intervals()[0].until, None, "still ongoing");
    }

    #[test]
    fn suspicious_terminates_when_vessels_leave() {
        let mut r = recognizer();
        for i in 0..4u32 {
            r.add_events(vec![(
                t(100 + i64::from(i)),
                ev(100 + i, InputKind::StopStart, 24.1, 37.1),
            )]);
        }
        // One departs at t=1000: count falls to 3.
        r.add_events(vec![(t(1_000), ev(100, InputKind::StopEnd, 24.1, 37.1))]);
        let s = r.recognize_and_summarize(t(3_600));
        assert_eq!(s.suspicious.len(), 1);
        let il = &s.suspicious[0].1;
        assert_eq!(il.intervals().len(), 1);
        assert_eq!(il.intervals()[0].since, t(103));
        assert_eq!(il.intervals()[0].until, Some(t(1_000)));
    }

    #[test]
    fn stops_far_from_any_area_are_not_suspicious() {
        let mut r = recognizer();
        for i in 0..6u32 {
            r.add_events(vec![(
                t(100 + i64::from(i)),
                ev(100 + i, InputKind::StopStart, 22.0, 39.9), // open sea
            )]);
        }
        let s = r.recognize_and_summarize(t(3_600));
        assert!(s.suspicious.is_empty());
    }

    #[test]
    fn illegal_fishing_from_fishing_vessel_slow_motion() {
        let mut r = recognizer();
        // Vessel 100 is a fishing vessel (i % 3 == 0).
        r.add_events(vec![(
            t(500),
            ev(100, InputKind::SlowMotionStart, 25.1, 38.1),
        )]);
        let s = r.recognize_and_summarize(t(3_600));
        assert_eq!(s.illegal_fishing.len(), 1);
        assert_eq!(s.illegal_fishing[0].0, AreaId(1));
        // A non-fishing vessel doing the same is fine.
        let mut r2 = recognizer();
        r2.add_events(vec![(
            t(500),
            ev(101, InputKind::SlowMotionStart, 25.1, 38.1),
        )]);
        let s2 = r2.recognize_and_summarize(t(3_600));
        assert!(s2.illegal_fishing.is_empty());
    }

    #[test]
    fn illegal_fishing_ends_when_last_fishing_vessel_leaves() {
        let mut r = recognizer();
        // Two fishing vessels (100 and 103).
        r.add_events(vec![
            (t(100), ev(100, InputKind::StopStart, 25.1, 38.1)),
            (t(200), ev(103, InputKind::SlowMotionStart, 25.1, 38.1)),
            (t(1_000), ev(100, InputKind::StopEnd, 25.1, 38.1)),
        ]);
        let s = r.recognize_and_summarize(t(3_600));
        let il = &s.illegal_fishing[0].1;
        // Still ongoing: vessel 103 remains.
        assert_eq!(il.intervals().len(), 1);
        assert_eq!(il.intervals()[0].until, None);

        r.add_events(vec![(t(2_000), ev(103, InputKind::SlowMotionEnd, 25.1, 38.1))]);
        let s = r.recognize_and_summarize(t(7_000));
        let il = &s.illegal_fishing[0].1;
        assert_eq!(il.intervals()[0].until, Some(t(2_000)));
    }

    #[test]
    fn illegal_shipping_on_gap_near_protected_area() {
        let mut r = recognizer();
        r.add_events(vec![(t(700), ev(105, InputKind::GapStart, 24.1, 37.1))]);
        let s = r.recognize_and_summarize(t(3_600));
        assert_eq!(s.alerts.len(), 1);
        let (at, alert) = s.alerts[0];
        assert_eq!(at, t(700));
        assert_eq!(alert.kind, AlertKind::IllegalShipping);
        assert_eq!(alert.vessel, Mmsi(105));
        assert_eq!(alert.area, AreaId(0));
    }

    #[test]
    fn gap_far_from_protected_area_raises_nothing() {
        let mut r = recognizer();
        // Near the forbidden-fishing area, not the protected one.
        r.add_events(vec![(t(700), ev(105, InputKind::GapStart, 25.1, 38.1))]);
        let s = r.recognize_and_summarize(t(3_600));
        assert!(s.alerts.is_empty());
    }

    #[test]
    fn dangerous_shipping_depends_on_draft() {
        let mut r = recognizer();
        // Vessel 100: draft 8 m > 4 m depth - clearance -> dangerous.
        r.add_events(vec![(
            t(300),
            ev(100, InputKind::SlowMotionStart, 26.1, 36.1),
        )]);
        // Vessel 101: draft 3 m, 4 m depth is enough (3+1 <= 4 is not
        // strictly shallower) -> safe.
        r.add_events(vec![(
            t(400),
            ev(101, InputKind::SlowMotionStart, 26.1, 36.1),
        )]);
        let s = r.recognize_and_summarize(t(3_600));
        let dangerous: Vec<_> = s
            .alerts
            .iter()
            .filter(|(_, a)| a.kind == AlertKind::DangerousShipping)
            .collect();
        assert_eq!(dangerous.len(), 1);
        assert_eq!(dangerous[0].1.vessel, Mmsi(100));
        assert_eq!(dangerous[0].1.area, AreaId(2));
    }

    #[test]
    fn ce_count_sums_intervals_and_alerts() {
        let mut r = recognizer();
        for i in 0..4u32 {
            r.add_events(vec![(
                t(100 + i64::from(i)),
                ev(100 + i, InputKind::StopStart, 24.1, 37.1),
            )]);
        }
        r.add_events(vec![(t(700), ev(105, InputKind::GapStart, 24.1, 37.1))]);
        let s = r.recognize_and_summarize(t(3_600));
        assert_eq!(s.ce_count, 2); // 1 suspicious interval + 1 alert
    }

    #[test]
    fn window_eviction_forgets_old_activity() {
        let mut r = recognizer();
        for i in 0..4u32 {
            r.add_events(vec![(
                t(100 + i64::from(i)),
                ev(100 + i, InputKind::StopStart, 24.1, 37.1),
            )]);
        }
        // After the 6-hour window passes, nothing remains.
        let s = r.recognize_and_summarize(t(100 + 6 * 3_600 + 10));
        assert!(s.suspicious.is_empty());
        assert_eq!(s.working_memory, 0);
    }

    #[test]
    fn traced_query_yields_suspicious_chain_with_input_leaves() {
        let mut r = recognizer();
        r.set_provenance(true);
        for i in 0..4u32 {
            r.add_events(vec![(
                t(100 + i64::from(i)),
                ev(100 + i, InputKind::StopStart, 24.1, 37.1),
            )]);
        }
        r.add_events(vec![(t(700), ev(105, InputKind::GapStart, 24.1, 37.1))]);
        let s = r.recognize_and_summarize(t(3_600));
        assert_eq!(s.ce_count, 2);

        let chains = r.take_chains();
        assert_eq!(chains.len(), 2, "one chain per CE: {chains:#?}");
        let susp = chains
            .iter()
            .find(|c| c.ce.starts_with("suspicious"))
            .expect("suspicious chain");
        assert_eq!(susp.since, 103, "since = fourth vessel's stop");
        // The derivation must bottom out in raw input events.
        let mut leaves = 0;
        let mut susp = susp.clone();
        visit_input_leaves(&mut susp, &mut |_| leaves += 1);
        assert!(leaves >= 1, "no input leaves in {susp:#?}");
        // The alert chain names the gapped vessel.
        let alert = chains
            .iter()
            .find(|c| c.ce.starts_with("illegalShipping"))
            .expect("illegalShipping chain");
        assert!(alert.id.contains("v105"), "{}", alert.id);

        // take_chains is destructive; disabling tracing clears state.
        assert!(r.take_chains().is_empty());
        r.set_provenance(false);
        assert!(!r.provenance_enabled());
    }

    #[test]
    fn critical_point_ingestion_path() {
        use maritime_tracker::Annotation;
        let mut r = recognizer();
        let cps: Vec<CriticalPoint> = (0..4)
            .map(|i| CriticalPoint {
                mmsi: Mmsi(100 + i),
                position: GeoPoint::new(24.1, 37.1),
                timestamp: t(100 + i64::from(i)),
                annotation: Annotation::StopStart,
                speed_knots: 0.2,
                heading_deg: 0.0,
            })
            .collect();
        r.add_critical_points(&cps);
        let s = r.recognize_and_summarize(t(3_600));
        assert_eq!(s.suspicious.len(), 1);
    }
}
