//! Extension complex events beyond the paper's four scenarios.
//!
//! The paper's abstract and introduction name *loitering* as a situation of
//! interest but formalize it only indirectly (several vessels stopped →
//! `suspicious`). This module adds:
//!
//! * **`loitering(Vessel)`** — a durative CE: the vessel is stopped or in
//!   slow motion *away from any port*. Hanging around open water is
//!   interesting; being moored in Piraeus is not.
//! * **rendezvous detection** — two vessels loitering at the same time
//!   within a small radius of each other: the classic ship-to-ship
//!   transfer (smuggling / transshipment) pattern, a natural "vessels
//!   traveling together" spatiotemporal interaction (§2).
//!
//! Loitering is a regular RTEC fluent over the same input-event stream as
//! the core recognizer; its rules consult only the input events and the
//! static knowledge, so the [`ExtendedRecognizer`] runs a small dedicated
//! event description rather than duplicating the core strata. Run it
//! *alongside* a [`crate::MaritimeRecognizer`] when both the paper's CEs
//! and the extensions are wanted — both consume the identical ME stream.
//!
//! Rendezvous pairing is computed on top of the recognized loitering
//! intervals — the pairwise spatial join over interval overlaps is
//! relational post-processing, not temporal reasoning, so it lives outside
//! the engine just like the paper's own atemporal predicates.

use std::collections::HashMap;

use maritime_ais::Mmsi;
use maritime_geo::{haversine_distance_m, AreaKind, GeoPoint};
use maritime_rtec::{
    Engine, EventDescription, FluentDef, Interval, IntervalList, Timestamp, Trigger, WindowSpec,
};
use serde::{Deserialize, Serialize};

use crate::fluents::Alert;
use crate::input::{InputEvent, InputKind};
use crate::knowledge::Knowledge;

/// Key of the loitering fluent: the vessel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Loitering(pub Mmsi);

/// A recognized ship-to-ship rendezvous.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rendezvous {
    /// The two vessels, ordered by MMSI.
    pub vessels: (Mmsi, Mmsi),
    /// The overlap of their loitering intervals.
    pub interval: Interval,
    /// Approximate meeting point (midpoint of the two loiter anchors).
    pub location: GeoPoint,
    /// Distance between the two loiter anchors, meters.
    pub separation_m: f64,
}

/// Builds the extension event description: the single `loitering` stratum.
#[must_use]
pub fn extension_description() -> EventDescription<Knowledge, InputEvent, Loitering, Alert> {
    EventDescription::new().fluent(
        FluentDef::new("loitering")
            .initiated(|kb: &Knowledge, _, trig: Trigger<'_, InputEvent, Loitering>, _| {
                match trig.input() {
                    Some(e)
                        if matches!(
                            e.kind,
                            InputKind::StopStart | InputKind::SlowMotionStart
                        ) && !near_port(kb, e) =>
                    {
                        vec![Loitering(e.mmsi)]
                    }
                    _ => vec![],
                }
            })
            .terminated(|_, _, trig: Trigger<'_, InputEvent, Loitering>, _| {
                match trig.input() {
                    Some(e)
                        if matches!(
                            e.kind,
                            InputKind::StopEnd | InputKind::SlowMotionEnd | InputKind::GapStart
                        ) =>
                    {
                        vec![Loitering(e.mmsi)]
                    }
                    _ => vec![],
                }
            }),
    )
}

/// Whether the event's position is close to any port.
fn near_port(kb: &Knowledge, e: &InputEvent) -> bool {
    kb.close_areas_for(e)
        .into_iter()
        .any(|id| kb.area(id).is_some_and(|a| a.kind == AreaKind::Port))
}

/// Recognizer for the extension CEs.
pub struct ExtendedRecognizer {
    engine: Engine<Knowledge, InputEvent, Loitering, Alert>,
    /// Positions of loiter-initiating events per vessel, time-ordered —
    /// the anchors used by rendezvous pairing.
    anchors: HashMap<Mmsi, Vec<(Timestamp, GeoPoint)>>,
    /// Maximum anchor separation for a rendezvous, meters.
    pub rendezvous_radius_m: f64,
    /// Minimum overlap duration for a rendezvous report.
    pub min_overlap_secs: i64,
}

impl ExtendedRecognizer {
    /// Creates an extended recognizer.
    #[must_use]
    pub fn new(knowledge: Knowledge, spec: WindowSpec) -> Self {
        Self {
            engine: Engine::new(knowledge, extension_description(), spec),
            anchors: HashMap::new(),
            rendezvous_radius_m: 1_500.0,
            min_overlap_secs: 600,
        }
    }

    /// Streams input events.
    pub fn add_events(&mut self, events: impl IntoIterator<Item = (Timestamp, InputEvent)>) {
        for (t, e) in events {
            if matches!(e.kind, InputKind::StopStart | InputKind::SlowMotionStart) {
                self.anchors.entry(e.mmsi).or_default().push((t, e.position));
            }
            self.engine.add_event(t, e);
        }
    }

    /// Recognizes loitering intervals and rendezvous at query time `q`.
    pub fn recognize_at(&mut self, q: Timestamp) -> ExtensionReport {
        let recognition = self.engine.recognize_at(q);
        let mut loitering: Vec<(Mmsi, IntervalList)> = recognition
            .fluents
            .into_iter()
            .filter_map(|(Loitering(m), il)| (!il.is_empty()).then_some((m, il)))
            .collect();
        loitering.sort_by_key(|(m, _)| *m);

        let mut rendezvous = Vec::new();
        for i in 0..loitering.len() {
            for j in (i + 1)..loitering.len() {
                let (ma, ila) = &loitering[i];
                let (mb, ilb) = &loitering[j];
                let overlap = ila.intersect(ilb);
                for iv in overlap.intervals() {
                    let long_enough = match iv.until {
                        Some(u) => u.as_secs() - iv.since.as_secs() >= self.min_overlap_secs,
                        None => q.as_secs() - iv.since.as_secs() >= self.min_overlap_secs,
                    };
                    if !long_enough {
                        continue;
                    }
                    let (Some(pa), Some(pb)) = (
                        self.anchor_before(*ma, iv.since),
                        self.anchor_before(*mb, iv.since),
                    ) else {
                        continue;
                    };
                    let d = haversine_distance_m(pa, pb);
                    if d <= self.rendezvous_radius_m {
                        rendezvous.push(Rendezvous {
                            vessels: (*ma, *mb),
                            interval: *iv,
                            location: pa.midpoint(pb),
                            separation_m: d,
                        });
                    }
                }
            }
        }

        ExtensionReport {
            query_time: q,
            loitering,
            rendezvous,
        }
    }

    /// Latest loiter anchor of a vessel at or before `t`.
    fn anchor_before(&self, mmsi: Mmsi, t: Timestamp) -> Option<GeoPoint> {
        self.anchors
            .get(&mmsi)?
            .iter()
            .rev()
            .find(|(at, _)| *at <= t)
            .map(|(_, p)| *p)
    }
}

/// The extension CEs recognized at one query.
#[derive(Debug, Clone)]
pub struct ExtensionReport {
    /// Query time.
    pub query_time: Timestamp,
    /// `loitering(Vessel)` maximal intervals, by MMSI.
    pub loitering: Vec<(Mmsi, IntervalList)>,
    /// Rendezvous pairs.
    pub rendezvous: Vec<Rendezvous>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knowledge::VesselInfo;
    use crate::recognizer::MaritimeRecognizer;
    use maritime_geo::{Area, AreaId, Polygon};
    use maritime_rtec::Duration;

    fn t(v: i64) -> Timestamp {
        Timestamp(v)
    }

    fn kb() -> Knowledge {
        let vessels = (1..=6).map(|i| VesselInfo {
            mmsi: Mmsi(i),
            draft_m: 4.0,
            is_fishing: false,
        });
        let areas = vec![Area::new(
            AreaId(0),
            "Piraeus",
            AreaKind::Port,
            Polygon::circle(GeoPoint::new(23.62, 37.94), 2_500.0, 16),
        )];
        Knowledge::standard(vessels, areas)
    }

    fn recognizer() -> ExtendedRecognizer {
        let spec = WindowSpec::new(Duration::hours(12), Duration::hours(1)).unwrap();
        ExtendedRecognizer::new(kb(), spec)
    }

    fn ev(mmsi: u32, kind: InputKind, lon: f64, lat: f64) -> InputEvent {
        InputEvent {
            mmsi: Mmsi(mmsi),
            kind,
            position: GeoPoint::new(lon, lat),
            close_areas: None,
        }
    }

    #[test]
    fn offshore_stop_is_loitering() {
        let mut r = recognizer();
        r.add_events([
            (t(100), ev(1, InputKind::StopStart, 24.8, 38.2)),
            (t(4_000), ev(1, InputKind::StopEnd, 24.8, 38.2)),
        ]);
        let report = r.recognize_at(t(7_200));
        assert_eq!(report.loitering.len(), 1);
        assert_eq!(report.loitering[0].0, Mmsi(1));
        assert_eq!(
            report.loitering[0].1.intervals(),
            &[Interval::closed(t(100), t(4_000))]
        );
    }

    #[test]
    fn port_stop_is_not_loitering() {
        let mut r = recognizer();
        // Stopped inside the Piraeus basin.
        r.add_events([(t(100), ev(1, InputKind::StopStart, 23.62, 37.94))]);
        let report = r.recognize_at(t(7_200));
        assert!(report.loitering.is_empty());
    }

    #[test]
    fn two_vessels_meeting_offshore_is_a_rendezvous() {
        let mut r = recognizer();
        // Both loiter ~500 m apart for 50 minutes of overlap.
        r.add_events([
            (t(100), ev(1, InputKind::StopStart, 24.800, 38.200)),
            (t(600), ev(2, InputKind::SlowMotionStart, 24.805, 38.200)),
            (t(3_600), ev(1, InputKind::StopEnd, 24.800, 38.200)),
            (t(4_000), ev(2, InputKind::SlowMotionEnd, 24.805, 38.200)),
        ]);
        let report = r.recognize_at(t(7_200));
        assert_eq!(report.rendezvous.len(), 1, "{:?}", report.rendezvous);
        let rv = report.rendezvous[0];
        assert_eq!(rv.vessels, (Mmsi(1), Mmsi(2)));
        assert_eq!(rv.interval, Interval::closed(t(600), t(3_600)));
        assert!(rv.separation_m < 600.0, "{}", rv.separation_m);
    }

    #[test]
    fn distant_loiterers_are_not_a_rendezvous() {
        let mut r = recognizer();
        // Same times, 40 km apart.
        r.add_events([
            (t(100), ev(1, InputKind::StopStart, 24.8, 38.2)),
            (t(100), ev(2, InputKind::StopStart, 25.3, 38.2)),
        ]);
        let report = r.recognize_at(t(7_200));
        assert_eq!(report.loitering.len(), 2);
        assert!(report.rendezvous.is_empty());
    }

    #[test]
    fn brief_overlap_is_ignored() {
        let mut r = recognizer();
        // Only 5 minutes of overlap: below the 10-minute floor.
        r.add_events([
            (t(100), ev(1, InputKind::StopStart, 24.800, 38.200)),
            (t(1_000), ev(1, InputKind::StopEnd, 24.800, 38.200)),
            (t(700), ev(2, InputKind::StopStart, 24.803, 38.200)),
            (t(4_000), ev(2, InputKind::StopEnd, 24.803, 38.200)),
        ]);
        let report = r.recognize_at(t(7_200));
        assert!(report.rendezvous.is_empty(), "{:?}", report.rendezvous);
    }

    #[test]
    fn runs_alongside_the_core_recognizer_on_the_same_stream() {
        // The intended deployment: the same ME stream feeds both engines.
        let spec = WindowSpec::new(Duration::hours(12), Duration::hours(1)).unwrap();
        let events = vec![
            (t(100), ev(1, InputKind::StopStart, 24.8, 38.2)),
            (t(4_000), ev(1, InputKind::StopEnd, 24.8, 38.2)),
        ];
        let mut core = MaritimeRecognizer::new(kb(), spec);
        core.add_events(events.clone());
        let core_summary = core.recognize_and_summarize(t(7_200));
        let mut ext = recognizer();
        ext.add_events(events);
        let ext_report = ext.recognize_at(t(7_200));
        // Core sees no CE (one stopped vessel offshore is not suspicious);
        // the extension flags the loitering.
        assert_eq!(core_summary.ce_count, 0);
        assert_eq!(ext_report.loitering.len(), 1);
    }
}
