//! Static knowledge: vessel facts, areas, and the atemporal predicates.
//!
//! "Unlike various other CE recognition approaches ... RTEC combines event
//! pattern matching over event streams with atemporal reasoning" (§4.1).
//! The knowledge base backs the atemporal predicates of the CE rules:
//! `fishing(Vessel)`, `shallow(Area, Vessel)`, `close(Lon, Lat, Area)`.

use std::collections::{HashMap, HashSet};

use maritime_ais::{Mmsi, VesselProfile};
use maritime_geo::{Area, AreaId, AreaKind, GeoPoint, GridIndex};
use maritime_rtec::intern::FxBuildHasher;
use serde::{Deserialize, Serialize};

use crate::input::InputEvent;

/// How the `close/3` predicate is resolved (the ablation of Figure 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpatialMode {
    /// Compute Haversine proximity on demand during recognition with a
    /// linear scan over all areas — how the paper's RTEC evaluates
    /// `close/3` (Figure 11(a)).
    OnDemand,
    /// Consume the spatial facts attached to input events; events without
    /// facts are treated as close to nothing (Figure 11(b)).
    Precomputed,
    /// On-demand proximity through the uniform grid index — this
    /// implementation's extension beyond the paper (benchmarked as a
    /// design-choice ablation).
    OnDemandIndexed,
}

/// Static per-vessel facts (§5.2: draft, fishing designation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VesselInfo {
    /// The vessel.
    pub mmsi: Mmsi,
    /// Draft in meters, for the `shallow` predicate.
    pub draft_m: f64,
    /// Whether the vessel is designated a fishing vessel.
    pub is_fishing: bool,
}

impl From<&VesselProfile> for VesselInfo {
    fn from(p: &VesselProfile) -> Self {
        Self {
            mmsi: p.mmsi,
            draft_m: p.draft_m,
            is_fishing: p.is_fishing,
        }
    }
}

/// The CER knowledge base: vessels, areas, spatial index, thresholds.
pub struct Knowledge {
    vessels: HashMap<Mmsi, VesselInfo, FxBuildHasher>,
    areas_by_id: HashMap<AreaId, Area, FxBuildHasher>,
    grid: GridIndex,
    /// Ids of areas monitored for `suspicious`, precomputed in area order —
    /// the termination rules scan this every `StopEnd`/`GapStart` event, so
    /// it must not be recomputed per trigger.
    monitored_ids: Vec<AreaId>,
    /// Ids of forbidden-fishing areas, precomputed in area order (the
    /// `fishingNear` termination scan).
    forbidden_fishing_ids: Vec<AreaId>,
    /// Under-keel clearance added to a vessel's draft when deciding whether
    /// waters are "too shallow" (rule 6).
    pub ukc_margin_m: f64,
    /// Spatial-reasoning mode.
    pub spatial_mode: SpatialMode,
    /// Minimum number of stopped vessels for a suspicious area (rule-set 3
    /// uses N > 3, "set by domain experts").
    pub suspicious_min_vessels: usize,
    /// The "declarations" facility (§4.1, footnote 3): when set, the
    /// `suspicious` fluent is computed only for these areas — "officials
    /// monitoring vessel activity are familiar with potentially suspicious
    /// areas ... and thus restrict computation ... to these areas". When
    /// `None`, all protected / forbidden-fishing / watch areas are
    /// monitored (ports never are).
    suspicious_watchlist: Option<HashSet<AreaId>>,
}

impl Knowledge {
    /// Builds a knowledge base. `close_threshold_m` parameterizes the
    /// `close/3` predicate (we default to 2 km in [`Knowledge::standard`]).
    #[must_use]
    pub fn new(
        vessels: impl IntoIterator<Item = VesselInfo>,
        areas: Vec<Area>,
        close_threshold_m: f64,
        spatial_mode: SpatialMode,
    ) -> Self {
        let vessels: HashMap<Mmsi, VesselInfo, FxBuildHasher> =
            vessels.into_iter().map(|v| (v.mmsi, v)).collect();
        let areas_by_id = areas.iter().map(|a| (a.id, a.clone())).collect();
        let grid = GridIndex::build(areas, 0.2, close_threshold_m);
        let mut kb = Self {
            vessels,
            areas_by_id,
            grid,
            monitored_ids: Vec::new(),
            forbidden_fishing_ids: Vec::new(),
            ukc_margin_m: 1.0,
            spatial_mode: SpatialMode::OnDemand,
            suspicious_min_vessels: 4,
            suspicious_watchlist: None,
        }
        .with_mode(spatial_mode);
        kb.rebuild_area_lists();
        kb
    }

    /// Recomputes the precomputed per-kind area-id lists. Kept in the same
    /// order as [`Knowledge::areas`] so rules that switched from an area
    /// scan to the precomputed list emit keys in the identical order
    /// (provenance logs record emission order).
    fn rebuild_area_lists(&mut self) {
        self.monitored_ids = self
            .grid
            .areas()
            .iter()
            .map(|a| a.id)
            .filter(|id| self.monitored_for_suspicious(*id))
            .collect();
        self.forbidden_fishing_ids = self
            .grid
            .areas()
            .iter()
            .filter(|a| a.kind == AreaKind::ForbiddenFishing)
            .map(|a| a.id)
            .collect();
    }

    /// Standard configuration: 2 km proximity threshold, on-demand mode.
    #[must_use]
    pub fn standard(vessels: impl IntoIterator<Item = VesselInfo>, areas: Vec<Area>) -> Self {
        Self::new(vessels, areas, 2_000.0, SpatialMode::OnDemand)
    }

    /// Returns the knowledge base with a different spatial mode.
    #[must_use]
    pub fn with_mode(mut self, mode: SpatialMode) -> Self {
        self.spatial_mode = mode;
        self
    }

    /// Restricts `suspicious` monitoring to the given areas (the
    /// declarations facility). Ports in the list are still excluded.
    #[must_use]
    pub fn with_suspicious_watchlist(mut self, areas: impl IntoIterator<Item = AreaId>) -> Self {
        self.suspicious_watchlist = Some(areas.into_iter().collect());
        self.rebuild_area_lists();
        self
    }

    /// Ids of the areas monitored for `suspicious`, in area order.
    #[must_use]
    pub fn monitored_area_ids(&self) -> &[AreaId] {
        &self.monitored_ids
    }

    /// Ids of the forbidden-fishing areas, in area order.
    #[must_use]
    pub fn forbidden_fishing_area_ids(&self) -> &[AreaId] {
        &self.forbidden_fishing_ids
    }

    /// Whether the `suspicious` fluent is computed for this area.
    #[must_use]
    pub fn monitored_for_suspicious(&self, id: AreaId) -> bool {
        let Some(area) = self.area(id) else {
            return false;
        };
        if area.kind == AreaKind::Port {
            return false; // four ships moored in a port is routine
        }
        match &self.suspicious_watchlist {
            Some(list) => list.contains(&id),
            None => matches!(
                area.kind,
                AreaKind::Protected | AreaKind::ForbiddenFishing | AreaKind::Watch
            ),
        }
    }

    /// `fishing(Vessel)`: whether the vessel is designated as fishing.
    #[must_use]
    pub fn fishing(&self, mmsi: Mmsi) -> bool {
        self.vessels.get(&mmsi).is_some_and(|v| v.is_fishing)
    }

    /// The vessel's draft, if known.
    #[must_use]
    pub fn draft_m(&self, mmsi: Mmsi) -> Option<f64> {
        self.vessels.get(&mmsi).map(|v| v.draft_m)
    }

    /// `shallow(Area, Vessel)`: whether the area's waters are too shallow
    /// for the vessel — depth below draft plus under-keel clearance.
    #[must_use]
    pub fn shallow(&self, area: AreaId, mmsi: Mmsi) -> bool {
        let Some(area) = self.areas_by_id.get(&area) else {
            return false;
        };
        let AreaKind::Shallow { depth_m } = area.kind else {
            return false;
        };
        self.draft_m(mmsi)
            .is_some_and(|draft| depth_m < draft + self.ukc_margin_m)
    }

    /// Area lookup.
    #[must_use]
    pub fn area(&self, id: AreaId) -> Option<&Area> {
        self.areas_by_id.get(&id)
    }

    /// All areas.
    pub fn areas(&self) -> impl Iterator<Item = &Area> {
        self.grid.areas().iter()
    }

    /// Registered vessels.
    pub fn vessels(&self) -> impl Iterator<Item = &VesselInfo> {
        self.vessels.values()
    }

    /// `close(Lon, Lat, Area)` resolved for an input event according to the
    /// spatial mode: either the precomputed facts carried by the event, or
    /// an on-demand grid lookup on its coordinates.
    #[must_use]
    pub fn close_areas_for(&self, event: &InputEvent) -> Vec<AreaId> {
        match self.spatial_mode {
            SpatialMode::Precomputed => event.close_areas.clone().unwrap_or_default(),
            SpatialMode::OnDemand => self.grid.close_area_ids_linear(event.position),
            SpatialMode::OnDemandIndexed => self.grid.close_area_ids(event.position),
        }
    }

    /// [`Knowledge::close_areas_for`] without materialising a `Vec`: calls
    /// `f` once per close area, in the same order. In `Precomputed` mode
    /// this reads the event's facts in place instead of cloning them.
    pub fn for_each_close_area(&self, event: &InputEvent, mut f: impl FnMut(AreaId)) {
        match self.spatial_mode {
            SpatialMode::Precomputed => {
                for id in event.close_areas.as_deref().unwrap_or(&[]) {
                    f(*id);
                }
            }
            SpatialMode::OnDemand => {
                let threshold = self.grid.threshold_m();
                for a in self.grid.areas() {
                    if a.is_close(event.position, threshold) {
                        f(a.id);
                    }
                }
            }
            SpatialMode::OnDemandIndexed => {
                for a in self.grid.close_areas(event.position) {
                    f(a.id);
                }
            }
        }
    }

    /// On-demand `close/3` through the grid index: ids of areas within the
    /// proximity threshold (used for spatial-fact precomputation and by
    /// [`SpatialMode::OnDemandIndexed`]).
    #[must_use]
    pub fn close_area_ids(&self, p: GeoPoint) -> Vec<AreaId> {
        self.grid.close_area_ids(p)
    }

    /// [`Knowledge::close_area_ids`] into a caller-owned buffer (cleared
    /// and refilled) — a warm buffer makes the lookup allocation-free.
    pub fn close_area_ids_into(&self, p: GeoPoint, out: &mut Vec<AreaId>) {
        self.grid.close_area_ids_into(p, out);
    }

    /// The proximity threshold of the `close` predicate, meters.
    #[must_use]
    pub fn close_threshold_m(&self) -> f64 {
        self.grid.threshold_m()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maritime_geo::Polygon;

    fn kb() -> Knowledge {
        let vessels = vec![
            VesselInfo { mmsi: Mmsi(1), draft_m: 8.0, is_fishing: false },
            VesselInfo { mmsi: Mmsi(2), draft_m: 3.0, is_fishing: true },
        ];
        let areas = vec![
            Area::new(
                AreaId(0),
                "shoal",
                AreaKind::Shallow { depth_m: 5.0 },
                Polygon::rectangle(GeoPoint::new(24.0, 37.0), GeoPoint::new(24.1, 37.1)),
            ),
            Area::new(
                AreaId(1),
                "park",
                AreaKind::Protected,
                Polygon::rectangle(GeoPoint::new(25.0, 38.0), GeoPoint::new(25.1, 38.1)),
            ),
        ];
        Knowledge::standard(vessels, areas)
    }

    #[test]
    fn fishing_predicate() {
        let kb = kb();
        assert!(!kb.fishing(Mmsi(1)));
        assert!(kb.fishing(Mmsi(2)));
        assert!(!kb.fishing(Mmsi(999)), "unknown vessels are not fishing");
    }

    #[test]
    fn shallow_compares_depth_with_draft_plus_clearance() {
        let kb = kb();
        // Depth 5 m: too shallow for 8 m draft (needs 9 m), fine for 3 m
        // draft (needs 4 m).
        assert!(kb.shallow(AreaId(0), Mmsi(1)));
        assert!(!kb.shallow(AreaId(0), Mmsi(2)));
        // A protected area is never "shallow".
        assert!(!kb.shallow(AreaId(1), Mmsi(1)));
        // Unknown vessel or area.
        assert!(!kb.shallow(AreaId(0), Mmsi(999)));
        assert!(!kb.shallow(AreaId(42), Mmsi(1)));
    }

    #[test]
    fn close_on_demand_uses_grid() {
        let kb = kb();
        let inside = GeoPoint::new(24.05, 37.05);
        assert_eq!(kb.close_area_ids(inside), vec![AreaId(0)]);
        let far = GeoPoint::new(26.5, 39.5);
        assert!(kb.close_area_ids(far).is_empty());
    }

    #[test]
    fn suspicious_watchlist_restricts_monitoring() {
        let base = kb();
        // Default: the protected area is monitored, the shallow one is not.
        assert!(base.monitored_for_suspicious(AreaId(1)));
        assert!(!base.monitored_for_suspicious(AreaId(0)));
        // Declarations: an explicit watchlist overrides the kind rule.
        let restricted = kb().with_suspicious_watchlist([AreaId(0)]);
        assert!(restricted.monitored_for_suspicious(AreaId(0)));
        assert!(!restricted.monitored_for_suspicious(AreaId(1)));
        // Unknown areas are never monitored.
        assert!(!base.monitored_for_suspicious(AreaId(42)));
    }

    #[test]
    fn close_precomputed_uses_event_facts() {
        let kb = kb().with_mode(SpatialMode::Precomputed);
        let ev = InputEvent {
            mmsi: Mmsi(1),
            kind: crate::input::InputKind::Turn,
            position: GeoPoint::new(26.5, 39.5), // far from everything
            close_areas: Some(vec![AreaId(1)]),
        };
        // Precomputed facts win over geometry.
        assert_eq!(kb.close_areas_for(&ev), vec![AreaId(1)]);
        // Without facts, precomputed mode sees nothing.
        let bare = InputEvent { close_areas: None, ..ev };
        assert!(kb.close_areas_for(&bare).is_empty());
    }
}
