//! Proof that spatial-fact annotation is allocation-free when no areas
//! are close.
//!
//! `annotate_with_spatial_facts` resolves each event's `close/3` facts
//! through one reusable scratch buffer and attaches `Some(Vec::new())`
//! in the (dominant, open-sea) empty case — an empty `Vec` never touches
//! the heap. This test pins that down with a counting global allocator
//! (the `crates/ais/tests/no_alloc.rs` idiom) so a per-event allocation
//! cannot sneak back into the Figure 11(b) preprocessing path.
//!
//! This lives in its own integration-test binary because it installs a
//! `#[global_allocator]`, which must not leak into other test binaries.

use std::alloc::{GlobalAlloc, Layout, System};

use maritime_ais::Mmsi;
use maritime_cer::input::{InputEvent, InputKind};
use maritime_cer::knowledge::{Knowledge, VesselInfo};
use maritime_cer::spatial::annotate_with_spatial_facts;
use maritime_geo::{Area, AreaId, AreaKind, GeoPoint, Polygon};
use maritime_stream::Timestamp;

struct CountingAlloc;

// Per-thread counter: the libtest harness thread allocates concurrently
// with the test thread, so a process-global count would be flaky. A
// const-initialized `Cell<usize>` has no destructor and no lazy init, so
// touching it from inside the allocator cannot recurse.
std::thread_local! {
    static THREAD_ALLOCATIONS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let before = THREAD_ALLOCATIONS.with(std::cell::Cell::get);
    let result = f();
    (THREAD_ALLOCATIONS.with(std::cell::Cell::get) - before, result)
}

fn knowledge() -> Knowledge {
    Knowledge::standard(
        vec![VesselInfo { mmsi: Mmsi(1), draft_m: 5.0, is_fishing: true }],
        vec![Area::new(
            AreaId(0),
            "zone",
            AreaKind::ForbiddenFishing,
            Polygon::rectangle(GeoPoint::new(24.0, 37.0), GeoPoint::new(24.2, 37.2)),
        )],
    )
}

/// A batch of events all far from every area of interest.
fn far_events() -> Vec<(Timestamp, InputEvent)> {
    (0..64)
        .map(|i| {
            (
                Timestamp(i64::from(i) * 10),
                InputEvent {
                    mmsi: Mmsi(1),
                    kind: InputKind::SlowMotionStart,
                    position: GeoPoint::new(10.0 + f64::from(i) * 0.01, 45.0),
                    close_areas: None,
                },
            )
        })
        .collect()
}

#[test]
fn annotating_far_events_allocates_nothing() {
    let kb = knowledge();
    let mut events = far_events();

    // Warm up: registers the lazy grid-lookup metric counters and
    // exercises every branch of the empty path once before counting.
    let facts = annotate_with_spatial_facts(&mut events, &kb);
    assert_eq!(facts, 0, "fixture events must be far from every area");

    let (allocs, facts) = allocations(|| {
        let mut facts = 0usize;
        for _ in 0..20 {
            facts += annotate_with_spatial_facts(&mut events, &kb);
        }
        facts
    });
    assert_eq!(facts, 0);
    // Every event still carries `Some` facts — the empty case is
    // represented, not skipped.
    assert!(events.iter().all(|(_, ev)| ev.close_areas.as_deref() == Some(&[][..])));
    assert_eq!(allocs, 0, "empty spatial-fact annotation must not touch the heap");
}
