//! Property-based tests for the maritime recognizer.

use maritime_ais::Mmsi;
use maritime_cer::recognizer::summarize;
use maritime_cer::{InputEvent, InputKind, Knowledge, MaritimeRecognizer, SpatialMode, VesselInfo};
use maritime_cer::partition::{recognize_partitioned, GeoPartitioner};
use maritime_geo::{Area, AreaId, AreaKind, GeoPoint, Polygon};
use maritime_rtec::{Duration, Timestamp, WindowSpec};
use proptest::prelude::*;

fn areas() -> Vec<Area> {
    vec![
        Area::new(
            AreaId(0),
            "west-park",
            AreaKind::Protected,
            Polygon::rectangle(GeoPoint::new(21.0, 37.0), GeoPoint::new(21.4, 37.4)),
        ),
        Area::new(
            AreaId(1),
            "east-bank",
            AreaKind::ForbiddenFishing,
            Polygon::rectangle(GeoPoint::new(26.0, 38.0), GeoPoint::new(26.4, 38.4)),
        ),
        Area::new(
            AreaId(2),
            "shoal",
            AreaKind::Shallow { depth_m: 4.0 },
            Polygon::rectangle(GeoPoint::new(23.0, 39.0), GeoPoint::new(23.4, 39.4)),
        ),
    ]
}

fn vessels() -> Vec<VesselInfo> {
    (0..8)
        .map(|i| VesselInfo {
            mmsi: Mmsi(100 + i),
            draft_m: 3.0 + f64::from(i),
            is_fishing: i % 2 == 0,
        })
        .collect()
}

fn spec() -> WindowSpec {
    WindowSpec::new(Duration::hours(9), Duration::hours(1)).unwrap()
}

/// Arbitrary *physically coherent* ME streams: each vessel operates at a
/// fixed hotspot (vessels do not teleport mid-run, so the paired
/// start/end markers of durative MEs stay co-located — the property the
/// geographic partitioner relies on; see `partition.rs` docs).
fn arb_events() -> impl Strategy<Value = Vec<(Timestamp, InputEvent)>> {
    let kind = prop_oneof![
        Just(InputKind::StopStart),
        Just(InputKind::StopEnd),
        Just(InputKind::SlowMotionStart),
        Just(InputKind::SlowMotionEnd),
        Just(InputKind::GapStart),
        Just(InputKind::GapEnd),
        Just(InputKind::SpeedChange),
        Just(InputKind::Turn),
    ];
    fn hotspot_of(vessel: u32) -> GeoPoint {
        match vessel % 4 {
            0 => GeoPoint::new(21.2, 37.2), // inside the protected area
            1 => GeoPoint::new(26.2, 38.2), // inside the fishing ban
            2 => GeoPoint::new(23.2, 39.2), // on the shoal
            _ => GeoPoint::new(24.5, 36.5), // open sea
        }
    }
    prop::collection::vec((0i64..30_000, 0u32..8, kind), 0..60).prop_map(|items| {
        let mut v: Vec<(Timestamp, InputEvent)> = items
            .into_iter()
            .map(|(t, vi, kind)| {
                (
                    Timestamp(t),
                    InputEvent {
                        mmsi: Mmsi(100 + vi),
                        kind,
                        position: hotspot_of(vi),
                        close_areas: None,
                    },
                )
            })
            .collect();
        v.sort_by_key(|(t, e)| (*t, e.mmsi));
        v
    })
}

fn run(events: &[(Timestamp, InputEvent)], mode: SpatialMode) -> (usize, usize, usize) {
    let mut events = events.to_vec();
    if mode == SpatialMode::Precomputed {
        let kb = Knowledge::standard(vessels(), areas());
        maritime_cer::spatial::annotate_with_spatial_facts(&mut events, &kb);
    }
    let kb = Knowledge::new(vessels(), areas(), 2_000.0, mode);
    let mut r = MaritimeRecognizer::new(kb, spec());
    r.add_events(events);
    let s = r.recognize_and_summarize(Timestamp(30_000));
    (s.ce_count, s.suspicious.len(), s.alerts.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn recognition_is_deterministic(events in arb_events()) {
        prop_assert_eq!(
            run(&events, SpatialMode::OnDemand),
            run(&events, SpatialMode::OnDemand)
        );
    }

    #[test]
    fn spatial_modes_agree(events in arb_events()) {
        let a = run(&events, SpatialMode::OnDemand);
        let b = run(&events, SpatialMode::OnDemandIndexed);
        let c = run(&events, SpatialMode::Precomputed);
        prop_assert_eq!(a, b, "linear vs indexed diverged");
        prop_assert_eq!(a, c, "on-demand vs precomputed diverged");
    }

    #[test]
    fn durative_ce_intervals_are_well_formed(events in arb_events()) {
        let kb = Knowledge::standard(vessels(), areas());
        let mut r = MaritimeRecognizer::new(kb, spec());
        r.add_events(events);
        let s = r.recognize_and_summarize(Timestamp(30_000));
        for (_, il) in s.suspicious.iter().chain(&s.illegal_fishing) {
            for iv in il.intervals() {
                if let Some(u) = iv.until {
                    prop_assert!(u > iv.since, "empty interval {iv:?}");
                }
            }
            // Disjoint and ordered.
            for w in il.intervals().windows(2) {
                prop_assert!(w[0].until.expect("non-final closed") < w[1].since);
            }
        }
    }

    #[test]
    fn suspicious_implies_enough_stopped_vessels(events in arb_events()) {
        use maritime_cer::FluentKey;
        let kb = Knowledge::standard(vessels(), areas());
        let mut r = MaritimeRecognizer::new(kb, spec());
        r.add_events(events);
        let recognition = r.recognize_at(Timestamp(30_000));
        let summary = summarize(&recognition);
        for (area, il) in &summary.suspicious {
            for iv in il.intervals() {
                // Just after the interval starts, at least 4 vessels must
                // be stopped near that area.
                let probe = Timestamp(iv.since.as_secs() + 1);
                let n = recognition
                    .fluents
                    .iter()
                    .filter(|(k, il)| {
                        matches!(k, FluentKey::StoppedNear(_, a) if a == area)
                            && il.holds_at(probe)
                    })
                    .count();
                prop_assert!(n >= 4, "suspicious at {area:?} with only {n} stopped");
            }
        }
    }

    #[test]
    fn partitioned_matches_single(events in arb_events()) {
        let single = run(&events, SpatialMode::OnDemand);
        let queries = vec![Timestamp(30_000)];
        let merged = recognize_partitioned(
            &GeoPartitioner::east_west(),
            &vessels(),
            &areas(),
            &events,
            spec(),
            &queries,
            SpatialMode::OnDemand,
        );
        prop_assert_eq!(merged[0].ce_count(), single.0);
    }

    #[test]
    fn alerts_only_from_gap_or_slow_motion(events in arb_events()) {
        use maritime_cer::AlertKind;
        let kb = Knowledge::standard(vessels(), areas());
        let mut r = MaritimeRecognizer::new(kb, spec());
        r.add_events(events.clone());
        let s = r.recognize_and_summarize(Timestamp(30_000));
        for (at, alert) in &s.alerts {
            // Every alert must be backed by a triggering input event of the
            // right kind from the right vessel at the same time.
            let expected_kind = match alert.kind {
                AlertKind::IllegalShipping => InputKind::GapStart,
                AlertKind::DangerousShipping => InputKind::SlowMotionStart,
            };
            prop_assert!(
                events.iter().any(|(t, e)| *t == *at
                    && e.mmsi == alert.vessel
                    && e.kind == expected_kind),
                "alert {alert:?} at {at:?} has no backing event"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn balanced_partitioner_boundaries_ascend(
        events in arb_events(),
        n in 1usize..9,
    ) {
        let p = GeoPartitioner::balanced(n, &events);
        for w in p.boundaries().windows(2) {
            prop_assert!(w[0] <= w[1], "boundaries out of order: {:?}", p.boundaries());
        }
        for b in p.boundaries() {
            prop_assert!(b.is_finite());
        }
    }

    #[test]
    fn balanced_partitioner_routes_every_event_exactly_once(
        events in arb_events(),
        n in 1usize..9,
    ) {
        let p = GeoPartitioner::balanced(n, &events);
        let routed = p.route_events(&events);
        prop_assert_eq!(routed.len(), p.partitions());
        let total: usize = routed.iter().map(Vec::len).sum();
        prop_assert_eq!(total, events.len(), "events dropped or duplicated");
        // Each event landed in the band its longitude indexes to.
        for (band, batch) in routed.iter().enumerate() {
            for (_, e) in batch {
                prop_assert_eq!(p.index_of(e.position.lon), band);
            }
        }
    }

    #[test]
    fn balanced_partition_count_is_consistent(
        events in arb_events(),
        n in 1usize..9,
    ) {
        let p = GeoPartitioner::balanced(n, &events);
        // `balanced` may merge bands only when the sample is empty;
        // otherwise it must produce exactly the requested count.
        if events.is_empty() {
            prop_assert_eq!(p.partitions(), 1);
        } else {
            prop_assert_eq!(p.partitions(), n);
        }
        prop_assert_eq!(p.partitions(), p.boundaries().len() + 1);
        prop_assert_eq!(p.route_areas(&areas()).len(), p.partitions());
        // index_of never escapes the band range, even at the extremes.
        for lon in [-180.0, -1.0, 0.0, 24.7, 179.9] {
            prop_assert!(p.index_of(lon) < p.partitions());
        }
    }
}
