//! Handoff/border differential tests: voyages that repeatedly cross
//! band boundaries — including rendezvous pairs meeting exactly on a
//! border — must produce CE sets identical to the serial recognizer.
//! A golden fixture pins one migration-heavy trace (re-bless with
//! `CKPT_BLESS=1`, see TESTING.md).

use maritime_ais::Mmsi;
use maritime_cer::coordinator::CoordinatedRecognizer;
use maritime_cer::{
    ExtendedRecognizer, GeoPartitioner, InputEvent, InputKind, Knowledge, MaritimeRecognizer,
    SpatialMode, VesselInfo,
};
use maritime_geo::{Area, AreaId, AreaKind, GeoPoint, Polygon};
use maritime_rtec::{Duration, EvalStrategy, Timestamp, WindowSpec};
use proptest::prelude::*;

const LON_MIN: f64 = 20.0;
const LON_MAX: f64 = 28.0;

fn t(v: i64) -> Timestamp {
    Timestamp(v)
}

fn spec() -> WindowSpec {
    WindowSpec::new(Duration::hours(6), Duration::hours(1)).unwrap()
}

fn vessels(n: u32) -> Vec<VesselInfo> {
    (0..n)
        .map(|i| VesselInfo {
            mmsi: Mmsi(100 + i),
            draft_m: if i % 2 == 0 { 8.0 } else { 3.0 },
            is_fishing: i % 3 == 0,
        })
        .collect()
}

/// Areas deliberately placed on and around the 2- and 4-band boundaries
/// of a uniform [20, 28] split (boundaries at 22, 24, 26).
fn areas() -> Vec<Area> {
    vec![
        Area::new(
            AreaId(0),
            "west-park",
            AreaKind::Protected,
            Polygon::rectangle(GeoPoint::new(20.9, 37.0), GeoPoint::new(21.1, 37.2)),
        ),
        Area::new(
            AreaId(1),
            "straddle-22",
            AreaKind::Protected,
            Polygon::rectangle(GeoPoint::new(21.9, 38.0), GeoPoint::new(22.1, 38.2)),
        ),
        Area::new(
            AreaId(2),
            "straddle-24",
            AreaKind::ForbiddenFishing,
            Polygon::rectangle(GeoPoint::new(23.9, 37.5), GeoPoint::new(24.1, 37.7)),
        ),
        Area::new(
            AreaId(3),
            "straddle-26",
            AreaKind::Shallow { depth_m: 4.0 },
            Polygon::rectangle(GeoPoint::new(25.92, 38.4), GeoPoint::new(26.08, 38.6)),
        ),
        Area::new(
            AreaId(4),
            "east-no-fish",
            AreaKind::ForbiddenFishing,
            Polygon::rectangle(GeoPoint::new(27.0, 38.0), GeoPoint::new(27.2, 38.2)),
        ),
    ]
}

fn ev(mmsi: u32, kind: InputKind, lon: f64, lat: f64) -> InputEvent {
    InputEvent {
        mmsi: Mmsi(mmsi),
        kind,
        position: GeoPoint::new(lon, lat),
        close_areas: None,
    }
}

/// Runs the serial recognizer and the coordinator over the same stream,
/// comparing canonical CE output at every query.
fn assert_matches_serial(
    events: &[(Timestamp, InputEvent)],
    queries: &[Timestamp],
    bands: usize,
    mode: SpatialMode,
    strategy: EvalStrategy,
) {
    let vs = vessels(12);
    let ars = areas();
    let mut serial = MaritimeRecognizer::with_strategy(
        Knowledge::new(vs.iter().copied(), ars.clone(), 2_000.0, mode),
        spec(),
        strategy,
    );
    let mut coord = CoordinatedRecognizer::with_strategy(
        GeoPartitioner::uniform(bands, LON_MIN, LON_MAX),
        &vs,
        &ars,
        2_000.0,
        mode,
        spec(),
        strategy,
    );
    let mut fed = 0;
    for q in queries {
        let new: Vec<_> = events
            .iter()
            .filter(|(et, _)| *et <= *q)
            .skip(fed)
            .cloned()
            .collect();
        fed += new.len();
        // The serial engine gets full-knowledge spatial facts in
        // precomputed mode; the coordinator annotates per band itself.
        let mut serial_batch = new.clone();
        if mode == SpatialMode::Precomputed {
            maritime_cer::spatial::annotate_with_spatial_facts(
                &mut serial_batch,
                serial.knowledge(),
            );
        }
        serial.add_events(serial_batch);
        coord.add_events(new);
        let a = serial.recognize_and_summarize(*q);
        let b = coord.recognize_and_summarize(*q);
        assert_eq!(
            a.canonical_json(),
            b.canonical_json(),
            "bands={bands} mode={mode:?} strategy={strategy:?} q={q:?}"
        );
    }
}

/// A deterministic migration-heavy trace: vessels shuttling across all
/// three interior boundaries while stopping/slowing near the straddling
/// areas, with gaps and closings fired from the far side of each line.
fn migration_heavy_trace() -> Vec<(Timestamp, InputEvent)> {
    let mut out = Vec::new();
    let legs = [
        // (mmsi, start lon, end lon) — each crosses at least one boundary.
        (100u32, 21.0, 24.3),
        (101, 24.3, 21.8),
        (102, 23.8, 26.2),
        (103, 26.2, 23.9),
        (104, 21.9, 22.2),
        (105, 25.9, 26.1),
    ];
    for (i, (mmsi, from, to)) in legs.iter().enumerate() {
        let base = 200 + 300 * i as i64;
        let lat = 37.6 + 0.2 * (i as f64 % 3.0);
        // Stop near the start, cross, slow near the end, close, gap.
        out.push((t(base), ev(*mmsi, InputKind::StopStart, *from, lat)));
        out.push((t(base + 2_000), ev(*mmsi, InputKind::StopEnd, *from, lat)));
        let mid = (from + to) / 2.0;
        out.push((t(base + 2_500), ev(*mmsi, InputKind::Turn, mid, lat)));
        out.push((
            t(base + 3_000),
            ev(*mmsi, InputKind::SlowMotionStart, *to, lat),
        ));
        out.push((
            t(base + 6_000),
            ev(*mmsi, InputKind::SlowMotionEnd, *to, lat),
        ));
        out.push((t(base + 6_500), ev(*mmsi, InputKind::GapStart, *to, lat)));
        out.push((t(base + 7_000), ev(*mmsi, InputKind::GapEnd, *to, lat)));
    }
    // Four vessels stop inside the 24-straddling no-fish zone from both
    // sides of the line (suspicious needs four; 100 and 103 are fishing).
    for (k, (mmsi, lon)) in [(106u32, 23.95), (107, 24.05), (108, 23.98), (109, 24.02)]
        .iter()
        .enumerate()
    {
        out.push((
            t(3_000 + 10 * k as i64),
            ev(*mmsi, InputKind::StopStart, *lon, 37.6),
        ));
    }
    out.sort_by_key(|(et, _)| *et);
    out
}

#[test]
fn migration_heavy_trace_matches_serial_everywhere() {
    let events = migration_heavy_trace();
    let queries: Vec<Timestamp> = (1..=8).map(|i| t(i * 3_600)).collect();
    for bands in [1, 2, 4] {
        for mode in [SpatialMode::OnDemand, SpatialMode::Precomputed] {
            for strategy in [EvalStrategy::FromScratch, EvalStrategy::Incremental] {
                assert_matches_serial(&events, &queries, bands, mode, strategy);
            }
        }
    }
}

#[test]
fn golden_migration_heavy_fixture_is_stable() {
    let events = migration_heavy_trace();
    let queries: Vec<Timestamp> = (1..=8).map(|i| t(i * 3_600)).collect();
    let mut coord = CoordinatedRecognizer::with_strategy(
        GeoPartitioner::uniform(4, LON_MIN, LON_MAX),
        &vessels(12),
        &areas(),
        2_000.0,
        SpatialMode::OnDemand,
        spec(),
        EvalStrategy::Incremental,
    );
    let mut fed = 0;
    let mut lines = String::new();
    for q in &queries {
        let new: Vec<_> = events
            .iter()
            .filter(|(et, _)| *et <= *q)
            .skip(fed)
            .cloned()
            .collect();
        fed += new.len();
        coord.add_events(new);
        lines.push_str(&coord.recognize_and_summarize(*q).canonical_json());
        lines.push('\n');
    }
    lines.push_str(&format!("migrations={}\n", coord.migrations()));
    assert!(coord.migrations() >= 4, "trace must be migration-heavy");

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/migration_heavy.jsonl"
    );
    if std::env::var("CKPT_BLESS").as_deref() == Ok("1") {
        std::fs::write(path, &lines).expect("bless golden fixture");
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden fixture missing — bless with CKPT_BLESS=1 (see TESTING.md)");
    assert_eq!(lines, golden, "re-bless with CKPT_BLESS=1 if intended");
}

#[test]
fn rendezvous_pair_meeting_exactly_on_a_border_matches_serial() {
    // Pairs astride each interior boundary of the 4-band split.
    for boundary in [22.0, 24.0, 26.0] {
        let events = vec![
            (t(100), ev(110, InputKind::StopStart, boundary - 0.003, 38.8)),
            (t(300), ev(111, InputKind::SlowMotionStart, boundary + 0.003, 38.8)),
            (t(4_000), ev(110, InputKind::StopEnd, boundary - 0.003, 38.8)),
            (t(4_500), ev(111, InputKind::SlowMotionEnd, boundary + 0.003, 38.8)),
        ];
        let vs: Vec<VesselInfo> = (110..112)
            .map(|i| VesselInfo {
                mmsi: Mmsi(i),
                draft_m: 4.0,
                is_fishing: false,
            })
            .collect();
        let ars = areas();
        let mut serial = ExtendedRecognizer::new(
            Knowledge::new(vs.iter().copied(), ars.clone(), 2_000.0, SpatialMode::OnDemand),
            spec(),
        );
        serial.add_events(events.iter().cloned());
        let want = serial.recognize_at(t(7_200));

        let mut coord = CoordinatedRecognizer::new(
            GeoPartitioner::uniform(4, LON_MIN, LON_MAX),
            &vs,
            &ars,
            2_000.0,
            SpatialMode::OnDemand,
            spec(),
        )
        .with_extensions();
        coord.add_events(events);
        let got = coord.recognize_extensions(t(7_200));

        assert_eq!(got.loitering, want.loitering, "boundary {boundary}");
        assert_eq!(got.rendezvous.len(), 1, "boundary {boundary}");
        assert_eq!(got.rendezvous, want.rendezvous, "boundary {boundary}");
    }
}

/// One random voyage: a vessel wandering in longitude, emitting paired
/// durative markers and instantaneous events.
fn voyage_strategy() -> impl Strategy<Value = Vec<(i64, u32, u8, f64)>> {
    // (time offset, vessel index, kind tag, longitude)
    prop::collection::vec(
        (
            0i64..20_000,
            0u32..12,
            0u8..7,
            LON_MIN + 0.01..LON_MAX - 0.01,
        ),
        1..80,
    )
}

fn decode_kind(tag: u8) -> InputKind {
    match tag {
        0 => InputKind::StopStart,
        1 => InputKind::StopEnd,
        2 => InputKind::SlowMotionStart,
        3 => InputKind::SlowMotionEnd,
        4 => InputKind::GapStart,
        5 => InputKind::GapEnd,
        _ => InputKind::Turn,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random boundary-crossing voyages: coordinator CE output equals
    /// the serial recognizer's, across band counts and strategies.
    #[test]
    fn prop_random_crossing_voyages_match_serial(
        raw in voyage_strategy(),
        four_bands in any::<bool>(),
        incremental in any::<bool>(),
    ) {
        let mut events: Vec<(Timestamp, InputEvent)> = raw
            .into_iter()
            .map(|(dt, v, kind, lon)| {
                // Pull a third of positions toward boundary lines so
                // crossings and near-border rule firings are common.
                let lon = match v % 3 {
                    0 => {
                        let b = [22.0, 24.0, 26.0][(v as usize / 3) % 3];
                        b + (lon - 24.0) * 0.01
                    }
                    _ => lon,
                };
                (t(dt), ev(100 + v, decode_kind(kind), lon, 37.0 + f64::from(v % 4) * 0.5))
            })
            .collect();
        events.sort_by_key(|(et, _)| *et);
        let queries: Vec<Timestamp> = (1..=6).map(|i| t(i * 3_600)).collect();
        let strategy = if incremental {
            EvalStrategy::Incremental
        } else {
            EvalStrategy::FromScratch
        };
        let bands = if four_bands { 4 } else { 2 };
        assert_matches_serial(&events, &queries, bands, SpatialMode::OnDemand, strategy);
    }
}
